//! # probranch-rng
//!
//! Deterministic random-number substrate for the `probranch` reproduction
//! of *Architectural Support for Probabilistic Branches* (MICRO 2018).
//!
//! The paper's workloads draw probabilistic values from `drand48` (photon
//! transport, Monte-Carlo kernels), from uniform generators (genetic,
//! bandit) and from Gaussians produced by the Box–Muller transform
//! (option pricing). This crate provides host-side reference
//! implementations of each; the ISA workloads re-implement the *same*
//! algorithms in `probranch` instructions so that random-number
//! generation costs real simulated instructions.
//!
//! Everything here is deterministic and seedable — a hard requirement of
//! PBS itself: *"PBS replays the same stream of data values when given
//! the same initial random seed"* (paper Section III-B).
//!
//! ```
//! use probranch_rng::{Drand48, UniformSource};
//! let mut r = Drand48::seed(12345);
//! let x = r.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! assert_eq!(Drand48::seed(12345).next_f64(), x); // deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drand48;
mod gaussian;
mod pcg;
mod splitmix;
mod xorshift;

pub use drand48::Drand48;
pub use gaussian::BoxMuller;
pub use pcg::Pcg32;
pub use splitmix::SplitMix64;
pub use xorshift::XorShift64Star;

/// A deterministic source of uniform random numbers.
///
/// Implementations must be reproducible: constructing two sources from
/// the same seed must yield identical streams.
pub trait UniformSource {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next double in `[0, 1)`.
    ///
    /// The default implementation uses the top 53 bits of
    /// [`next_u64`](Self::next_u64).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` via multiply-shift reduction
    /// (negligibly biased for workload-scale bounds).
    fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<T: UniformSource + ?Sized> UniformSource for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(mut src: impl UniformSource, n: usize) -> f64 {
        (0..n).map(|_| src.next_f64()).sum::<f64>() / n as f64
    }

    #[test]
    fn all_sources_produce_unit_interval() {
        let mut sources: Vec<Box<dyn UniformSource>> = vec![
            Box::new(Drand48::seed(7)),
            Box::new(XorShift64Star::seed(7)),
            Box::new(SplitMix64::seed(7)),
            Box::new(Pcg32::seed(7)),
        ];
        for s in &mut sources {
            for _ in 0..10_000 {
                let x = s.next_f64();
                assert!((0.0..1.0).contains(&x), "value {x} outside [0,1)");
            }
        }
    }

    #[test]
    fn all_sources_have_plausible_mean() {
        assert!((mean_of(Drand48::seed(3), 100_000) - 0.5).abs() < 0.01);
        assert!((mean_of(XorShift64Star::seed(3), 100_000) - 0.5).abs() < 0.01);
        assert!((mean_of(SplitMix64::seed(3), 100_000) - 0.5).abs() < 0.01);
        assert!((mean_of(Pcg32::seed(3), 100_000) - 0.5).abs() < 0.01);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::seed(42);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::seed(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.next_below(6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces of a die appear");
    }

    #[test]
    fn mut_ref_is_a_source_too() {
        let mut r = SplitMix64::seed(9);
        fn take(src: impl UniformSource) -> f64 {
            let mut s = src;
            s.next_f64()
        }
        let via_ref = take(&mut r);
        assert!((0.0..1.0).contains(&via_ref));
    }
}
