use crate::UniformSource;

/// Steele–Lea–Flood `splitmix64`, the standard seeding/stream-splitting
/// generator. Also used directly as a fast uniform source.
///
/// ```
/// use probranch_rng::{SplitMix64, UniformSource};
/// let mut r = SplitMix64::seed(1);
/// assert_ne!(r.next_u64(), r.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. All seeds are valid.
    pub fn seed(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The canonical splitmix64 finalizer, exposed for deriving
    /// independent sub-seeds (e.g. one per benchmark trial).
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Folds several identity fields into one stable 64-bit hash by
    /// chaining [`mix`](Self::mix) — the seed-derivation primitive of
    /// the parallel experiment harness (each cell hashes its descriptor
    /// fields instead of sharing a generator).
    ///
    /// Order-sensitive and length-sensitive: `[a, b]`, `[b, a]` and
    /// `[a]` all hash differently.
    pub fn mix_fold(parts: &[u64]) -> u64 {
        let mut h = SplitMix64::mix(parts.len() as u64);
        for &p in parts {
            h = SplitMix64::mix(h ^ p);
        }
        h
    }
}

impl UniformSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // First outputs for seed 0, widely published for splitmix64.
        let mut r = SplitMix64::seed(0);
        assert_eq!(r.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(r.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(r.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn mix_is_pure() {
        assert_eq!(SplitMix64::mix(42), SplitMix64::mix(42));
        assert_ne!(SplitMix64::mix(42), SplitMix64::mix(43));
    }

    #[test]
    fn mix_fold_is_order_and_length_sensitive() {
        assert_eq!(
            SplitMix64::mix_fold(&[1, 2, 3]),
            SplitMix64::mix_fold(&[1, 2, 3])
        );
        assert_ne!(SplitMix64::mix_fold(&[1, 2]), SplitMix64::mix_fold(&[2, 1]));
        assert_ne!(SplitMix64::mix_fold(&[1]), SplitMix64::mix_fold(&[1, 0]));
        assert_ne!(SplitMix64::mix_fold(&[]), SplitMix64::mix_fold(&[0]));
        // Zero-heavy inputs must not collapse onto each other.
        assert_ne!(SplitMix64::mix_fold(&[0, 0]), SplitMix64::mix_fold(&[0, 1]));
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SplitMix64::seed(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn streams_from_different_seeds_differ() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
