use crate::UniformSource;

const A: u64 = 0x5DEECE66D;
const C: u64 = 11;
const MASK48: u64 = (1 << 48) - 1;

/// The POSIX `drand48` linear congruential generator:
/// `X(n+1) = (0x5DEECE66D * X(n) + 11) mod 2^48`.
///
/// Seeding follows `srand48`: the 32-bit seed fills the high bits and the
/// low 16 bits are set to `0x330E`. Used by the paper's Photon, PI and
/// MC-integ workloads (which call `drand48` directly in their original C
/// sources).
///
/// ```
/// use probranch_rng::{Drand48, UniformSource};
/// let mut r = Drand48::seed(12345);
/// assert!((r.next_f64() - 0.225328).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drand48 {
    state: u64,
}

impl Drand48 {
    /// Seeds like `srand48(seed)`.
    pub fn seed(seed: u32) -> Drand48 {
        Drand48 {
            state: ((seed as u64) << 16) | 0x330E,
        }
    }

    /// Constructs from a raw 48-bit state, like `seed48`.
    pub fn from_state(state: u64) -> Drand48 {
        Drand48 {
            state: state & MASK48,
        }
    }

    /// The current 48-bit internal state.
    pub fn state(&self) -> u64 {
        self.state
    }

    fn step(&mut self) -> u64 {
        self.state = A.wrapping_mul(self.state).wrapping_add(C) & MASK48;
        self.state
    }
}

impl UniformSource for Drand48 {
    fn next_u64(&mut self) -> u64 {
        // Two 48-bit steps supply 64 high-quality-enough bits: the top 32
        // bits of each step (the strongest bits of an LCG).
        let hi = self.step() >> 16;
        let lo = self.step() >> 16;
        (hi << 32) | lo
    }

    /// Exactly `drand48()`: the next state divided by 2^48.
    fn next_f64(&mut self) -> f64 {
        self.step() as f64 / (1u64 << 48) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_posix_reference_sequence() {
        // Reference values computed independently from the POSIX
        // definition with srand48(12345).
        let mut r = Drand48::seed(12345);
        let expect = [
            0.22532851279629895,
            0.919183068533556,
            0.20684125324818226,
            0.7247797202753148,
        ];
        for e in expect {
            assert!((r.next_f64() - e).abs() < 1e-15);
        }
    }

    #[test]
    fn matches_posix_reference_states_seed_zero() {
        let mut r = Drand48::seed(0);
        let states = [
            0x2bbb62dc5101u64,
            0xbff993816378,
            0x18abd0152a23,
            0xded6cf2262f2,
        ];
        for s in states {
            r.next_f64();
            assert_eq!(r.state(), s);
        }
    }

    #[test]
    fn state_round_trip() {
        let mut a = Drand48::seed(77);
        a.next_f64();
        let mut b = Drand48::from_state(a.state());
        assert_eq!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn from_state_masks_to_48_bits() {
        let r = Drand48::from_state(u64::MAX);
        assert_eq!(r.state(), MASK48);
    }

    #[test]
    fn next_u64_differs_from_next_f64_path_but_is_deterministic() {
        let mut a = Drand48::seed(5);
        let mut b = Drand48::seed(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
