use crate::UniformSource;

/// The Box–Muller transform over any [`UniformSource`], yielding
/// standard-normal deviates. This is the `gaussian_box_muller()` routine
/// of the paper's Greeks/DOP workloads.
///
/// Box–Muller produces deviates in pairs; the second of each pair is
/// cached, exactly like the classic C implementation, so consumption
/// order is deterministic.
///
/// ```
/// use probranch_rng::{BoxMuller, Drand48};
/// let mut g = BoxMuller::new(Drand48::seed(1));
/// let z = g.next_gaussian();
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct BoxMuller<S> {
    source: S,
    cached: Option<f64>,
}

impl<S: UniformSource> BoxMuller<S> {
    /// Wraps a uniform source.
    pub fn new(source: S) -> BoxMuller<S> {
        BoxMuller {
            source,
            cached: None,
        }
    }

    /// The next standard-normal deviate.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Basic-form Box-Muller: r = sqrt(-2 ln u1), theta = 2 pi u2.
        let mut u1 = self.source.next_f64();
        // Guard against ln(0); drand48 can return exactly 0.
        while u1 <= 0.0 {
            u1 = self.source.next_f64();
        }
        let u2 = self.source.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Consumes the wrapper, returning the underlying source.
    pub fn into_inner(self) -> S {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Drand48, SplitMix64};

    #[test]
    fn moments_are_standard_normal() {
        let mut g = BoxMuller::new(SplitMix64::seed(11));
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn pairs_are_cached_deterministically() {
        let mut a = BoxMuller::new(Drand48::seed(4));
        let mut b = BoxMuller::new(Drand48::seed(4));
        for _ in 0..64 {
            assert_eq!(a.next_gaussian(), b.next_gaussian());
        }
    }

    #[test]
    fn consumes_two_uniforms_per_pair() {
        let mut g = BoxMuller::new(Drand48::seed(4));
        g.next_gaussian();
        g.next_gaussian();
        let inner = g.into_inner();
        let mut fresh = Drand48::seed(4);
        use crate::UniformSource;
        fresh.next_f64();
        fresh.next_f64();
        assert_eq!(inner.state(), fresh.state());
    }

    #[test]
    fn tail_probability_is_sane() {
        let mut g = BoxMuller::new(SplitMix64::seed(2));
        let n = 100_000;
        let beyond_2 = (0..n).filter(|_| g.next_gaussian().abs() > 2.0).count();
        let frac = beyond_2 as f64 / n as f64;
        // P(|Z|>2) ~ 0.0455
        assert!((frac - 0.0455).abs() < 0.01, "tail fraction {frac}");
    }
}
