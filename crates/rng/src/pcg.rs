use crate::UniformSource;

const PCG_MULT: u64 = 6364136223846793005;

/// O'Neill's PCG32 (XSH-RR variant): 64-bit LCG state with a 32-bit
/// permuted output. Two outputs are combined per [`next_u64`] call.
///
/// [`next_u64`]: UniformSource::next_u64
///
/// ```
/// use probranch_rng::{Pcg32, UniformSource};
/// let mut r = Pcg32::seed(7);
/// assert!(r.next_f64() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator on the default stream.
    pub fn seed(seed: u64) -> Pcg32 {
        Pcg32::seed_stream(seed, 0xDA3E39CB94B95BDB)
    }

    /// Creates a generator on a chosen stream (`pcg32_srandom`).
    pub fn seed_stream(seed: u64, stream: u64) -> Pcg32 {
        let inc = (stream << 1) | 1;
        let mut g = Pcg32 { state: 0, inc };
        g.step();
        g.state = g.state.wrapping_add(seed);
        g.step();
        g
    }

    fn step(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl UniformSource for Pcg32 {
    fn next_u64(&mut self) -> u64 {
        let hi = self.step() as u64;
        let lo = self.step() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_streams_differ() {
        let mut a = Pcg32::seed_stream(1, 1);
        let mut b = Pcg32::seed_stream(1, 2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn deterministic() {
        let mut a = Pcg32::seed(55);
        let mut b = Pcg32::seed(55);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_well_spread() {
        // Crude bucket test: 16 buckets over 16k draws should each get a
        // share within 20% of the expectation.
        let mut r = Pcg32::seed(3);
        let mut buckets = [0u32; 16];
        let n = 16_384;
        for _ in 0..n {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        for b in buckets {
            assert!((b as f64 - n as f64 / 16.0).abs() < n as f64 / 16.0 * 0.2);
        }
    }
}
