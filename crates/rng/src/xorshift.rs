use crate::{SplitMix64, UniformSource};

/// Vigna's `xorshift64*` generator: a 64-bit xorshift state followed by a
/// multiplicative output scramble. This is the generator the ISA-level
/// workloads implement in simulated instructions (it needs only shifts,
/// xors and one multiply, so it costs a realistic handful of ALU ops).
///
/// ```
/// use probranch_rng::{XorShift64Star, UniformSource};
/// let mut r = XorShift64Star::seed(42);
/// let x = r.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

/// The output multiplier of xorshift64*.
pub(crate) const XS_MULT: u64 = 0x2545F4914F6CDD1D;

impl XorShift64Star {
    /// Creates a generator. A zero seed (the one invalid xorshift state)
    /// is re-mixed through splitmix64, so all seeds are valid.
    pub fn seed(seed: u64) -> XorShift64Star {
        let state = if seed == 0 {
            SplitMix64::mix(0xDEAD_BEEF)
        } else {
            seed
        };
        XorShift64Star { state }
    }

    /// The raw xorshift state (before output scrambling), exposed so the
    /// ISA implementation can be verified step-for-step against this one.
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl UniformSource for XorShift64Star {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(XS_MULT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_step() {
        // One hand-computed step from state 1:
        // x=1; x^=x>>12 -> 1; x^=x<<25 -> 0x2000001; x^=x>>27 -> 0x2000001
        let mut r = XorShift64Star::seed(1);
        let out = r.next_u64();
        assert_eq!(r.state(), 0x2000001);
        assert_eq!(out, 0x2000001u64.wrapping_mul(XS_MULT));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64Star::seed(0);
        assert_ne!(r.state(), 0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn state_never_becomes_zero() {
        let mut r = XorShift64Star::seed(123);
        for _ in 0..100_000 {
            r.next_u64();
            assert_ne!(r.state(), 0);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = XorShift64Star::seed(99);
        let mut b = XorShift64Star::seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
