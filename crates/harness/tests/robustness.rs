//! Self-healing trace-store behaviour under corruption and injected
//! storage faults: quarantine lifecycle, stale rejection accounting,
//! ENOSPC persistence shutdown, transient-I/O retries, and strict
//! mode. Fault plans are process-global, so this suite lives in its
//! own test binary and serializes plan installs on
//! [`faults::ScopedPlan`].

use std::path::PathBuf;

use probranch_faults as faults;
use probranch_harness::{workload_seed, EngineContext, StrictViolation};
use probranch_pipeline::{DynTrace, SimConfig, TRACE_FILE_VERSION};
use probranch_workloads::{BenchmarkId as B, Scale};

type Ctx = EngineContext<(B, u64, bool)>;

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("probranch-robustness-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn fixture() -> (probranch_isa::Program, SimConfig, u64) {
    let program = B::Pi.build(Scale::Smoke, workload_seed(B::Pi, 0)).program();
    let cfg = SimConfig::default();
    let hash = cfg.emu_key_fingerprint();
    (program, cfg, hash)
}

fn run(ctx: &Ctx, program: &probranch_isa::Program, cfg: &SimConfig, hash: u64) -> DynTrace {
    ctx.load_or_capture_unpooled(hash, cfg, || DynTrace::capture(program, cfg))
        .expect("capture")
}

/// The single trace file a fixture run produces under `dir`.
fn trace_file(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("trace dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .expect("one published trace file")
}

#[test]
fn corrupt_trace_is_quarantined_once_then_never_reread() {
    // Hold the global fault lock even with no plan armed: sibling
    // tests in this binary install process-wide plans.
    let _quiesce = faults::ScopedPlan::install(faults::FaultPlan::default());
    let dir = tempdir("quarantine");
    let (program, cfg, hash) = fixture();

    // Publish a clean trace, then corrupt it in place.
    let seed_ctx = Ctx::with_trace_dir(&dir);
    let clean = run(&seed_ctx, &program, &cfg, hash);
    let file = trace_file(&dir);
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&file, &bytes).unwrap();

    // The next context quarantines it (rename, count, warn) and
    // re-captures a byte-identical trace.
    let healing_ctx = Ctx::with_trace_dir(&dir);
    let healed = run(&healing_ctx, &program, &cfg, hash);
    assert_eq!(healed, clean, "healed results must be byte-identical");
    assert_eq!(healing_ctx.quarantined(), 1);
    assert_eq!(healing_ctx.captures(), 1);
    assert_eq!(healing_ctx.disk_loads(), 0);
    let quarantined = file.with_file_name(format!(
        "{}.quarantined",
        file.file_name().unwrap().to_str().unwrap()
    ));
    assert!(
        quarantined.exists(),
        "the corrupt file must survive, renamed aside for inspection"
    );
    assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
    assert!(
        file.exists(),
        "the re-capture must have re-published a clean file"
    );

    // A third context loads the clean re-publish from disk — the
    // quarantined copy is never read again and nothing re-quarantines.
    let warm_ctx = Ctx::with_trace_dir(&dir);
    let warm = run(&warm_ctx, &program, &cfg, hash);
    assert_eq!(warm, clean);
    assert_eq!(
        (
            warm_ctx.captures(),
            warm_ctx.disk_loads(),
            warm_ctx.quarantined()
        ),
        (0, 1, 0),
        "a healed store serves warm loads; the quarantined file stays dark"
    );
    assert!(quarantined.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_version_counts_as_stale_rejected_and_is_overwritten() {
    // Hold the global fault lock even with no plan armed: sibling
    // tests in this binary install process-wide plans.
    let _quiesce = faults::ScopedPlan::install(faults::FaultPlan::default());
    let dir = tempdir("stale");
    let (program, cfg, hash) = fixture();

    let seed_ctx = Ctx::with_trace_dir(&dir);
    let clean = run(&seed_ctx, &program, &cfg, hash);
    let file = trace_file(&dir);

    // Rewrite the file as a valid *previous-version* trace: flip the
    // version field and re-digest, so it is intact but stale.
    let mut bytes = std::fs::read(&file).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        TRACE_FILE_VERSION
    );
    bytes[8..12].copy_from_slice(&(TRACE_FILE_VERSION - 1).to_le_bytes());
    // Recompute the digest the same way the writer does: strip the old
    // trailer, write body + fresh digest via the public round-trip —
    // no digest API is exported, so patch via a fresh write instead.
    // (A mismatched *content hash* is an equivalent stale case that
    // needs no digest patching.)
    std::fs::write(&file, &bytes).unwrap();
    // The raw version flip broke the digest → corrupt, not stale; use
    // the content-hash mismatch form for the stale path instead:
    let stale_ctx = Ctx::with_trace_dir(&dir);
    let _ = run(&stale_ctx, &program, &cfg, hash); // quarantines the broken flip
    assert_eq!(stale_ctx.quarantined(), 1);

    // Now an intact file under a *different* content hash: loading
    // under our hash classifies stale, counts, and overwrites.
    let healed_file = trace_file(&dir);
    let other_hash = hash ^ 0x5A5A;
    let seed_trace = DynTrace::capture(&program, &cfg).unwrap();
    seed_trace
        .write_file(&healed_file, other_hash)
        .expect("seed a stale file");
    let reject_ctx = Ctx::with_trace_dir(&dir);
    let rejected = run(&reject_ctx, &program, &cfg, hash);
    assert_eq!(rejected, clean);
    assert_eq!(
        (
            reject_ctx.stale_rejected(),
            reject_ctx.quarantined(),
            reject_ctx.captures()
        ),
        (1, 0, 1),
        "a stale file is counted and overwritten, never quarantined"
    );
    // And the overwrite healed the store for the next run.
    let warm_ctx = Ctx::with_trace_dir(&dir);
    let warm = run(&warm_ctx, &program, &cfg, hash);
    assert_eq!(warm, clean);
    assert_eq!((warm_ctx.captures(), warm_ctx.disk_loads()), (0, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn enospc_disables_persistence_for_the_run_but_results_survive() {
    // Take the fault lock before the clean baseline so no sibling
    // test's plan can leak into it; arm our plan afterwards.
    let _scope = faults::ScopedPlan::install(faults::FaultPlan::default());
    let dir = tempdir("enospc");
    let cfg = SimConfig::default();
    let programs: Vec<_> = (0..3u64)
        .map(|s| B::Pi.build(Scale::Smoke, workload_seed(B::Pi, s)).program())
        .collect();
    // Distinct content hashes per seed, as the sweeps derive them.
    let hash = |s: u64| probranch_rng::SplitMix64::mix_fold(&[cfg.emu_key_fingerprint(), s]);

    // Baseline: the same keys through a memory-only context.
    let baseline_ctx = Ctx::new();
    let baseline: Vec<DynTrace> = (0..3u64)
        .map(|s| run(&baseline_ctx, &programs[s as usize], &cfg, hash(s)))
        .collect();

    // Disk full from the first write: persistence shuts off after one
    // fatal error, later keys never even try, and every result is
    // byte-identical to the memory-only run.
    faults::install(faults::FaultPlan::seeded(7).arm(faults::Site::PersistEnospc, 1.0));
    let ctx = Ctx::with_trace_dir(&dir);
    let under_fault: Vec<DynTrace> = (0..3u64)
        .map(|s| run(&ctx, &programs[s as usize], &cfg, hash(s)))
        .collect();
    assert_eq!(under_fault, baseline);
    assert!(ctx.persistence_disabled());
    assert_eq!(ctx.captures(), 3);
    assert_eq!(
        ctx.write_failures(),
        0,
        "fatal errors are not write retries"
    );
    let published = std::fs::read_dir(&dir)
        .map(|d| d.flatten().count())
        .unwrap_or(0);
    assert_eq!(published, 0, "nothing can publish on a full disk");
    // The enospc failpoint fired exactly once: persistence was off for
    // the remaining keys.
    let fired: u64 = faults::hits()
        .into_iter()
        .filter(|(s, _)| *s == faults::Site::PersistEnospc)
        .map(|(_, n)| n)
        .sum();
    assert_eq!(fired, 1, "one fatal error, then silence");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_write_faults_are_retried_to_success() {
    let dir = tempdir("transient-write");
    let (program, cfg, hash) = fixture();
    // One guaranteed write failure, then the budget is spent: the
    // store's in-run retry (attempt 1) succeeds.
    let _scope = faults::ScopedPlan::install(faults::FaultPlan::seeded(5).arm_capped(
        faults::Site::PersistWrite,
        1.0,
        1,
    ));
    let ctx = Ctx::with_trace_dir(&dir);
    let first = run(&ctx, &program, &cfg, hash);
    assert!(ctx.io_retries() >= 1, "the failed attempt must be retried");
    assert_eq!(ctx.write_failures(), 0);
    assert!(!ctx.persistence_disabled());
    assert!(
        trace_file(&dir).exists(),
        "the retried persist must have published"
    );
    drop(_scope);
    // And the published file round-trips byte-identically.
    let warm_ctx = Ctx::with_trace_dir(&dir);
    let warm = run(&warm_ctx, &program, &cfg, hash);
    assert_eq!(warm, first);
    assert_eq!((warm_ctx.captures(), warm_ctx.disk_loads()), (0, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_load_faults_are_retried_to_success() {
    let dir = tempdir("transient-load");
    let (program, cfg, hash) = fixture();
    let seed_ctx = Ctx::with_trace_dir(&dir);
    let clean = run(&seed_ctx, &program, &cfg, hash);

    let _scope = faults::ScopedPlan::install(faults::FaultPlan::seeded(5).arm_capped(
        faults::Site::MmapLoad,
        1.0,
        2,
    ));
    let ctx = Ctx::with_trace_dir(&dir);
    let loaded = run(&ctx, &program, &cfg, hash);
    assert_eq!(loaded, clean);
    assert_eq!(
        (ctx.captures(), ctx.disk_loads()),
        (0, 1),
        "retries must reach the disk load, not fall back to capture"
    );
    assert_eq!(ctx.io_retries(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_mode_turns_quarantine_into_a_hard_error() {
    // Hold the global fault lock even with no plan armed: sibling
    // tests in this binary install process-wide plans.
    let _quiesce = faults::ScopedPlan::install(faults::FaultPlan::default());
    let dir = tempdir("strict-corrupt");
    let (program, cfg, hash) = fixture();
    let seed_ctx = Ctx::with_trace_dir(&dir);
    run(&seed_ctx, &program, &cfg, hash);
    let file = trace_file(&dir);
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&file, &bytes).unwrap();

    let strict_ctx = Ctx::with_robustness(Some(dir.clone()), None, true);
    assert!(strict_ctx.strict());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run(&strict_ctx, &program, &cfg, hash)
    }))
    .expect_err("strict mode must fail on corruption");
    let v = err
        .downcast_ref::<StrictViolation>()
        .expect("typed strict violation");
    assert!(v.0.contains("corrupt persisted trace"), "{}", v.0);
    assert!(
        file.exists(),
        "strict mode must leave the corrupt file in place as evidence"
    );
    assert_eq!(strict_ctx.quarantined(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_mode_turns_persistence_shutdown_into_a_hard_error() {
    let dir = tempdir("strict-enospc");
    let (program, cfg, hash) = fixture();
    let _scope = faults::ScopedPlan::install(
        faults::FaultPlan::seeded(7).arm(faults::Site::PersistEnospc, 1.0),
    );
    let strict_ctx = Ctx::with_robustness(Some(dir.clone()), None, true);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run(&strict_ctx, &program, &cfg, hash)
    }))
    .expect_err("strict mode must fail on a fatal storage error");
    let v = err
        .downcast_ref::<StrictViolation>()
        .expect("typed strict violation");
    assert!(v.0.contains("persistence disabled"), "{}", v.0);
    std::fs::remove_dir_all(&dir).ok();
}
