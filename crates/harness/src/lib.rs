//! # probranch-harness
//!
//! The deterministic parallel experiment engine behind the `figures`
//! binary and the Criterion benches.
//!
//! The paper's seed-averaged sweeps (Figures 1/6/7/8/9, Tables I–III)
//! are grids of independent **cells** — one (workload, predictor,
//! PBS on/off, seed) point each. This crate runs those grids across
//! `std::thread` workers while keeping the results **bit-identical to a
//! serial run**:
//!
//! * every cell is self-contained: its RNG seed is derived with
//!   [`SplitMix64::mix`] from a stable hash of the cell's identity
//!   ([`Cell::workload_seed`]), so no RNG state is shared between cells
//!   and no cell's stream depends on how many cells ran before it;
//! * workers pull cell *indices* from an atomic counter — scheduling
//!   decides only *when* a cell runs, never *what* it computes;
//! * [`run_cells`] writes each result into the slot of its cell index
//!   and returns the slots in index order, so the merged output is
//!   independent of thread interleaving.
//!
//! Consequently `run_cells(cells, Jobs::serial(), f)` and
//! `run_cells(cells, Jobs::new(8), f)` return equal vectors for any
//! deterministic `f`, which `tests/determinism.rs` locks in for the
//! fig6/table3 pipelines end to end.
//!
//! ```
//! use probranch_harness::{run_cells, Jobs};
//! let squares = run_cells(&[1u64, 2, 3, 4], Jobs::new(2), |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use probranch_pipeline::{
    sweep_old_quarantined, sweep_stale_temps, DynTrace, PredictorChoice, SimConfig, TraceLoad,
};
use probranch_rng::SplitMix64;
use probranch_workloads::BenchmarkId;

mod supervise;

/// Locks a mutex, recovering from poisoning: every value guarded by
/// the harness's internal locks is written whole (a cache slot goes
/// from `None` to a complete entry, a result slot from `None` to a
/// finished result), so a panic that poisoned a lock can never have
/// left a half-updated value behind — and supervised retries must be
/// able to reuse the slot a failed attempt touched.
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub use supervise::{
    install_quiet_panic_hook, run_cells_supervised, Attempt, CellOutcome, StrictViolation,
    SupervisedError, SupervisedRun, Supervision,
};

/// Worker-count selection for [`run_cells`].
///
/// The value is always at least 1; [`Jobs::from_env`] (also
/// `Default::default()`) honours the `PROBRANCH_JOBS` environment
/// variable (`0` or unset: all available cores), which is how the CI
/// matrix forces a serial run next to the parallel one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly `n` workers (clamped to at least 1).
    pub fn new(n: usize) -> Jobs {
        Jobs(n.max(1))
    }

    /// A single worker: the serial reference schedule.
    pub fn serial() -> Jobs {
        Jobs(1)
    }

    /// One worker per available core.
    pub fn available() -> Jobs {
        Jobs::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Reads `PROBRANCH_JOBS`; `0`, unset, or unparsable means
    /// [`Jobs::available`].
    pub fn from_env() -> Jobs {
        match std::env::var("PROBRANCH_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => Jobs(n),
            _ => Jobs::available(),
        }
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Jobs {
    fn default() -> Jobs {
        Jobs::from_env()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One point of an experiment grid: a workload instance simulated under
/// one predictor/PBS configuration.
///
/// `seed` is a small per-cell *index* (0, 1, 2, … within a sweep), not
/// the RNG seed itself: the actual workload seed is derived by hashing,
/// see [`Cell::workload_seed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// The benchmark this cell simulates.
    pub workload: BenchmarkId,
    /// The baseline branch predictor.
    pub predictor: PredictorChoice,
    /// Whether the PBS hardware is enabled.
    pub pbs: bool,
    /// Seed index within the sweep (a counter, not an RNG seed).
    pub seed: u64,
}

impl Cell {
    /// A cell for `workload` under `predictor`, PBS `pbs`, seed index
    /// `seed`.
    pub fn new(workload: BenchmarkId, predictor: PredictorChoice, pbs: bool, seed: u64) -> Cell {
        Cell {
            workload,
            predictor,
            pbs,
            seed,
        }
    }

    /// A stable 64-bit hash of the full cell identity (all four fields).
    ///
    /// Stable across runs and thread counts — it folds only the cell's
    /// declarative fields, never addresses or global counters.
    pub fn stable_hash(&self) -> u64 {
        SplitMix64::mix_fold(&[
            self.workload as u64,
            self.predictor as u64,
            self.pbs as u64,
            self.seed,
        ])
    }

    /// The derived RNG seed used to construct this cell's workload.
    ///
    /// Deliberately hashes only the *workload-identity* fields
    /// (benchmark, seed index): the predictor choice and the PBS switch
    /// must not change the dynamic instruction stream, otherwise a
    /// "PBS on vs. off" column pair would compare two different program
    /// runs instead of two machine configurations of the same run.
    pub fn workload_seed(&self) -> u64 {
        workload_seed(self.workload, self.seed)
    }
}

/// Fixed stream constant folded into every derived workload seed. It
/// plays the role of the harness's former `BASE_SEED`: one global pick
/// that versions the entire experiment stream (bump it to re-roll all
/// sweeps at once).
const SEED_STREAM: u64 = 1;

/// The derived RNG seed for `(workload, seed index)` — the free-function
/// form of [`Cell::workload_seed`], for sweeps (static analyses,
/// functional accuracy runs) whose cells have no predictor axis.
pub fn workload_seed(workload: BenchmarkId, seed: u64) -> u64 {
    SplitMix64::mix(SplitMix64::mix_fold(&[SEED_STREAM, workload as u64, seed]))
}

/// Runs one closure per cell across `jobs` workers and returns the
/// results **in cell-index order**.
///
/// Workers claim cell indices from a shared atomic counter and deposit
/// each result into its cell's dedicated slot, so the returned vector —
/// and therefore everything downstream of it — is byte-identical no
/// matter how many workers ran or how they interleaved. A panic inside
/// `run` propagates after all workers have stopped.
///
/// The driver is generic over the item type: the paper sweeps pass
/// [`Cell`]s, but any `Sync` descriptor works.
pub fn run_cells<T, R, F>(cells: &[T], jobs: Jobs, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = cells.len();
    let workers = jobs.get().min(n);
    if workers <= 1 {
        return cells.iter().map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run(&cells[i]);
                *lock_ignore_poison(&slots[i]) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect()
}

/// How a pooled trace can be *demoted* to — and re-served from — its
/// persisted file: everything [`DynTrace::write_file`] /
/// [`DynTrace::read_file`] need. Attached per entry by
/// [`TraceCache::get_or_capture_with`] when the owning context has a
/// trace directory.
#[derive(Debug, Clone)]
pub struct TraceDiskInfo {
    path: std::path::PathBuf,
    content_hash: u64,
    config: SimConfig,
}

impl TraceDiskInfo {
    /// Disk identity for a pooled trace: its file path, the content
    /// hash the file is keyed by, and the emulation key a load replays
    /// under.
    pub fn new(path: std::path::PathBuf, content_hash: u64, config: SimConfig) -> TraceDiskInfo {
        TraceDiskInfo {
            path,
            content_hash,
            config,
        }
    }
}

/// One pooled trace plus its budget-accounting metadata.
#[derive(Debug)]
struct Entry {
    trace: Arc<DynTrace>,
    /// `trace.bytes()` at insert/demotion time — what this entry
    /// charges against the pool budget.
    bytes: usize,
    /// LRU clock value at last touch.
    stamp: u64,
    /// Disk identity for demotion, cleared after a failed attempt so a
    /// broken file/directory is not retried forever.
    disk: Option<TraceDiskInfo>,
    /// Whether the trace's record streams are already mmap-backed
    /// (nothing left to demote; eviction is the only further step).
    mapped: bool,
}

/// A cache slot: empty until its key's one capture completes (or after
/// its entry was evicted under memory pressure).
type TraceSlot = Arc<Mutex<Option<Entry>>>;

/// A worker-shared, optionally *bounded* cache of captured
/// [`DynTrace`]s, keyed by emulation key.
///
/// Sweeps whose cells differ only in timing-side configuration
/// (predictor, core, filter mode) share one trace per emulation key:
/// the first cell to reach a key captures, every later cell replays the
/// `Arc`-shared trace. The cache is safe to share across [`run_cells`]
/// worker threads — and scheduling-independent: each key is captured by
/// exactly one worker (a deterministic function of the key), and racing
/// workers wait on that key's slot rather than re-emulating.
///
/// The key type is caller-chosen (any `Eq + Hash`); sweeps typically
/// use `(BenchmarkId, seed, pbs)` tuples.
///
/// # Memory budget
///
/// Unbounded by default ([`TraceCache::new`]): every captured trace
/// (~6 bytes per dynamic instruction) stays pooled until the cache is
/// dropped. With a budget ([`TraceCache::with_budget`]) the cache keeps
/// its pooled heap bytes at or under the budget by least-recently-used
/// **demotion, then eviction** whenever an insert pushes it over:
///
/// 1. the coldest entry with a disk identity
///    ([`TraceDiskInfo`]) is *demoted* — persisted if its file is
///    absent, then re-served as a zero-copy mmap-backed load whose
///    pooled footprint is just the timing table and derived request
///    streams (the record streams belong to the OS page cache);
/// 2. once nothing is left to demote, the coldest entry is *evicted*
///    outright — its key re-captures (or disk-loads) on next use.
///
/// The most recently touched entry is never demoted or evicted, so a
/// budget smaller than one trace degrades to "keep exactly the entry in
/// use". The budget bounds what the *pool retains*; `Arc`s already
/// handed to running cells keep their traces alive until those cells
/// finish, as they must. Which entries get demoted can depend on thread
/// scheduling — what every cell *computes* never does, because a
/// demoted or re-captured trace is byte-identical to the pooled one
/// (the persistence round-trip property).
///
/// [`TraceCache::peak_bytes`] reports the high-water mark of pooled
/// bytes sampled after each insert's budget enforcement.
#[derive(Debug, Default)]
pub struct TraceCache<K> {
    /// One slot per key. The outer lock is held only for slot lookup;
    /// the capture runs under the *slot's* lock, so workers racing on
    /// the same key wait for the one in-flight capture instead of
    /// re-emulating (same-key cells are adjacent in sweep grids, making
    /// that race the common case at `--jobs > 1`), while captures for
    /// different keys proceed in parallel. Lock order is always outer →
    /// slot; budget enforcement snapshots the slot list and releases
    /// the outer lock before touching any slot.
    slots: Mutex<HashMap<K, TraceSlot>>,
    /// Pooled-byte ceiling; `None` = unbounded.
    budget: Option<usize>,
    /// LRU clock: monotonically increasing touch stamps.
    clock: std::sync::atomic::AtomicU64,
    hits: AtomicUsize,
    demotions: AtomicUsize,
    evictions: AtomicUsize,
    peak_bytes: AtomicUsize,
}

impl<K: Eq + Hash> TraceCache<K> {
    /// An empty, unbounded cache.
    pub fn new() -> TraceCache<K> {
        TraceCache::with_budget(None)
    }

    /// An empty cache keeping at most `budget` pooled heap bytes
    /// (`None` = unbounded).
    pub fn with_budget(budget: Option<usize>) -> TraceCache<K> {
        TraceCache {
            slots: Mutex::new(HashMap::new()),
            budget,
            clock: std::sync::atomic::AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            demotions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
        }
    }

    fn touch(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The trace for `key`, capturing it with `capture` on first use.
    ///
    /// # Errors
    ///
    /// Propagates `capture`'s error; the slot stays empty, so a later
    /// caller retries the capture.
    pub fn get_or_capture<E>(
        &self,
        key: K,
        capture: impl FnOnce() -> Result<DynTrace, E>,
    ) -> Result<Arc<DynTrace>, E> {
        self.get_or_capture_with(key, None, capture)
    }

    /// [`get_or_capture`](TraceCache::get_or_capture) with a disk
    /// identity attached to the entry, making it *demotable* under a
    /// memory budget (see the type docs). `capture` runs for a missing
    /// **or previously evicted** key — a persistent context's closure
    /// re-serves evicted keys from disk rather than re-emulating.
    ///
    /// # Errors
    ///
    /// Propagates `capture`'s error; the slot stays empty, so a later
    /// caller retries.
    pub fn get_or_capture_with<E>(
        &self,
        key: K,
        disk: Option<TraceDiskInfo>,
        capture: impl FnOnce() -> Result<DynTrace, E>,
    ) -> Result<Arc<DynTrace>, E> {
        let slot = Arc::clone(lock_ignore_poison(&self.slots).entry(key).or_default());
        let trace = {
            let mut guard = lock_ignore_poison(&slot);
            if let Some(entry) = guard.as_mut() {
                entry.stamp = self.touch();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.trace));
            }
            let trace = Arc::new(capture()?);
            let mapped = trace.mapped_chunks() > 0;
            *guard = Some(Entry {
                trace: Arc::clone(&trace),
                bytes: trace.bytes(),
                stamp: self.touch(),
                disk,
                mapped,
            });
            trace
        };
        self.enforce_budget();
        Ok(trace)
    }

    /// Brings the pooled bytes back under the budget (demote coldest,
    /// then evict coldest — never the most recently touched entry) and
    /// samples the peak. Slots locked by in-flight captures are skipped
    /// — their bytes are accounted at *their* insert's enforcement.
    fn enforce_budget(&self) {
        let slots: Vec<TraceSlot> = lock_ignore_poison(&self.slots)
            .values()
            .map(Arc::clone)
            .collect();
        loop {
            // Snapshot pass: pooled total, the protected newest stamp,
            // and the coldest demotion/eviction candidates.
            let mut total = 0usize;
            let mut newest = None::<u64>;
            let mut coldest_demotable = None::<(u64, usize)>;
            let mut coldest = None::<(u64, usize)>;
            for (i, slot) in slots.iter().enumerate() {
                let guard = match slot.try_lock() {
                    Ok(guard) => guard,
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => continue,
                };
                let Some(e) = guard.as_ref() else { continue };
                total += e.bytes;
                if newest.is_none_or(|n| e.stamp > n) {
                    newest = Some(e.stamp);
                }
                if coldest.is_none_or(|(s, _)| e.stamp < s) {
                    coldest = Some((e.stamp, i));
                }
                if !e.mapped
                    && e.disk.is_some()
                    && coldest_demotable.is_none_or(|(s, _)| e.stamp < s)
                {
                    coldest_demotable = Some((e.stamp, i));
                }
            }
            let over = self.budget.is_some_and(|b| total > b);
            if !over {
                self.peak_bytes.fetch_max(total, Ordering::Relaxed);
                return;
            }
            let victim = match (coldest_demotable, coldest) {
                (Some((s, i)), _) if Some(s) != newest => (i, true),
                (_, Some((s, i))) if Some(s) != newest => (i, false),
                // Only the in-use entry is left; the budget cannot be
                // met without breaking the pool's contract.
                _ => {
                    self.peak_bytes.fetch_max(total, Ordering::Relaxed);
                    return;
                }
            };
            let (i, demote) = victim;
            let mut guard = lock_ignore_poison(&slots[i]);
            match guard.as_mut() {
                Some(e) if demote => {
                    if Self::demote(e) {
                        self.demotions.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Broken file or directory: stop retrying; the
                        // entry stays and becomes a plain eviction
                        // candidate.
                        e.disk = None;
                    }
                }
                Some(_) => {
                    *guard = None;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
    }

    /// Swaps an owned entry for its mmap-backed load: persists the
    /// trace if its file is absent (write-if-absent — a warm store
    /// already has the bytes), re-reads it zero-copy, and drops the
    /// owned record streams. Returns whether the swap happened; the
    /// entry is untouched on failure.
    fn demote(e: &mut Entry) -> bool {
        let Some(disk) = &e.disk else { return false };
        if !disk.path.exists() {
            let written = disk
                .path
                .parent()
                .map_or(Ok(()), std::fs::create_dir_all)
                .and_then(|()| e.trace.write_file(&disk.path, disk.content_hash));
            if written.is_err() {
                return false;
            }
        }
        let Some(mapped) = DynTrace::read_file(&disk.path, disk.content_hash, &disk.config) else {
            return false;
        };
        e.trace = Arc::new(mapped);
        e.bytes = e.trace.bytes();
        e.mapped = true;
        true
    }

    /// The trace already pooled for `key`, if any — never captures, but
    /// does refresh the entry's LRU stamp (a peek is a use).
    pub fn peek(&self, key: &K) -> Option<Arc<DynTrace>> {
        let slot = Arc::clone(lock_ignore_poison(&self.slots).get(key)?);
        let mut guard = lock_ignore_poison(&slot);
        guard.as_mut().map(|e| {
            e.stamp = self.touch();
            Arc::clone(&e.trace)
        })
    }

    /// Number of pooled traces.
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.slots)
            .values()
            .filter(|s| lock_ignore_poison(s).is_some())
            .count()
    }

    /// Whether the cache holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap bytes held by the pooled traces (mmap-backed record
    /// streams count 0 — see [`DynTrace::bytes`]).
    pub fn bytes(&self) -> usize {
        lock_ignore_poison(&self.slots)
            .values()
            .filter_map(|s| lock_ignore_poison(s).as_ref().map(|e| e.bytes))
            .sum()
    }

    /// Pool hits: gets served from an already-pooled entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries demoted to their mmap-backed form under budget pressure.
    pub fn demotions(&self) -> usize {
        self.demotions.load(Ordering::Relaxed)
    }

    /// Writes every pooled entry that has a disk identity but no file
    /// yet (write-if-absent, like demotion) — the drain step a service
    /// takes before exit, so traces captured while persistence was
    /// down still reach the store once it recovers. Returns the number
    /// of files written; entries stay pooled and untouched.
    pub fn flush_to_disk(&self) -> usize {
        let slots: Vec<TraceSlot> = lock_ignore_poison(&self.slots)
            .values()
            .map(Arc::clone)
            .collect();
        let mut written = 0usize;
        for slot in &slots {
            let guard = lock_ignore_poison(slot);
            let Some(e) = guard.as_ref() else { continue };
            let Some(disk) = &e.disk else { continue };
            if disk.path.exists() {
                continue;
            }
            let ok = disk
                .path
                .parent()
                .map_or(Ok(()), std::fs::create_dir_all)
                .and_then(|()| e.trace.write_file(&disk.path, disk.content_hash));
            written += usize::from(ok.is_ok());
        }
        written
    }

    /// Entries evicted outright under budget pressure.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// High-water mark of pooled bytes, sampled after each insert's
    /// budget enforcement. At most the budget whenever the budget
    /// admits at least the single most recent trace.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }
}

/// The engine-wide simulation context: one process-wide trace pool —
/// and, optionally, its on-disk extension — threaded through every
/// sweep of a `figures` run.
///
/// PR 4 scoped one [`TraceCache`] per sweep, so Figures 6, 7 and 8 —
/// which run the *identical* `(workload, seed, PBS)` cell grid — each
/// re-captured every key. An `EngineContext` hoists the cache to the
/// whole run: the first sweep to reach a key captures (or loads) its
/// trace, every later sweep replays the `Arc`-shared copy, and the
/// context counts what actually happened ([`captures`]
/// (EngineContext::captures), [`disk_loads`](EngineContext::disk_loads))
/// so the throughput report can verify each emulation key was emulated
/// **exactly once** per run.
///
/// With a trace directory ([`EngineContext::with_trace_dir`]) the pool
/// extends across *processes*: [`get_or_capture`]
/// (EngineContext::get_or_capture) first tries
/// [`DynTrace::load_file`] under the key's caller-supplied content
/// hash, and persists fresh captures with
/// [`DynTrace::write_file_attempt`]. Every failure falls back to
/// capture — persistence can save a re-emulation, never change a
/// result — but the store *self-heals* along the way instead of
/// silently looping: transient I/O errors retry with capped backoff, a
/// stale file (intact, wrong format version or key) is counted
/// ([`stale_rejected`](EngineContext::stale_rejected)) and
/// overwritten, a corrupt file is **quarantined** — atomically renamed
/// to `*.quarantined`, counted, never re-read — and a fatal storage
/// error (ENOSPC, read-only directory) disables persistence for the
/// remainder of the run with a single warning. Under
/// [`with_robustness`](EngineContext::with_robustness)'s strict mode
/// each of those degradations raises a [`StrictViolation`] instead.
/// Opening a persistent context also sweeps orphaned writer temp files
/// from the directory ([`sweep_stale_temps`]), so crashed earlier runs
/// cannot leak disk forever.
///
/// With a pool memory budget ([`EngineContext::with_options`]) the
/// in-memory half is bounded: cold traces are demoted to their mmap-
/// backed persisted form (when a trace directory is configured) or
/// evicted outright — see [`TraceCache`]. An evicted key's next use
/// re-serves it from disk, or re-captures when there is no directory;
/// either way the results are byte-identical to an unbounded run.
#[derive(Debug)]
pub struct EngineContext<K> {
    cache: TraceCache<K>,
    trace_dir: Option<std::path::PathBuf>,
    captures: AtomicUsize,
    disk_loads: AtomicUsize,
    /// Intact-but-mismatched persisted traces rejected and re-captured
    /// (stale format version or emulation key) — satellite visibility
    /// for what used to be silent re-captures.
    stale_rejected: AtomicUsize,
    /// Corrupt persisted traces renamed aside (`*.quarantined`).
    quarantined: AtomicUsize,
    /// Transient-I/O retries spent on loads and writes.
    io_retries: AtomicUsize,
    /// Persist attempts abandoned after exhausting their retries.
    write_failures: AtomicUsize,
    /// Set while the persistence circuit breaker is open: a fatal
    /// storage error (ENOSPC, read-only dir) tripped it. Without a
    /// cooldown ([`set_persist_cooldown`]
    /// (EngineContext::set_persist_cooldown)) it stays open for the
    /// rest of the run; with one, a half-open probe retries after the
    /// cooldown and success closes the breaker again.
    persist_disabled: AtomicBool,
    /// When the breaker last tripped (half-open timing).
    breaker_tripped_at: Mutex<Option<std::time::Instant>>,
    /// Half-open cooldown in milliseconds; 0 = breaker never retries
    /// (the per-run shutdown semantics batch runs keep).
    persist_cooldown_ms: std::sync::atomic::AtomicU64,
    /// Times the breaker tripped (first trip + every failed probe).
    breaker_trips: AtomicUsize,
    /// `--strict-traces`: every degradation path becomes a hard
    /// [`StrictViolation`] instead of a heal-and-continue.
    strict: bool,
    temp_sweeps: usize,
    quarantine_sweeps: usize,
}

impl<K: Eq + Hash> Default for EngineContext<K> {
    fn default() -> EngineContext<K> {
        EngineContext::new()
    }
}

impl<K: Eq + Hash> EngineContext<K> {
    /// A context with an empty in-memory pool and no disk persistence.
    pub fn new() -> EngineContext<K> {
        EngineContext::with_options(None, None)
    }

    /// A context whose pool is backed by trace files under `dir`
    /// (created on first write if missing).
    pub fn with_trace_dir(dir: impl Into<std::path::PathBuf>) -> EngineContext<K> {
        EngineContext::with_options(Some(dir.into()), None)
    }

    /// The fully general constructor: an optional trace directory and
    /// an optional pool memory budget in bytes. Opening with a
    /// directory sweeps its stale writer temp files first.
    pub fn with_options(
        trace_dir: Option<std::path::PathBuf>,
        mem_budget: Option<usize>,
    ) -> EngineContext<K> {
        EngineContext::with_robustness(trace_dir, mem_budget, false)
    }

    /// [`with_options`](EngineContext::with_options) plus the
    /// robustness policy: with `strict` set, every self-healing path
    /// (stale rejection, quarantine, persistence shutdown) raises a
    /// [`StrictViolation`] instead of degrading gracefully.
    pub fn with_robustness(
        trace_dir: Option<std::path::PathBuf>,
        mem_budget: Option<usize>,
        strict: bool,
    ) -> EngineContext<K> {
        let temp_sweeps = trace_dir.as_deref().map_or(0, sweep_stale_temps);
        let quarantine_sweeps = trace_dir.as_deref().map_or(0, sweep_old_quarantined);
        EngineContext {
            cache: TraceCache::with_budget(mem_budget),
            trace_dir,
            captures: AtomicUsize::new(0),
            disk_loads: AtomicUsize::new(0),
            stale_rejected: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            io_retries: AtomicUsize::new(0),
            write_failures: AtomicUsize::new(0),
            persist_disabled: AtomicBool::new(false),
            breaker_tripped_at: Mutex::new(None),
            persist_cooldown_ms: std::sync::atomic::AtomicU64::new(0),
            breaker_trips: AtomicUsize::new(0),
            strict,
            temp_sweeps,
            quarantine_sweeps,
        }
    }

    /// Gives the persistence circuit breaker a half-open cooldown: once
    /// tripped by a fatal storage error, persistence is retried after
    /// `cooldown` (one probe; success closes the breaker, failure
    /// re-trips it and restarts the clock). Batch runs keep the default
    /// — tripped means off for the rest of the run — but a long-lived
    /// service wants the store back when the disk recovers.
    pub fn set_persist_cooldown(&self, cooldown: std::time::Duration) {
        self.persist_cooldown_ms
            .store(cooldown.as_millis() as u64, Ordering::Relaxed);
    }

    /// Whether this context persists traces to disk.
    pub fn persistent(&self) -> bool {
        self.trace_dir.is_some()
    }

    /// The trace file path for a content hash under `dir`.
    fn trace_path(dir: &std::path::Path, content_hash: u64) -> std::path::PathBuf {
        dir.join(format!("trace-{content_hash:016x}.bin"))
    }

    /// The trace for `key`, loading it from the trace directory (when
    /// configured and valid) or capturing it with `capture` on first
    /// use. `content_hash` must identify everything that shapes the
    /// captured stream (see
    /// [`SimConfig::emu_key_fingerprint`](probranch_pipeline::SimConfig::emu_key_fingerprint)
    /// and the sweep's workload identity); `config` supplies the
    /// emulation key a loaded trace replays under.
    ///
    /// # Errors
    ///
    /// Propagates `capture`'s error; the slot stays empty, so a later
    /// caller retries.
    pub fn get_or_capture<E>(
        &self,
        key: K,
        content_hash: u64,
        config: &probranch_pipeline::SimConfig,
        capture: impl FnOnce() -> Result<DynTrace, E>,
    ) -> Result<Arc<DynTrace>, E> {
        // With a trace directory the pooled entry carries its disk
        // identity, making it demotable under a memory budget.
        let disk = self.trace_dir.as_ref().map(|dir| {
            TraceDiskInfo::new(
                Self::trace_path(dir, content_hash),
                content_hash,
                config.clone(),
            )
        });
        self.cache.get_or_capture_with(key, disk, || {
            self.load_or_capture_unpooled(content_hash, config, capture)
        })
    }

    /// [`get_or_capture`](EngineContext::get_or_capture) without the
    /// in-memory pool: loads from the trace directory (when configured
    /// and valid) or captures — persisting a fresh capture — and hands
    /// the trace to the caller to drop when done. For one-shot
    /// consumers whose key no other sweep will revisit (Figure 9's
    /// per-seed pairs), where pooling a never-evicted multi-megabyte
    /// trace would buy nothing but peak memory. Capture/disk-load
    /// accounting is shared with the pooled path.
    ///
    /// Unlike the pooled path there is no per-key lock: callers racing
    /// on the same hash may capture twice (and atomically overwrite
    /// each other's identical file) — wasteful, never wrong.
    ///
    /// # Errors
    ///
    /// Propagates `capture`'s error.
    pub fn load_or_capture_unpooled<E>(
        &self,
        content_hash: u64,
        config: &probranch_pipeline::SimConfig,
        capture: impl FnOnce() -> Result<DynTrace, E>,
    ) -> Result<DynTrace, E> {
        if let Some(dir) = &self.trace_dir {
            if let Some(trace) = self.healing_load(dir, content_hash, config) {
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                return Ok(trace);
            }
        }
        let trace = capture()?;
        self.captures.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.trace_dir {
            self.persist_trace(dir, &trace, content_hash);
        }
        Ok(trace)
    }

    /// Transient-I/O retry budget for one load or persist (attempts
    /// beyond the first), with capped exponential backoff.
    const IO_RETRIES: u64 = 3;

    fn backoff(attempt: u64) {
        std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(4)));
    }

    /// The self-healing load: retries transient I/O errors with capped
    /// backoff, counts and overwrites stale files, quarantines corrupt
    /// ones. Returns `None` whenever the caller should fall back to
    /// capture — after which the path is clear (the bad file is gone or
    /// overwritable), so re-capture heals the store.
    fn healing_load(
        &self,
        dir: &std::path::Path,
        content_hash: u64,
        config: &probranch_pipeline::SimConfig,
    ) -> Option<DynTrace> {
        let path = Self::trace_path(dir, content_hash);
        let mut attempt = 0u64;
        loop {
            match DynTrace::load_file(&path, content_hash, config, attempt) {
                TraceLoad::Loaded(trace) => return Some(trace),
                TraceLoad::Missing => return None,
                TraceLoad::Stale => {
                    self.stale_rejected.fetch_add(1, Ordering::Relaxed);
                    if self.strict {
                        std::panic::panic_any(StrictViolation(format!(
                            "stale persisted trace {content_hash:016x} would be re-captured"
                        )));
                    }
                    // Intact file, wrong format/key: the fresh capture
                    // simply overwrites it.
                    return None;
                }
                TraceLoad::Corrupt => {
                    self.quarantine(&path, content_hash);
                    return None;
                }
                TraceLoad::Io(e) => {
                    if attempt >= Self::IO_RETRIES {
                        if self.strict {
                            std::panic::panic_any(StrictViolation(format!(
                                "persisted trace {content_hash:016x} unreadable after {} attempts: {e}",
                                attempt + 1
                            )));
                        }
                        eprintln!(
                            "warning: trace {content_hash:016x} unreadable after {} attempts ({e}); re-capturing",
                            attempt + 1
                        );
                        return None;
                    }
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    Self::backoff(attempt);
                    attempt += 1;
                }
            }
        }
    }

    /// Moves a corrupt persisted trace aside — an atomic rename to
    /// `<name>.quarantined`, which no load path ever matches again —
    /// so the evidence survives for inspection and the store never
    /// pays for the same corrupt file twice. In strict mode the file
    /// is left in place and the run fails instead.
    fn quarantine(&self, path: &std::path::Path, content_hash: u64) {
        if self.strict {
            std::panic::panic_any(StrictViolation(format!(
                "corrupt persisted trace {content_hash:016x} at {}",
                path.display()
            )));
        }
        let mut dest = path.as_os_str().to_owned();
        dest.push(".quarantined");
        match std::fs::rename(path, std::path::Path::new(&dest)) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "warning: quarantined corrupt trace {content_hash:016x} (kept as {})",
                    std::path::Path::new(&dest).display()
                );
            }
            Err(e) => {
                // Racing contexts may quarantine concurrently; only the
                // rename winner counts. Anything else: warn and fall
                // back to capture — the overwrite still heals the path.
                if path.exists() {
                    eprintln!(
                        "warning: could not quarantine corrupt trace {content_hash:016x}: {e}"
                    );
                }
            }
        }
    }

    /// Persists a fresh capture, retrying transient errors and tripping
    /// the persistence circuit breaker (with one warning) on fatal
    /// storage errors — a full or read-only disk costs warm starts,
    /// never results. With a half-open cooldown configured
    /// ([`set_persist_cooldown`](EngineContext::set_persist_cooldown)),
    /// the first persist after the cooldown probes the store again.
    fn persist_trace(&self, dir: &std::path::Path, trace: &DynTrace, content_hash: u64) {
        let mut half_open_probe = false;
        if self.persist_disabled.load(Ordering::Acquire) {
            if !self.breaker_half_open() {
                return;
            }
            half_open_probe = true;
        }
        let path = Self::trace_path(dir, content_hash);
        for attempt in 0..=Self::IO_RETRIES {
            let write = std::fs::create_dir_all(dir)
                .and_then(|()| trace.write_file_attempt(&path, content_hash, attempt));
            let e = match write {
                Ok(()) => {
                    if half_open_probe {
                        self.close_breaker();
                    }
                    return;
                }
                Err(e) => e,
            };
            if Self::fatal_storage_error(&e) {
                if self.strict {
                    std::panic::panic_any(StrictViolation(format!(
                        "persistence disabled by fatal storage error: {e}"
                    )));
                }
                self.trip_breaker(&e);
                return;
            }
            if attempt == Self::IO_RETRIES {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                if self.strict {
                    std::panic::panic_any(StrictViolation(format!(
                        "could not persist trace {content_hash:016x} after {} attempts: {e}",
                        attempt + 1
                    )));
                }
                eprintln!("warning: could not persist trace {content_hash:016x}: {e}");
                if half_open_probe {
                    // A failed probe re-opens the breaker and restarts
                    // its clock — no probe storm against a sick disk.
                    self.trip_breaker(&e);
                }
                return;
            }
            self.io_retries.fetch_add(1, Ordering::Relaxed);
            Self::backoff(attempt);
        }
    }

    /// Opens (or re-opens) the persistence breaker, restarting the
    /// half-open clock; warns on the initial trip only.
    fn trip_breaker(&self, e: &std::io::Error) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        *lock_ignore_poison(&self.breaker_tripped_at) = Some(std::time::Instant::now());
        if !self.persist_disabled.swap(true, Ordering::AcqRel) {
            let cooldown = self.persist_cooldown_ms.load(Ordering::Relaxed);
            if cooldown == 0 {
                eprintln!(
                    "warning: trace persistence disabled for the rest of the run ({e}); \
                     results are unaffected"
                );
            } else {
                eprintln!(
                    "warning: trace persistence breaker tripped ({e}); retrying in {cooldown}ms; \
                     results are unaffected"
                );
            }
        }
    }

    /// Whether an open breaker should admit a half-open probe now.
    /// Claims the probe by resetting the trip time, so concurrent
    /// persists don't all probe at once.
    fn breaker_half_open(&self) -> bool {
        let cooldown = self.persist_cooldown_ms.load(Ordering::Relaxed);
        if cooldown == 0 {
            return false;
        }
        let mut tripped = lock_ignore_poison(&self.breaker_tripped_at);
        match *tripped {
            Some(t) if t.elapsed() >= std::time::Duration::from_millis(cooldown) => {
                *tripped = Some(std::time::Instant::now());
                true
            }
            _ => false,
        }
    }

    /// Closes the breaker after a successful half-open probe.
    fn close_breaker(&self) {
        if self.persist_disabled.swap(false, Ordering::AcqRel) {
            *lock_ignore_poison(&self.breaker_tripped_at) = None;
            eprintln!("warning: trace persistence breaker closed; store is healthy again");
        }
    }

    /// Whether a persist error means the directory is unusable for the
    /// rest of the run (retrying or trying other keys cannot help).
    fn fatal_storage_error(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::StorageFull
                | std::io::ErrorKind::PermissionDenied
                | std::io::ErrorKind::ReadOnlyFilesystem
        ) || matches!(e.raw_os_error(), Some(28 | 30)) // ENOSPC, EROFS
    }

    /// The trace already pooled for `key`, if any — never captures and
    /// never touches the disk.
    pub fn peek(&self, key: &K) -> Option<Arc<DynTrace>> {
        self.cache.peek(key)
    }

    /// Emulations actually performed through this context.
    pub fn captures(&self) -> usize {
        self.captures.load(Ordering::Relaxed)
    }

    /// Traces served from the trace directory instead of captured.
    pub fn disk_loads(&self) -> usize {
        self.disk_loads.load(Ordering::Relaxed)
    }

    /// Distinct emulation keys currently pooled.
    pub fn keys(&self) -> usize {
        self.cache.len()
    }

    /// Total heap bytes held by the pooled traces.
    pub fn bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Pool hits: gets served from an already-pooled trace.
    pub fn store_hits(&self) -> usize {
        self.cache.hits()
    }

    /// Pooled traces demoted to their mmap-backed persisted form under
    /// the memory budget.
    pub fn demotions(&self) -> usize {
        self.cache.demotions()
    }

    /// Pooled traces evicted outright under the memory budget.
    pub fn evictions(&self) -> usize {
        self.cache.evictions()
    }

    /// High-water mark of pooled bytes (see
    /// [`TraceCache::peak_bytes`]).
    pub fn peak_bytes(&self) -> usize {
        self.cache.peak_bytes()
    }

    /// Stale writer temp files reaped when the context opened its
    /// trace directory.
    pub fn temp_sweeps(&self) -> usize {
        self.temp_sweeps
    }

    /// Expired quarantined traces reaped when the context opened its
    /// trace directory (see
    /// [`sweep_old_quarantined`](probranch_pipeline::sweep_old_quarantined)).
    pub fn quarantine_sweeps(&self) -> usize {
        self.quarantine_sweeps
    }

    /// Times the persistence breaker tripped (first fatal storage
    /// error plus every failed half-open probe).
    pub fn breaker_trips(&self) -> usize {
        self.breaker_trips.load(Ordering::Relaxed)
    }

    /// Writes every pooled trace that has a disk identity but no file
    /// yet (see [`TraceCache::flush_to_disk`]) — the drain step before
    /// a service exits. A no-op while the breaker is open. Returns the
    /// number of files written.
    pub fn flush_to_disk(&self) -> usize {
        if self.persist_disabled.load(Ordering::Acquire) {
            return 0;
        }
        self.cache.flush_to_disk()
    }

    /// Intact persisted traces rejected for a stale format version or
    /// emulation key and transparently re-captured.
    pub fn stale_rejected(&self) -> usize {
        self.stale_rejected.load(Ordering::Relaxed)
    }

    /// Corrupt persisted traces quarantined (renamed to
    /// `*.quarantined`, never re-read).
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Transient-I/O retries spent on trace loads and persists.
    pub fn io_retries(&self) -> usize {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Persist attempts abandoned after exhausting their retry budget.
    pub fn write_failures(&self) -> usize {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Whether a fatal storage error shut persistence off for the
    /// remainder of the run.
    pub fn persistence_disabled(&self) -> bool {
        self.persist_disabled.load(Ordering::Acquire)
    }

    /// Whether this context runs under `--strict-traces`.
    pub fn strict(&self) -> bool {
        self.strict
    }
}

/// Like [`run_cells`], additionally measuring each cell's wall-clock
/// execution time — the backbone of the throughput benchmark.
///
/// The *results* keep the engine's determinism guarantee (cell-index
/// order, scheduling-independent); the attached [`Duration`]s are
/// measurements and naturally vary run to run, so anything downstream of
/// them must stay off the byte-diffable output paths. Pass
/// [`Jobs::serial`] for clean per-cell numbers — with concurrent workers
/// the durations include contention on shared cores.
///
/// [`Duration`]: std::time::Duration
pub fn run_cells_timed<T, R, F>(cells: &[T], jobs: Jobs, run: F) -> Vec<(R, std::time::Duration)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_cells(cells, jobs, |cell| {
        let t0 = std::time::Instant::now();
        let result = run(cell);
        (result, t0.elapsed())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_cell_index_order() {
        let cells: Vec<u64> = (0..100).collect();
        for jobs in [Jobs::serial(), Jobs::new(3), Jobs::new(16)] {
            let out = run_cells(&cells, jobs, |&c| c * 10);
            assert_eq!(out, (0..100).map(|c| c * 10).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn parallel_equals_serial_under_uneven_load() {
        // Deliberately skewed per-cell cost so workers finish out of
        // order; the merged output must not care.
        let cells: Vec<u64> = (0..64).collect();
        let work = |&c: &u64| {
            let mut acc = c;
            for _ in 0..(c % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (c, acc)
        };
        assert_eq!(
            run_cells(&cells, Jobs::serial(), work),
            run_cells(&cells, Jobs::new(8), work)
        );
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let out = run_cells(&[1u32, 2], Jobs::new(64), |&c| c + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn timed_runs_keep_results_in_order_and_measure_something() {
        let cells: Vec<u64> = (0..16).collect();
        let timed = run_cells_timed(&cells, Jobs::new(4), |&c| c * 3);
        let plain: Vec<u64> = timed.iter().map(|(r, _)| *r).collect();
        assert_eq!(plain, run_cells(&cells, Jobs::serial(), |&c| c * 3));
        // Durations are measurements, not zero-sized placeholders.
        assert_eq!(timed.len(), 16);
    }

    #[test]
    fn empty_grid_yields_empty_results() {
        let out = run_cells(&[] as &[u8], Jobs::new(4), |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_clamps_and_parses() {
        assert_eq!(Jobs::new(0).get(), 1);
        assert_eq!(Jobs::serial().get(), 1);
        assert!(Jobs::available().get() >= 1);
        assert_eq!(Jobs::new(5).to_string(), "5");
    }

    #[test]
    fn workload_seed_ignores_machine_config() {
        use probranch_pipeline::PredictorChoice as P;
        use probranch_workloads::BenchmarkId as B;
        let base = Cell::new(B::Pi, P::Tournament, false, 3);
        let pbs = Cell::new(B::Pi, P::TageScL, true, 3);
        // Same workload instance under every machine configuration…
        assert_eq!(base.workload_seed(), pbs.workload_seed());
        // …but the full identity hash still tells the cells apart.
        assert_ne!(base.stable_hash(), pbs.stable_hash());
        // Different benchmark or seed index ⇒ different stream.
        assert_ne!(
            base.workload_seed(),
            Cell::new(B::Bandit, P::Tournament, false, 3).workload_seed()
        );
        assert_ne!(
            base.workload_seed(),
            Cell::new(B::Pi, P::Tournament, false, 4).workload_seed()
        );
    }

    #[test]
    fn trace_cache_captures_once_and_is_shared_across_threads() {
        use probranch_pipeline::{simulate_replay, DynTrace, SimConfig};
        use probranch_workloads::{BenchmarkId as B, Scale};

        let cache: TraceCache<(B, u64, bool)> = TraceCache::new();
        let program = B::Pi.build(Scale::Smoke, workload_seed(B::Pi, 0)).program();
        // Eight cells over two keys, claimed by four workers sharing the
        // cache; every cell replays the same Arc-shared trace.
        let cells: Vec<u64> = (0..8).collect();
        let reports = run_cells(&cells, Jobs::new(4), |&c| {
            let key = (B::Pi, c % 2, false);
            let trace = cache
                .get_or_capture(key, || DynTrace::capture(&program, &SimConfig::default()))
                .expect("capture");
            simulate_replay(&trace, &SimConfig::default()).expect("replay")
        });
        assert!(cache.len() <= 2 && !cache.is_empty());
        assert!(cache.bytes() > 0);
        for r in &reports[1..] {
            assert_eq!(r, &reports[0], "shared-trace replays must agree");
        }
    }

    #[test]
    fn engine_context_pools_across_sweeps_and_counts_captures() {
        use probranch_pipeline::{simulate_replay, DynTrace, SimConfig};
        use probranch_workloads::{BenchmarkId as B, Scale};

        let ctx: EngineContext<(B, u64, bool)> = EngineContext::new();
        let program = B::Pi.build(Scale::Smoke, workload_seed(B::Pi, 0)).program();
        let cfg = SimConfig::default();
        let hash = cfg.emu_key_fingerprint();
        let key = (B::Pi, 0u64, false);
        assert!(ctx.peek(&key).is_none());
        // Two "sweeps" over the same key across worker threads: one
        // capture total, every cell replaying the shared trace.
        for _sweep in 0..2 {
            let reports = run_cells(&[0u64, 1, 2, 3], Jobs::new(4), |_| {
                let trace = ctx
                    .get_or_capture(key, hash, &cfg, || DynTrace::capture(&program, &cfg))
                    .expect("capture");
                simulate_replay(&trace, &cfg).expect("replay")
            });
            for r in &reports[1..] {
                assert_eq!(r, &reports[0]);
            }
        }
        assert_eq!(ctx.captures(), 1, "one emulation for eight cells");
        assert_eq!(ctx.disk_loads(), 0);
        assert_eq!(ctx.keys(), 1);
        assert!(ctx.peek(&key).is_some());
        assert!(ctx.bytes() > 0);
    }

    #[test]
    fn engine_context_trace_dir_round_trips_and_survives_corruption() {
        use probranch_pipeline::{simulate_replay, DynTrace, SimConfig};
        use probranch_workloads::{BenchmarkId as B, Scale};

        let dir = std::env::temp_dir().join(format!("probranch-ctx-traces-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let program = B::Pi.build(Scale::Smoke, workload_seed(B::Pi, 0)).program();
        let cfg = SimConfig::default();
        let hash = cfg.emu_key_fingerprint();
        let key = (B::Pi, 0u64, false);
        let run = |ctx: &EngineContext<(B, u64, bool)>| {
            let trace = ctx
                .get_or_capture(key, hash, &cfg, || DynTrace::capture(&program, &cfg))
                .expect("capture");
            simulate_replay(&trace, &cfg).expect("replay")
        };

        // Cold: captures and persists.
        let cold_ctx = EngineContext::with_trace_dir(&dir);
        assert!(cold_ctx.persistent());
        let cold = run(&cold_ctx);
        assert_eq!((cold_ctx.captures(), cold_ctx.disk_loads()), (1, 0));

        // Warm: a fresh context loads from disk, zero emulations, and
        // the replay is byte-identical.
        let warm_ctx = EngineContext::with_trace_dir(&dir);
        let warm = run(&warm_ctx);
        assert_eq!((warm_ctx.captures(), warm_ctx.disk_loads()), (0, 1));
        assert_eq!(warm, cold);

        // Corrupt the file: the next context falls back to capture and
        // rewrites it.
        let file = std::fs::read_dir(&dir)
            .expect("trace dir")
            .next()
            .expect("one trace file")
            .expect("dir entry")
            .path();
        let mut bytes = std::fs::read(&file).expect("trace bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&file, &bytes).expect("corrupt");
        let healed_ctx = EngineContext::with_trace_dir(&dir);
        let healed = run(&healed_ctx);
        assert_eq!((healed_ctx.captures(), healed_ctx.disk_loads()), (1, 0));
        assert_eq!(healed, cold);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistence_breaker_half_opens_and_drain_flushes_missed_writes() {
        use probranch_faults as faults;
        use probranch_pipeline::{DynTrace, SimConfig};
        use probranch_workloads::{BenchmarkId as B, Scale};

        let dir = std::env::temp_dir().join(format!("probranch-breaker-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = SimConfig::default();
        let base = cfg.emu_key_fingerprint();
        let capture = |ctx: &EngineContext<(B, u64, bool)>, seed: u64| {
            let program = B::Pi
                .build(Scale::Smoke, workload_seed(B::Pi, seed))
                .program();
            ctx.get_or_capture((B::Pi, seed, false), base ^ seed, &cfg, || {
                DynTrace::capture(&program, &cfg)
            })
            .expect("capture");
        };

        // ENOSPC on every write (until the budget runs out) trips the
        // breaker on the first persist.
        let _scope = faults::ScopedPlan::install(
            faults::FaultPlan::seeded(7).arm(faults::Site::PersistEnospc, 1.0),
        );
        let ctx: EngineContext<(B, u64, bool)> = EngineContext::with_trace_dir(&dir);
        capture(&ctx, 0);
        assert!(ctx.persistence_disabled(), "fatal storage error trips");
        assert_eq!(ctx.breaker_trips(), 1);
        // Without a cooldown the breaker stays open: captures are
        // pooled but nothing reaches disk, and drain flushes nothing.
        capture(&ctx, 1);
        assert!(ctx.persistence_disabled());
        assert_eq!(ctx.flush_to_disk(), 0, "no flush through an open breaker");
        let on_disk = || {
            std::fs::read_dir(&dir).map_or(0, |d| {
                d.flatten()
                    .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".bin")))
                    .count()
            })
        };
        assert_eq!(on_disk(), 0);

        // Heal the disk and give the breaker a cooldown: the next
        // persist is a half-open probe, success closes the breaker.
        faults::install(faults::FaultPlan::default());
        ctx.set_persist_cooldown(std::time::Duration::from_millis(1));
        std::thread::sleep(std::time::Duration::from_millis(5));
        capture(&ctx, 2);
        assert!(!ctx.persistence_disabled(), "successful probe closes");
        assert_eq!(on_disk(), 1, "the probe's own trace persisted");
        // Drain: the traces captured while the breaker was open reach
        // the store now.
        assert_eq!(ctx.flush_to_disk(), 2);
        assert_eq!(on_disk(), 3);
        assert_eq!(ctx.flush_to_disk(), 0, "flush is idempotent");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounded_pool_evicts_but_never_changes_results() {
        use probranch_pipeline::{simulate_replay, DynTrace, SimConfig};
        use probranch_workloads::{BenchmarkId as B, Scale};

        let cfg = SimConfig::default();
        let hash = cfg.emu_key_fingerprint();
        let seeds: Vec<u64> = (0..4).collect();
        let programs: Vec<_> = seeds
            .iter()
            .map(|&s| B::Pi.build(Scale::Smoke, workload_seed(B::Pi, s)).program())
            .collect();
        // Budget: room for one-and-a-half traces, so pooling four keys
        // must evict (no trace directory ⇒ nothing to demote to).
        let one = DynTrace::capture(&programs[0], &cfg).unwrap().bytes();
        let budget = one * 3 / 2;
        let run = |ctx: &EngineContext<(B, u64, bool)>| {
            // Two passes over every key: the second revisits keys the
            // budget evicted, forcing re-captures.
            let cells: Vec<u64> = seeds.iter().chain(seeds.iter()).copied().collect();
            run_cells(&cells, Jobs::serial(), |&s| {
                let trace = ctx
                    .get_or_capture((B::Pi, s, false), hash, &cfg, || {
                        DynTrace::capture(&programs[s as usize], &cfg)
                    })
                    .expect("capture");
                simulate_replay(&trace, &cfg).expect("replay")
            })
        };
        let unbounded: EngineContext<(B, u64, bool)> = EngineContext::new();
        let bounded: EngineContext<(B, u64, bool)> =
            EngineContext::with_options(None, Some(budget));
        assert_eq!(
            run(&bounded),
            run(&unbounded),
            "eviction must not change results"
        );
        assert_eq!(unbounded.captures(), 4, "unbounded pools each key once");
        assert!(
            bounded.evictions() > 0,
            "a 1.5-trace budget over 4 keys must evict"
        );
        assert!(
            bounded.captures() > 4,
            "revisiting evicted keys re-captures"
        );
        assert!(
            bounded.peak_bytes() <= budget,
            "peak pooled bytes {} exceeded the budget {}",
            bounded.peak_bytes(),
            budget
        );
        assert!(unbounded.peak_bytes() > budget);
        assert_eq!(bounded.demotions(), 0, "nowhere to demote without a dir");
    }

    #[test]
    fn bounded_pool_with_trace_dir_demotes_to_mapped_form() {
        use probranch_pipeline::{simulate_replay, DynTrace, SimConfig};
        use probranch_workloads::{BenchmarkId as B, Scale};

        let dir =
            std::env::temp_dir().join(format!("probranch-demote-traces-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = SimConfig::default();
        let seeds: Vec<u64> = (0..3).collect();
        let programs: Vec<_> = seeds
            .iter()
            .map(|&s| B::Pi.build(Scale::Smoke, workload_seed(B::Pi, s)).program())
            .collect();
        // Per-key content hashes: each seed builds a different program.
        let hash = |s: u64| SplitMix64::mix_fold(&[cfg.emu_key_fingerprint(), s]);
        let one = DynTrace::capture(&programs[0], &cfg).unwrap().bytes();
        let budget = one * 3 / 2;
        let run = |ctx: &EngineContext<(B, u64, bool)>| {
            let cells: Vec<u64> = seeds.iter().chain(seeds.iter()).copied().collect();
            run_cells(&cells, Jobs::serial(), |&s| {
                let trace = ctx
                    .get_or_capture((B::Pi, s, false), hash(s), &cfg, || {
                        DynTrace::capture(&programs[s as usize], &cfg)
                    })
                    .expect("capture");
                simulate_replay(&trace, &cfg).expect("replay")
            })
        };
        let unbounded: EngineContext<(B, u64, bool)> = EngineContext::new();
        let bounded: EngineContext<(B, u64, bool)> =
            EngineContext::with_options(Some(dir.clone()), Some(budget));
        assert_eq!(
            run(&bounded),
            run(&unbounded),
            "demotion must not change results"
        );
        assert!(
            bounded.demotions() > 0,
            "a 1.5-trace budget over 3 keys with a dir must demote"
        );
        assert!(
            bounded.peak_bytes() <= budget,
            "peak pooled bytes {} exceeded the budget {}",
            bounded.peak_bytes(),
            budget
        );
        // Demoted keys stay pooled, re-served through the file map with
        // their owned record streams dropped.
        let mapped_keys = seeds
            .iter()
            .filter_map(|&s| bounded.peek(&(B::Pi, s, false)))
            .filter(|t| t.mapped_chunks() == t.chunk_count() && t.chunk_count() > 0)
            .count();
        assert!(mapped_keys > 0, "at least one key must be serving mapped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stable_hash_is_reproducible() {
        use probranch_pipeline::PredictorChoice as P;
        use probranch_workloads::BenchmarkId as B;
        let c = Cell::new(B::Photon, P::TageScL, true, 6);
        assert_eq!(c.stable_hash(), c.stable_hash());
        assert_eq!(c.workload_seed(), c.workload_seed());
    }
}
