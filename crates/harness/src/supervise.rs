//! Supervised cell execution: per-cell panic isolation, bounded
//! retries, hard per-cell deadlines via cooperative cancellation, and
//! structured failure reporting.
//!
//! [`run_cells`](crate::run_cells) keeps the engine's original
//! contract — a panic anywhere tears down the whole grid — which is
//! right for tests and wrong for a long sweep: one poisoned cell (an
//! injected fault, a pathological workload, a broken trace file)
//! should cost *that cell* a retry, not the other several hundred
//! cells their results. [`run_cells_supervised`] wraps each cell body
//! in `catch_unwind`, re-runs failed cells up to a retry budget
//! (passing the attempt ordinal so deterministic fault schedules
//! re-roll and degradation cascades can switch engines), cancels
//! attempts that overrun the per-cell deadline, and merges results in
//! cell-index order exactly like the plain driver — **byte-identical
//! to an unsupervised run whenever every cell eventually succeeds**,
//! because a retried cell recomputes the same pure function of the
//! same cell identity.
//!
//! Deadlines are enforced through [`CancelToken`]s: every attempt
//! runs under a fresh token (child of whatever [`cancel::current`]
//! scope the caller installed — e.g. a sweep-service request token
//! carrying the request deadline) and the pipeline's chunk loops poll
//! it, so an over-deadline cell stops within one chunk of work and
//! fails with a structured `cancelled: deadline exceeded (…)` message
//! that participates in the retry cascade. A body that never polls
//! (pure computation outside the pipeline) still completes and is
//! merely flagged over-deadline, exactly like PR 8's report-only
//! watchdog.
//!
//! When a cell exhausts its attempts the whole run returns a
//! [`SupervisedError`] naming the cell and carrying every attempt's
//! panic message — the structured, attributable form the `figures`
//! binary turns into a non-zero exit instead of an abort trace.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use probranch_pipeline::cancel::{self, CancelScope, CancelToken};

use crate::Jobs;

/// A strict-mode violation: some degradation path (trace quarantine,
/// persistence shutdown, engine fallback) fired while `--strict-traces`
/// demanded hard failure. Raised via [`std::panic::panic_any`] so it
/// crosses cell bodies like any panic, but typed so supervision knows
/// not to retry (strict violations are deterministic) and the panic
/// hook knows not to print an abort trace for it.
#[derive(Debug, Clone)]
pub struct StrictViolation(pub String);

impl std::fmt::Display for StrictViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "strict-traces violation: {}", self.0)
    }
}

/// Retry and deadline policy for [`run_cells_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Extra attempts after the first (0 = fail on first panic).
    pub retries: u32,
    /// Per-cell, per-attempt deadline, enforced by cooperative
    /// cancellation: each attempt runs under a [`CancelToken`] with
    /// this budget, which the pipeline's chunk loops poll — an
    /// overrunning attempt stops within one chunk and fails with a
    /// structured `deadline exceeded` message (retryable like any
    /// other failure). Bodies that never reach a poll point still
    /// complete and are only flagged in their [`CellOutcome`].
    pub deadline: Option<Duration>,
}

impl Supervision {
    /// No supervision: first panic fails the run (still structured —
    /// the panic is caught and reported, not propagated raw).
    pub fn none() -> Supervision {
        Supervision {
            retries: 0,
            deadline: None,
        }
    }

    /// The default robustness envelope: up to 4 attempts per cell (the
    /// degradation cascade's length: requested engine twice, then
    /// fused, then reference), no deadline.
    pub fn default_robust() -> Supervision {
        Supervision {
            retries: 3,
            deadline: None,
        }
    }

    /// This policy with a per-cell hard deadline (cooperatively
    /// enforced; see [`Supervision::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Supervision {
        self.deadline = Some(deadline);
        self
    }

    /// This policy with a retry budget.
    pub fn with_retries(mut self, retries: u32) -> Supervision {
        self.retries = retries;
        self
    }
}

/// One attempt at one cell, handed to the cell body: the ordinal
/// drives fault re-rolls and engine cascades, and the body labels the
/// attempt with whatever engine it actually used so outcomes stay
/// attributable.
#[derive(Debug)]
pub struct Attempt {
    /// 0-based attempt ordinal (0 is the clean first try).
    pub number: u32,
    label: std::cell::Cell<&'static str>,
}

impl Attempt {
    fn new(number: u32) -> Attempt {
        Attempt {
            number,
            label: std::cell::Cell::new(""),
        }
    }

    /// Records which engine/path this attempt used (shows up in the
    /// cell's [`CellOutcome`]).
    pub fn set_label(&self, label: &'static str) {
        self.label.set(label);
    }
}

/// What happened to one supervised cell that did *not* sail through on
/// its first attempt: how many attempts it took, the label its final
/// attempt set, whether it overran the deadline, and every failed
/// attempt's panic message.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's grid index.
    pub index: usize,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// The label the successful attempt set via [`Attempt::set_label`]
    /// (empty when the body never labelled itself).
    pub label: &'static str,
    /// Whether any attempt of this cell ran past the deadline (and was
    /// cancelled at its next poll point, or completed without polling).
    pub over_deadline: bool,
    /// Panic messages of the failed attempts, in attempt order.
    pub failures: Vec<String>,
}

/// The structured failure of a supervised run: the first cell (in
/// claim order) that exhausted every attempt.
#[derive(Debug, Clone)]
pub struct SupervisedError {
    /// The failing cell's grid index.
    pub index: usize,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// Panic messages of every failed attempt, in attempt order.
    pub failures: Vec<String>,
    /// Whether the failure is a [`StrictViolation`] (never retried).
    pub strict: bool,
}

impl std::fmt::Display for SupervisedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} failed after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.failures.last().map_or("unknown", |s| s.as_str())
        )
    }
}

impl std::error::Error for SupervisedError {}

/// A completed supervised run: results in cell-index order plus the
/// outcome records of every cell that needed supervision (retried,
/// degraded, or overran its deadline) — clean cells stay silent.
#[derive(Debug)]
pub struct SupervisedRun<R> {
    /// Per-cell results, index order, byte-identical to an
    /// unsupervised run of the same grid.
    pub results: Vec<R>,
    /// Outcomes of the non-clean cells, in cell-index order.
    pub outcomes: Vec<CellOutcome>,
}

impl<R> SupervisedRun<R> {
    /// Cells that needed more than one attempt.
    pub fn retried(&self) -> usize {
        self.outcomes.iter().filter(|o| o.attempts > 1).count()
    }

    /// Cells whose final attempt ran under a fallback label (the body
    /// marked itself as degraded via [`Attempt::set_label`]).
    pub fn degraded(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.label.is_empty()).count()
    }

    /// Cells the watchdog flagged as over-deadline.
    pub fn over_deadline(&self) -> usize {
        self.outcomes.iter().filter(|o| o.over_deadline).count()
    }
}

thread_local! {
    /// Set while a supervised attempt is in flight on this thread: the
    /// wrapped panic hook stays silent for panics supervision is about
    /// to catch and handle.
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Wraps the process panic hook (once) so supervised attempts and
/// typed control-flow panics ([`StrictViolation`], [`SupervisedError`])
/// do not spray abort traces for failures the harness catches and
/// reports in structured form.
pub fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let typed =
                info.payload().is::<StrictViolation>() || info.payload().is::<SupervisedError>();
            if typed || QUIET.with(|q| q.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// The panic payload as a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> (String, bool) {
    if let Some(v) = payload.downcast_ref::<StrictViolation>() {
        return (v.to_string(), true);
    }
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    (msg, false)
}

use crate::lock_ignore_poison;

/// Runs one closure per cell across `jobs` workers with per-cell panic
/// isolation, bounded retries and an optional hard (cooperatively
/// cancelled) per-attempt deadline; results return **in cell-index
/// order**, exactly like [`run_cells`](crate::run_cells).
///
/// Each attempt receives an [`Attempt`] carrying its 0-based ordinal:
/// deterministic fault schedules salt on it (so retries re-roll) and
/// degradation cascades key engine choice off it. A panicking attempt
/// is caught and retried up to `sup.retries` times; a
/// [`StrictViolation`] payload is never retried. Once any cell
/// exhausts its attempts the run stops claiming new cells and returns
/// that cell's [`SupervisedError`]; sibling cells already in flight
/// finish normally (they are never torn down mid-simulation).
///
/// Every attempt runs under its own [`CancelToken`], a child of the
/// caller's [`cancel::current`] scope (if any) so an outer request
/// token — a service deadline, a drained connection — cancels cells
/// here too. With `sup.deadline` set the attempt token self-cancels
/// after that budget; the pipeline's chunk loops turn that into a
/// structured `cancelled: deadline exceeded (…)` failure.
///
/// # Errors
///
/// The first claimed cell to exhaust its attempts, as a
/// [`SupervisedError`].
pub fn run_cells_supervised<T, R, F>(
    cells: &[T],
    jobs: Jobs,
    sup: Supervision,
    run: F,
) -> Result<SupervisedRun<R>, SupervisedError>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &Attempt) -> R + Sync,
{
    install_quiet_panic_hook();
    // The caller's cancel scope (a service request token, say) parents
    // every attempt token, so cancelling it cancels the whole grid.
    let parent = cancel::current();
    let n = cells.len();
    let workers = jobs.get().min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let outcome_slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let error: Mutex<Option<SupervisedError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let run = &run;
            let slots = &slots;
            let outcome_slots = &outcome_slots;
            let error = &error;
            let next = &next;
            let parent = &parent;
            scope.spawn(move || {
                loop {
                    // A fatal cell stops the claim loop — in-flight
                    // siblings finish, unclaimed cells stay unrun.
                    if lock_ignore_poison(error).is_some() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut failures: Vec<String> = Vec::new();
                    let mut strict_failure = false;
                    let mut over = false;
                    let mut done: Option<(R, &'static str, u32)> = None;
                    for a in 0..=sup.retries {
                        // A fresh token per attempt: each retry gets
                        // the full deadline budget again.
                        let token = match parent {
                            Some(p) => p.child(sup.deadline),
                            None => match sup.deadline {
                                Some(d) => CancelToken::with_deadline(d),
                                None => CancelToken::new(),
                            },
                        };
                        let attempt = Attempt::new(a);
                        QUIET.with(|q| q.set(true));
                        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let _scope = CancelScope::enter(token.clone());
                            run(&cells[i], &attempt)
                        }));
                        QUIET.with(|q| q.set(false));
                        if token.deadline_passed() && !over {
                            over = true;
                            eprintln!(
                                "warning: cell {i} exceeded deadline ({:?}); cancelled at its \
                                 next poll point",
                                sup.deadline.unwrap_or_default()
                            );
                        }
                        match caught {
                            Ok(r) => {
                                done = Some((r, attempt.label.get(), a + 1));
                                break;
                            }
                            Err(payload) => {
                                let (msg, strict) = panic_message(payload);
                                failures.push(msg);
                                if strict {
                                    // Deterministic by definition:
                                    // retrying cannot help.
                                    strict_failure = true;
                                    break;
                                }
                                // An outer cancellation (not this
                                // attempt's own deadline) dooms every
                                // retry too — stop burning attempts.
                                if parent.as_ref().is_some_and(|p| p.is_cancelled()) {
                                    break;
                                }
                            }
                        }
                    }
                    match done {
                        Some((r, label, attempts)) => {
                            *lock_ignore_poison(&slots[i]) = Some(r);
                            if attempts > 1 || over || !label.is_empty() {
                                *lock_ignore_poison(&outcome_slots[i]) = Some(CellOutcome {
                                    index: i,
                                    attempts,
                                    label,
                                    over_deadline: over,
                                    failures: std::mem::take(&mut failures),
                                });
                            }
                        }
                        None => {
                            let mut guard = lock_ignore_poison(error);
                            if guard.is_none() {
                                *guard = Some(SupervisedError {
                                    index: i,
                                    attempts: failures.len() as u32,
                                    failures: std::mem::take(&mut failures),
                                    strict: strict_failure,
                                });
                            }
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect();
    let outcomes = outcome_slots
        .into_iter()
        .filter_map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    Ok(SupervisedRun { results, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_match_the_plain_driver() {
        let cells: Vec<u64> = (0..64).collect();
        let sup = Supervision::default_robust();
        let run =
            run_cells_supervised(&cells, Jobs::new(4), sup, |&c, _| c * 7).expect("clean run");
        assert_eq!(
            run.results,
            crate::run_cells(&cells, Jobs::serial(), |&c| c * 7)
        );
        assert!(run.outcomes.is_empty(), "clean cells report no outcomes");
        assert_eq!(
            (run.retried(), run.degraded(), run.over_deadline()),
            (0, 0, 0)
        );
    }

    #[test]
    fn a_panicking_cell_is_retried_not_fatal_and_siblings_survive() {
        use std::sync::atomic::AtomicU32;
        let cells: Vec<u64> = (0..32).collect();
        let tries = AtomicU32::new(0);
        let sup = Supervision::none().with_retries(2);
        let run = run_cells_supervised(&cells, Jobs::new(4), sup, |&c, attempt| {
            if c == 13 && attempt.number < 2 {
                tries.fetch_add(1, Ordering::Relaxed);
                panic!("transient failure on cell 13");
            }
            if c == 13 {
                attempt.set_label("fallback");
            }
            c + 1
        })
        .expect("retries must rescue the cell");
        assert_eq!(run.results, (1..=32).collect::<Vec<u64>>());
        assert_eq!(tries.load(Ordering::Relaxed), 2);
        assert_eq!(run.outcomes.len(), 1);
        let o = &run.outcomes[0];
        assert_eq!((o.index, o.attempts, o.label), (13, 3, "fallback"));
        assert_eq!(o.failures.len(), 2);
        assert!(o.failures[0].contains("transient failure"));
        assert_eq!((run.retried(), run.degraded()), (1, 1));
    }

    #[test]
    fn exhausted_retries_return_a_structured_error() {
        let cells: Vec<u64> = (0..8).collect();
        let sup = Supervision::none().with_retries(1);
        let err = run_cells_supervised(&cells, Jobs::serial(), sup, |&c, _| {
            if c == 3 {
                panic!("cell 3 is cursed");
            }
            c
        })
        .expect_err("an always-failing cell must fail the run");
        assert_eq!((err.index, err.attempts, err.strict), (3, 2, false));
        assert_eq!(err.failures.len(), 2);
        assert!(err.to_string().contains("cell 3 failed after 2 attempts"));
        assert!(err.to_string().contains("cursed"));
    }

    #[test]
    fn strict_violations_are_never_retried() {
        use std::sync::atomic::AtomicU32;
        let cells: Vec<u64> = (0..4).collect();
        let tries = AtomicU32::new(0);
        let sup = Supervision::none().with_retries(5);
        let err = run_cells_supervised(&cells, Jobs::serial(), sup, |&c, _| {
            if c == 1 {
                tries.fetch_add(1, Ordering::Relaxed);
                std::panic::panic_any(StrictViolation("degradation forbidden".into()));
            }
            c
        })
        .expect_err("strict violations are fatal");
        assert_eq!(tries.load(Ordering::Relaxed), 1, "no retry on strict");
        assert!(err.strict);
        assert_eq!(err.attempts, 1);
        assert!(err.failures[0].contains("strict-traces violation"));
        assert!(err.failures[0].contains("degradation forbidden"));
    }

    #[test]
    fn non_polling_bodies_that_overrun_are_flagged_not_killed() {
        // A body that never reaches a cancellation poll point (pure
        // computation, sleeps) cannot be cooperatively stopped: it
        // completes, keeps its result, and is flagged over-deadline.
        let cells: Vec<u64> = (0..6).collect();
        let sup = Supervision::none().with_deadline(Duration::from_millis(5));
        let run = run_cells_supervised(&cells, Jobs::new(2), sup, |&c, _| {
            if c == 2 {
                std::thread::sleep(Duration::from_millis(40));
            }
            c * 2
        })
        .expect("slow non-polling cells still complete");
        assert_eq!(run.results, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(run.over_deadline(), 1);
        assert!(run.outcomes.iter().any(|o| o.index == 2 && o.over_deadline));
    }

    #[test]
    fn polling_bodies_are_cancelled_at_the_deadline_and_can_retry() {
        // A cooperative body (polling like the pipeline's chunk loops)
        // is actually stopped: the attempt fails with a structured
        // deadline message, and a faster retry rescues the cell.
        let cells: Vec<u64> = (0..4).collect();
        let sup = Supervision::none()
            .with_retries(1)
            .with_deadline(Duration::from_millis(10));
        let run = run_cells_supervised(&cells, Jobs::new(2), sup, |&c, attempt| {
            if c == 1 && attempt.number == 0 {
                // Simulates a runaway first attempt: chunk loop that
                // never halts on its own.
                loop {
                    cancel::check_current().unwrap_or_else(|e| panic!("cell: {e}"));
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            c + 10
        })
        .expect("the retry must rescue the cancelled cell");
        assert_eq!(run.results, vec![10, 11, 12, 13]);
        assert_eq!(run.over_deadline(), 1);
        assert_eq!(run.retried(), 1);
        let o = run.outcomes.iter().find(|o| o.index == 1).expect("outcome");
        assert!(o.over_deadline && o.attempts == 2);
        assert!(
            o.failures[0].contains("deadline exceeded"),
            "structured deadline failure, got: {}",
            o.failures[0]
        );
    }

    #[test]
    fn exhausted_deadlines_return_a_structured_deadline_error() {
        let cells: Vec<u64> = vec![0];
        let sup = Supervision::none().with_deadline(Duration::from_millis(5));
        let err = run_cells_supervised(&cells, Jobs::serial(), sup, |_, _| loop {
            cancel::check_current().unwrap_or_else(|e| panic!("cell: {e}"));
            std::thread::sleep(Duration::from_micros(200));
        })
        .expect_err("a cell that can never meet its deadline fails the run");
        assert_eq!(err.attempts, 1);
        assert!(err.failures[0].contains("cancelled: deadline exceeded"));
    }

    #[test]
    fn an_outer_cancel_scope_cancels_the_grid_without_retry_burn() {
        use std::sync::atomic::AtomicU32;
        let outer = CancelToken::new();
        outer.cancel("request dropped");
        let _scope = CancelScope::enter(outer);
        let attempts_seen = AtomicU32::new(0);
        let cells: Vec<u64> = (0..4).collect();
        let sup = Supervision::none().with_retries(5);
        let err = run_cells_supervised(&cells, Jobs::serial(), sup, |&c, _| {
            attempts_seen.fetch_add(1, Ordering::Relaxed);
            cancel::check_current().unwrap_or_else(|e| panic!("cell: {e}"));
            c
        })
        .expect_err("a cancelled parent fails the run");
        assert!(err.failures[0].contains("cancelled: request dropped"));
        assert_eq!(
            attempts_seen.load(Ordering::Relaxed),
            1,
            "retries are pointless under a cancelled parent"
        );
    }

    #[test]
    fn retried_results_stay_byte_identical_to_clean() {
        // The core guarantee: a cell that fails transiently and retries
        // computes the same pure function — the merged output cannot
        // tell supervision happened.
        let cells: Vec<u64> = (0..40).collect();
        let work = |c: u64| {
            let mut acc = c;
            for _ in 0..100 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let clean = crate::run_cells(&cells, Jobs::serial(), |&c| work(c));
        let sup = Supervision::default_robust();
        let faulty = run_cells_supervised(&cells, Jobs::new(4), sup, |&c, attempt| {
            // Every third cell fails its first two attempts.
            if c % 3 == 0 && attempt.number < 2 {
                panic!("injected transient");
            }
            work(c)
        })
        .expect("all cells rescued");
        assert_eq!(faulty.results, clean);
        assert_eq!(
            faulty.retried(),
            cells.iter().filter(|c| *c % 3 == 0).count()
        );
    }

    #[test]
    fn empty_grids_are_fine() {
        let run = run_cells_supervised(&[] as &[u8], Jobs::new(4), Supervision::none(), |_, _| 0u8)
            .expect("empty grid");
        assert!(run.results.is_empty() && run.outcomes.is_empty());
    }
}
