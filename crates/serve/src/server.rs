//! The sweep server: accept loop, admission control, coalescing and
//! graceful drain. Generic over the sweep handler so the transport
//! layer never depends on the experiment crates.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use probranch_faults as faults;

use crate::protocol::{read_frame, write_frame, Request, Response, Status, SweepRequest};

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server tuning knobs. The defaults suit the CI smoke gates; a real
/// deployment would size `max_inflight` to cores/`jobs`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Sweep requests admitted concurrently; arrivals beyond this are
    /// load-shed with [`Status::Overloaded`].
    pub max_inflight: usize,
    /// Per-connection read timeout (a peer that never sends a frame
    /// cannot pin a connection thread).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Accept-poll tick while idle (the listener runs non-blocking so
    /// the loop can notice shutdown between connections).
    pub accept_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            accept_poll: Duration::from_millis(20),
        }
    }
}

/// What the sweep handler reports back for one admitted request.
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// The rendered section text, byte-identical to the in-process
    /// run.
    Ok(String),
    /// The sweep was cooperatively cancelled (deadline, spurious
    /// cancel); the message is the structured failure.
    Cancelled(String),
    /// The sweep failed with a structured error.
    Failed(String),
    /// The request named an unknown section/scale/engine.
    BadRequest(String),
}

impl SweepOutcome {
    fn into_response(self) -> Response {
        match self {
            SweepOutcome::Ok(body) => Response::new(Status::Ok, body),
            SweepOutcome::Cancelled(msg) => Response::new(Status::Cancelled, msg),
            SweepOutcome::Failed(msg) => Response::new(Status::Failed, msg),
            SweepOutcome::BadRequest(msg) => Response::new(Status::BadRequest, msg),
        }
    }
}

/// Service counters, reported at drain and exported into the
/// throughput schema (`probranch-throughput/7`).
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Sweep requests admitted past the load-shedding gate.
    pub requests: u64,
    /// Admitted requests that shared a leader's in-flight computation
    /// instead of running their own.
    pub coalesced: u64,
    /// Requests rejected with [`Status::Overloaded`].
    pub shed: u64,
    /// Admitted requests whose sweep was cooperatively cancelled.
    pub cancelled: u64,
    /// Admitted requests whose sweep failed with a structured error.
    pub failed: u64,
}

impl StatsSnapshot {
    /// One-line human summary for the drain report.
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} coalesced), {} shed, {} cancelled, {} failed",
            self.requests, self.coalesced, self.shed, self.cancelled, self.failed
        )
    }
}

/// One coalescing cell: the leader publishes its outcome here and
/// wakes the waiters.
type CoalesceCell = Arc<(Mutex<Option<SweepOutcome>>, Condvar)>;

/// The sweep server. [`Server::run`] blocks until a drain completes;
/// see the crate docs for the robustness layers.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    stats: Stats,
}

impl Server {
    /// Binds the listener. The server does not accept until
    /// [`run`](Server::run).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Stats::default(),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `local_addr` error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers a graceful drain when set — wire it to a
    /// signal flag ([`crate::signal_shutdown_flag`]) or a test.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accepts and serves until a drain completes: a `shutdown`
    /// request or the shutdown handle stops admission, in-flight
    /// sweeps finish (new arrivals get [`Status::ShuttingDown`]), and
    /// the final counters return to the caller.
    ///
    /// # Errors
    ///
    /// Only fatal listener setup errors; per-connection failures are
    /// handled (and injectable) inside the loop.
    pub fn run<H>(&self, handler: H) -> std::io::Result<StatsSnapshot>
    where
        H: Fn(&SweepRequest) -> SweepOutcome + Sync,
    {
        self.listener.set_nonblocking(true)?;
        // Admitted sweeps currently running — the drain gate.
        let inflight = AtomicUsize::new(0);
        // Leader cells for in-flight coalescable requests.
        let coalesce: Mutex<HashMap<String, CoalesceCell>> = Mutex::new(HashMap::new());
        let mut conn_id: u64 = 0;

        std::thread::scope(|scope| {
            loop {
                if self.shutdown.load(Ordering::Acquire) && inflight.load(Ordering::Acquire) == 0 {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        conn_id += 1;
                        let id = conn_id;
                        // Injected accept-path fault: the connection is
                        // dropped before its request is read — the
                        // client sees EOF and retries.
                        if faults::injected(faults::Site::ServeAccept, &[id]) {
                            drop(stream);
                            continue;
                        }
                        let handler = &handler;
                        let inflight = &inflight;
                        let coalesce = &coalesce;
                        scope.spawn(move || {
                            self.serve_connection(stream, id, handler, inflight, coalesce);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(self.config.accept_poll);
                    }
                    Err(_) => {
                        // Transient accept failure (EMFILE, aborted
                        // handshake): back off and keep serving.
                        std::thread::sleep(self.config.accept_poll);
                    }
                }
            }
        });
        Ok(self.snapshot())
    }

    /// The current counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
        }
    }

    /// One connection: read the request frame, dispatch, write the
    /// response frame. All transport failures end the connection; the
    /// client's retry layer owns recovery.
    fn serve_connection<H>(
        &self,
        mut stream: TcpStream,
        id: u64,
        handler: &H,
        inflight: &AtomicUsize,
        coalesce: &Mutex<HashMap<String, CoalesceCell>>,
    ) where
        H: Fn(&SweepRequest) -> SweepOutcome + Sync,
    {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        // Injected read-path fault: answer with a structured failure
        // naming the site, so the client sees an attributable error
        // rather than a hang.
        if faults::injected(faults::Site::ServeRead, &[id]) {
            let resp = Response::new(Status::Failed, "injected fault: serve.read");
            self.write_response(&mut stream, id, &resp);
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return, // client gone or stalled past the timeout
        };
        let request = match Request::parse(&frame) {
            Ok(request) => request,
            Err(msg) => {
                self.write_response(&mut stream, id, &Response::new(Status::BadRequest, msg));
                return;
            }
        };
        let response = match request {
            Request::Ping => Response::new(Status::Ok, "pong"),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                Response::new(Status::Ok, "draining")
            }
            Request::Sweep(req) => self.run_sweep(&req, handler, inflight, coalesce),
        };
        // Injected post-sweep drop: the work happened (and fed the
        // coalescing cell / trace store) but the response is lost.
        if faults::injected(faults::Site::ServeDrop, &[id]) {
            return;
        }
        self.write_response(&mut stream, id, &response);
    }

    /// Admission control + coalescing around one sweep.
    fn run_sweep<H>(
        &self,
        req: &SweepRequest,
        handler: &H,
        inflight: &AtomicUsize,
        coalesce: &Mutex<HashMap<String, CoalesceCell>>,
    ) -> Response
    where
        H: Fn(&SweepRequest) -> SweepOutcome + Sync,
    {
        if self.shutdown.load(Ordering::Acquire) {
            return Response::new(Status::ShuttingDown, "server is draining; no new sweeps");
        }
        // Load-shed at admission: never accept-then-hang.
        let max = self.config.max_inflight;
        if inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < max).then_some(n + 1)
            })
            .is_err()
        {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Response::new(
                Status::Overloaded,
                format!("in-flight budget of {max} sweeps is spent; retry later"),
            );
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = self.coalesced_sweep(req, handler, coalesce);
        inflight.fetch_sub(1, Ordering::AcqRel);
        match &outcome {
            SweepOutcome::Cancelled(_) => {
                self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            SweepOutcome::Failed(_) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
            SweepOutcome::Ok(_) | SweepOutcome::BadRequest(_) => {}
        }
        outcome.into_response()
    }

    /// Runs the handler once per concurrent identical request: the
    /// first arrival for a key leads and computes; later arrivals wait
    /// on the leader's cell and share its outcome (all responses are
    /// byte-identical — sweeps are deterministic).
    fn coalesced_sweep<H>(
        &self,
        req: &SweepRequest,
        handler: &H,
        coalesce: &Mutex<HashMap<String, CoalesceCell>>,
    ) -> SweepOutcome
    where
        H: Fn(&SweepRequest) -> SweepOutcome + Sync,
    {
        let key = req.coalesce_key();
        let (cell, leader) = {
            let mut map = lock(coalesce);
            match map.get(&key) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    let cell: CoalesceCell = Arc::new((Mutex::new(None), Condvar::new()));
                    map.insert(key.clone(), Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if leader {
            let outcome = handler(req);
            {
                let mut slot = lock(&cell.0);
                *slot = Some(outcome.clone());
                cell.1.notify_all();
            }
            // Arrivals after this point start a fresh computation —
            // determinism makes that merely wasteful, never wrong.
            lock(coalesce).remove(&key);
            outcome
        } else {
            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut slot = lock(&cell.0);
            while slot.is_none() {
                slot = cell.1.wait(slot).unwrap_or_else(PoisonError::into_inner);
            }
            slot.clone().expect("leader published an outcome")
        }
    }

    /// Writes a response frame, subject to the injected write-path
    /// fault (the connection is closed with the response unsent).
    fn write_response(&self, stream: &mut TcpStream, id: u64, response: &Response) {
        if faults::injected(faults::Site::ServeWrite, &[id]) {
            return;
        }
        let _ = write_frame(stream, &response.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::protocol::PROTOCOL;

    fn canned(body: &str) -> impl Fn(&SweepRequest) -> SweepOutcome + Sync + '_ {
        move |req| {
            if req.section == "missing" {
                SweepOutcome::BadRequest("unknown section".into())
            } else {
                SweepOutcome::Ok(format!("{body}:{}", req.section))
            }
        }
    }

    fn sweep(section: &str) -> Request {
        Request::Sweep(SweepRequest {
            section: section.into(),
            scale: "smoke".into(),
            engine: "replay".into(),
            jobs: Some(1),
            deadline_ms: None,
        })
    }

    /// Binds a server on an ephemeral port, runs it on a scoped
    /// thread, runs `body` against the address, then drains.
    fn with_server<F>(config: ServerConfig, handler_body: &'static str, body: F) -> StatsSnapshot
    where
        F: FnOnce(std::net::SocketAddr),
    {
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let mut snapshot = StatsSnapshot::default();
        std::thread::scope(|scope| {
            let server = &server;
            let run = scope.spawn(move || server.run(canned(handler_body)).expect("run"));
            assert!(client::wait_ready(addr, Duration::from_secs(5)));
            body(addr);
            // The body may have drained the server already; a failed
            // shutdown request then just means it is gone.
            if let Ok(resp) = client::request(addr, &Request::Shutdown, Duration::from_secs(5)) {
                assert_eq!(resp.status, Status::Ok);
            }
            snapshot = run.join().expect("server thread");
        });
        snapshot
    }

    #[test]
    fn serves_sweeps_pings_and_bad_requests() {
        let stats = with_server(ServerConfig::default(), "body", |addr| {
            let resp =
                client::request(addr, &sweep("fig6"), Duration::from_secs(5)).expect("sweep");
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.body, "body:fig6");
            let resp =
                client::request(addr, &sweep("missing"), Duration::from_secs(5)).expect("sweep");
            assert_eq!(resp.status, Status::BadRequest);
            // A malformed frame gets a structured bad-request, not a
            // dropped connection.
            let mut stream = TcpStream::connect(addr).expect("connect");
            write_frame(&mut stream, format!("{PROTOCOL} explode\n").as_bytes()).unwrap();
            let resp = Response::parse(&read_frame(&mut stream).unwrap()).unwrap();
            assert_eq!(resp.status, Status::BadRequest);
        });
        assert_eq!(stats.requests, 2);
        assert_eq!((stats.shed, stats.coalesced), (0, 0));
    }

    #[test]
    fn draining_rejects_new_sweeps_with_shutting_down() {
        with_server(ServerConfig::default(), "body", |addr| {
            let resp = client::request(addr, &Request::Shutdown, Duration::from_secs(5))
                .expect("shutdown");
            assert_eq!(resp.status, Status::Ok);
            // The drain window is open until in-flight hits zero; a
            // sweep racing it must get ShuttingDown, never a hang.
            // (The server may also have exited already, in which case
            // the connect fails — both are a clean rejection.)
            if let Ok(resp) = client::request(addr, &sweep("fig6"), Duration::from_secs(5)) {
                assert_eq!(resp.status, Status::ShuttingDown);
            }
        });
    }

    #[test]
    fn admission_control_sheds_load_with_a_structured_response() {
        // A handler that blocks until released, so the in-flight
        // budget is provably spent when the shed probe arrives.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let handler_gate = Arc::clone(&gate);
        let config = ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let server = &server;
            let handler = move |_req: &SweepRequest| {
                let (lock_, cvar) = &*handler_gate;
                let mut open = lock_.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
                SweepOutcome::Ok("slow".into())
            };
            let run = scope.spawn(move || server.run(handler).expect("run"));
            assert!(client::wait_ready(addr, Duration::from_secs(5)));
            // First sweep occupies the only slot...
            let first = scope.spawn(move || {
                client::request(addr, &sweep("fig6"), Duration::from_secs(10)).expect("first")
            });
            // ...wait until it is actually admitted...
            let t0 = std::time::Instant::now();
            while server.snapshot().requests == 0 {
                assert!(t0.elapsed() < Duration::from_secs(5), "admission stuck");
                std::thread::sleep(Duration::from_millis(5));
            }
            // ...so the second is shed immediately.
            let shed = client::request(addr, &sweep("fig7"), Duration::from_secs(5)).expect("shed");
            assert_eq!(shed.status, Status::Overloaded);
            assert!(shed.body.contains("budget"));
            // Release the gate; the first completes normally.
            {
                let (lock_, cvar) = &*gate;
                *lock_.lock().unwrap() = true;
                cvar.notify_all();
            }
            assert_eq!(first.join().expect("join").status, Status::Ok);
            client::request(addr, &Request::Shutdown, Duration::from_secs(5)).expect("shutdown");
            let stats = run.join().expect("server");
            assert_eq!((stats.requests, stats.shed), (1, 1));
        });
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_computation() {
        let computations = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (h_comp, h_gate) = (Arc::clone(&computations), Arc::clone(&gate));
        let config = ServerConfig {
            max_inflight: 8,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let server = &server;
            let handler = move |req: &SweepRequest| {
                h_comp.fetch_add(1, Ordering::SeqCst);
                let (lock_, cvar) = &*h_gate;
                let mut open = lock_.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
                SweepOutcome::Ok(format!("computed:{}", req.section))
            };
            let run = scope.spawn(move || server.run(handler).expect("run"));
            assert!(client::wait_ready(addr, Duration::from_secs(5)));
            let clients: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        client::request(addr, &sweep("fig6"), Duration::from_secs(10))
                            .expect("sweep")
                    })
                })
                .collect();
            // Wait until the leader is computing and the rest are
            // parked on its cell.
            let t0 = std::time::Instant::now();
            while server.snapshot().coalesced < 3 {
                assert!(t0.elapsed() < Duration::from_secs(5), "coalescing stuck");
                std::thread::sleep(Duration::from_millis(5));
            }
            {
                let (lock_, cvar) = &*gate;
                *lock_.lock().unwrap() = true;
                cvar.notify_all();
            }
            let bodies: Vec<String> = clients
                .into_iter()
                .map(|c| {
                    let resp = c.join().expect("client");
                    assert_eq!(resp.status, Status::Ok);
                    resp.body
                })
                .collect();
            assert!(bodies.iter().all(|b| b == "computed:fig6"));
            client::request(addr, &Request::Shutdown, Duration::from_secs(5)).expect("shutdown");
            let stats = run.join().expect("server");
            assert_eq!(
                computations.load(Ordering::SeqCst),
                1,
                "one computation for four identical requests"
            );
            assert_eq!((stats.requests, stats.coalesced), (4, 3));
        });
    }

    #[test]
    fn injected_serve_faults_are_survivable_via_client_retry() {
        // serve.accept drops the first two connections; the client's
        // retry layer heals to a byte-identical response.
        let _scope = faults::ScopedPlan::install(faults::FaultPlan::seeded(3).arm_capped(
            faults::Site::ServeAccept,
            1.0,
            2,
        ));
        let stats = with_server(ServerConfig::default(), "body", |addr| {
            let resp = client::request_with_retry(addr, &sweep("fig6"), Duration::from_secs(5), 5)
                .expect("retries heal injected drops");
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.body, "body:fig6");
        });
        assert!(stats.requests >= 1);
    }
}
