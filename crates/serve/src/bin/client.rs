//! `probranch-client` — thin client for the sweep service.
//!
//! A full run (`probranch-client ADDR`) requests every section in
//! order and prints exactly what the in-process `figures` binary
//! prints, so CI can byte-diff the two. Transport failures are retried
//! (healing injected drops); structured errors exit 3, transport
//! exhaustion exits 2.

use std::process::ExitCode;
use std::time::Duration;

use probranch_serve::{request_with_retry, Request, Response, Status, SweepRequest, SECTIONS};

const USAGE: &str = "\
usage: probranch-client ADDR [options]

  Runs the full figure/table sweep against a `figures --serve` server,
  printing byte-identical output to the in-process run.

options:
  --scale smoke|bench|paper   sweep scale (default: smoke)
  --engine NAME               emulation engine (default: replay)
  --jobs N                    parallel cells per sweep
  --deadline-ms N             per-request cancellation deadline
  --sections a,b,c            subset of sections (default: all, with header)
  --retries N                 transport retry budget (default: 5)
  --timeout-s N               per-request timeout (default: 600)
  --ping                      health-check the server and exit
  --shutdown                  ask the server to drain and exit
";

struct Args {
    addr: String,
    scale: String,
    engine: String,
    jobs: Option<usize>,
    deadline_ms: Option<u64>,
    sections: Option<Vec<String>>,
    retries: u32,
    timeout: Duration,
    op: Op,
}

enum Op {
    Sweep,
    Ping,
    Shutdown,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let addr = match argv.next() {
        Some(a) if a != "--help" && a != "-h" => a,
        _ => return Err(USAGE.into()),
    };
    let mut args = Args {
        addr,
        scale: "smoke".into(),
        engine: "replay".into(),
        jobs: None,
        deadline_ms: None,
        sections: None,
        retries: 5,
        timeout: Duration::from_secs(600),
        op: Op::Sweep,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale")?,
            "--engine" => args.engine = value("--engine")?,
            "--jobs" => {
                args.jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                );
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--sections" => {
                args.sections = Some(
                    value("--sections")?
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect(),
                );
            }
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--timeout-s" => {
                args.timeout = Duration::from_secs(
                    value("--timeout-s")?
                        .parse()
                        .map_err(|e| format!("--timeout-s: {e}"))?,
                );
            }
            "--ping" => args.op = Op::Ping,
            "--shutdown" => args.op = Op::Shutdown,
            other => return Err(format!("unknown flag: {other}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Mirrors the in-process header, which formats the `Scale` enum with
/// `{:?}` (`Smoke`/`Bench`/`Paper`).
fn scale_debug_name(scale: &str) -> String {
    let mut chars = scale.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn send(args: &Args, req: &Request) -> Result<Response, ExitCode> {
    request_with_retry(&args.addr, req, args.timeout, args.retries).map_err(|e| {
        eprintln!(
            "probranch-client: transport failure after {} tries: {e}",
            args.retries
        );
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match args.op {
        Op::Ping => {
            return match send(&args, &Request::Ping) {
                Ok(resp) if resp.status == Status::Ok => {
                    println!("{}", resp.body);
                    ExitCode::SUCCESS
                }
                Ok(resp) => {
                    eprintln!("probranch-client: {}: {}", resp.status.name(), resp.body);
                    ExitCode::from(3)
                }
                Err(code) => code,
            };
        }
        Op::Shutdown => {
            return match send(&args, &Request::Shutdown) {
                Ok(resp) if resp.status == Status::Ok => {
                    println!("{}", resp.body);
                    ExitCode::SUCCESS
                }
                Ok(resp) => {
                    eprintln!("probranch-client: {}: {}", resp.status.name(), resp.body);
                    ExitCode::from(3)
                }
                Err(code) => code,
            };
        }
        Op::Sweep => {}
    }
    let full_run = args.sections.is_none();
    let sections: Vec<String> = match &args.sections {
        Some(list) => list.clone(),
        None => SECTIONS.iter().map(|s| (*s).to_string()).collect(),
    };
    if full_run {
        // Byte-identical to the `figures` header line.
        println!(
            "probranch — regenerating all tables & figures at {} scale\n",
            scale_debug_name(&args.scale)
        );
    }
    for section in &sections {
        let req = Request::Sweep(SweepRequest {
            section: section.clone(),
            scale: args.scale.clone(),
            engine: args.engine.clone(),
            jobs: args.jobs,
            deadline_ms: args.deadline_ms,
        });
        let resp = match send(&args, &req) {
            Ok(resp) => resp,
            Err(code) => return code,
        };
        match resp.status {
            Status::Ok => println!("{}", resp.body),
            status => {
                eprintln!(
                    "probranch-client: {section}: {}: {}",
                    status.name(),
                    resp.body
                );
                return ExitCode::from(3);
            }
        }
    }
    ExitCode::SUCCESS
}
