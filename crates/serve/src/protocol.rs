//! The wire protocol: length-prefixed frames carrying line-oriented
//! text payloads.
//!
//! A frame is a little-endian `u32` payload length followed by that
//! many bytes, capped at [`MAX_FRAME`] — a malformed or hostile length
//! fails the read instead of allocating unbounded memory. Payloads are
//! plain text: the first line is `probranch-serve/1 <op>` (requests)
//! or `probranch-serve/1 <status>` (responses); requests follow with
//! `key=value` lines, responses with one blank line and then the body
//! verbatim. Hand-rolled like the trace store's encoder — the build
//! environment has no serialization dependency, and the handful of
//! fields does not need one.
//!
//! One request, one response, one connection: the client opens a
//! connection per request and the server closes it after answering.
//! That keeps framing trivially recoverable under injected connection
//! drops — there is no mid-stream state to resynchronize.

use std::io::{Read, Write};

/// Protocol magic + version, the first token of every payload.
pub const PROTOCOL: &str = "probranch-serve/1";

/// Frame payload ceiling (64 MiB): larger lengths fail the read.
pub const MAX_FRAME: usize = 1 << 26;

/// The canonical section order of a full `figures` run — the sweep
/// sections a client requests to reproduce the in-process stdout
/// byte-for-byte. The server-side handler resolves these names.
pub const SECTIONS: [&str; 10] = [
    "table2", "table1", "fig1", "fig6", "fig7", "fig8", "fig9", "table3", "accuracy", "cost",
];

/// Writes one frame: `u32` little-endian payload length, then the
/// payload.
///
/// # Errors
///
/// Propagates the underlying writer's errors; payloads over
/// [`MAX_FRAME`] are rejected with `InvalidInput`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload.
///
/// # Errors
///
/// Propagates the underlying reader's errors (including read
/// timeouts); a length over [`MAX_FRAME`] fails with `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// One sweep request: which rendered section, at which scale, through
/// which engine, across how many workers, under what deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Section name (one of [`SECTIONS`]).
    pub section: String,
    /// Experiment scale (`smoke`, `bench`, `paper`).
    pub scale: String,
    /// Engine name (`replay`, `convoy`, `fused`, `reference`).
    pub engine: String,
    /// Worker count; `None` = the server's default.
    pub jobs: Option<usize>,
    /// Hard request deadline in milliseconds; `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

impl SweepRequest {
    /// The coalescing key: everything that shapes the response bytes.
    /// The deadline is deliberately excluded — it shapes whether the
    /// sweep finishes, not what it prints.
    pub fn coalesce_key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.section,
            self.scale,
            self.engine,
            self.jobs
                .map_or_else(|| "default".into(), |j| j.to_string()),
        )
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run one sweep section.
    Sweep(SweepRequest),
    /// Liveness/readiness probe; answered `ok` with body `pong`.
    Ping,
    /// Begin a graceful drain: finish in-flight sweeps, reject new
    /// ones, then exit.
    Shutdown,
}

impl Request {
    /// Serializes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        match self {
            Request::Ping => out.push_str(&format!("{PROTOCOL} ping\n")),
            Request::Shutdown => out.push_str(&format!("{PROTOCOL} shutdown\n")),
            Request::Sweep(r) => {
                out.push_str(&format!("{PROTOCOL} sweep\n"));
                out.push_str(&format!("section={}\n", r.section));
                out.push_str(&format!("scale={}\n", r.scale));
                out.push_str(&format!("engine={}\n", r.engine));
                if let Some(jobs) = r.jobs {
                    out.push_str(&format!("jobs={jobs}\n"));
                }
                if let Some(ms) = r.deadline_ms {
                    out.push_str(&format!("deadline-ms={ms}\n"));
                }
            }
        }
        out.into_bytes()
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line — returned
    /// to the client as a [`Status::BadRequest`] response.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
        let mut lines = text.lines();
        let head = lines.next().unwrap_or_default();
        let op = match head.strip_prefix(PROTOCOL) {
            Some(rest) => rest.trim(),
            None => {
                return Err(format!(
                    "unknown protocol header {head:?} (want {PROTOCOL})"
                ))
            }
        };
        match op {
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "sweep" => {
                let mut req = SweepRequest {
                    section: String::new(),
                    scale: "smoke".to_string(),
                    engine: "replay".to_string(),
                    jobs: None,
                    deadline_ms: None,
                };
                for line in lines {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Some((key, value)) = line.split_once('=') else {
                        return Err(format!("malformed request line {line:?}"));
                    };
                    match key {
                        "section" => req.section = value.to_string(),
                        "scale" => req.scale = value.to_string(),
                        "engine" => req.engine = value.to_string(),
                        "jobs" => {
                            req.jobs = Some(
                                value
                                    .parse()
                                    .map_err(|_| format!("bad jobs value {value:?}"))?,
                            );
                        }
                        "deadline-ms" => {
                            req.deadline_ms = Some(
                                value
                                    .parse()
                                    .map_err(|_| format!("bad deadline-ms value {value:?}"))?,
                            );
                        }
                        _ => return Err(format!("unknown request key {key:?}")),
                    }
                }
                if req.section.is_empty() {
                    return Err("sweep request missing section=".to_string());
                }
                Ok(Request::Sweep(req))
            }
            _ => Err(format!("unknown request op {op:?}")),
        }
    }
}

/// Response status line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The sweep ran; the body is the rendered section, byte-identical
    /// to the in-process run.
    Ok,
    /// Load-shed at admission: the in-flight budget was spent. The
    /// body names the budget; retry later.
    Overloaded,
    /// The server is draining; no new sweeps are admitted.
    ShuttingDown,
    /// The request frame did not parse or named unknown values.
    BadRequest,
    /// The sweep was cancelled — its deadline expired or a spurious
    /// cancel fired. The body carries the structured failure.
    Cancelled,
    /// The sweep failed; the body carries the structured
    /// `SupervisedError`-derived message.
    Failed,
}

impl Status {
    /// The status token on the wire.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::ShuttingDown => "shutting-down",
            Status::BadRequest => "bad-request",
            Status::Cancelled => "cancelled",
            Status::Failed => "failed",
        }
    }

    /// Parses a status token.
    pub fn parse(name: &str) -> Option<Status> {
        [
            Status::Ok,
            Status::Overloaded,
            Status::ShuttingDown,
            Status::BadRequest,
            Status::Cancelled,
            Status::Failed,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }
}

/// A response: a status plus a text body (the rendered section for
/// [`Status::Ok`], a diagnostic for everything else).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status line.
    pub status: Status,
    /// The body, verbatim.
    pub body: String,
}

impl Response {
    /// A response with this status and body.
    pub fn new(status: Status, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// Serializes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        format!("{PROTOCOL} {}\n\n{}", self.status.name(), self.body).into_bytes()
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed payload.
    pub fn parse(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())?;
        let (head, body) = text
            .split_once("\n\n")
            .ok_or_else(|| "response missing header/body separator".to_string())?;
        let token = head
            .strip_prefix(PROTOCOL)
            .ok_or_else(|| format!("unknown protocol header {head:?} (want {PROTOCOL})"))?
            .trim();
        let status =
            Status::parse(token).ok_or_else(|| format!("unknown response status {token:?}"))?;
        Ok(Response {
            status,
            body: body.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_lengths_are_capped() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
        // A hostile length fails instead of allocating 4 GiB.
        let mut hostile = (u32::MAX).to_le_bytes().to_vec();
        hostile.extend_from_slice(b"x");
        assert_eq!(
            read_frame(&mut hostile.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Shutdown,
            Request::Sweep(SweepRequest {
                section: "fig6".into(),
                scale: "smoke".into(),
                engine: "replay".into(),
                jobs: Some(2),
                deadline_ms: Some(30_000),
            }),
            Request::Sweep(SweepRequest {
                section: "table3".into(),
                scale: "bench".into(),
                engine: "convoy".into(),
                jobs: None,
                deadline_ms: None,
            }),
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.encode()).unwrap(), req);
        }
        assert!(Request::parse(b"not-a-protocol hello\n").is_err());
        assert!(Request::parse(&format!("{PROTOCOL} sweep\n").into_bytes()).is_err());
        assert!(Request::parse(
            &format!("{PROTOCOL} sweep\nsection=fig6\njobs=lots\n").into_bytes()
        )
        .is_err());
        assert!(Request::parse(&format!("{PROTOCOL} explode\n").into_bytes()).is_err());
    }

    #[test]
    fn responses_round_trip_with_bodies_verbatim() {
        // Bodies with blank lines must survive: only the FIRST blank
        // line separates header from body.
        let body = "FIG 6\n\nrow 1\nrow 2\n";
        for status in [
            Status::Ok,
            Status::Overloaded,
            Status::ShuttingDown,
            Status::BadRequest,
            Status::Cancelled,
            Status::Failed,
        ] {
            let resp = Response::new(status, body);
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
        }
        assert!(Response::parse(b"garbage").is_err());
    }

    #[test]
    fn coalesce_keys_ignore_deadlines() {
        let mut a = SweepRequest {
            section: "fig6".into(),
            scale: "smoke".into(),
            engine: "replay".into(),
            jobs: Some(2),
            deadline_ms: Some(1),
        };
        let key = a.coalesce_key();
        a.deadline_ms = None;
        assert_eq!(a.coalesce_key(), key);
        a.section = "fig7".into();
        assert_ne!(a.coalesce_key(), key);
    }
}
