//! # probranch-serve
//!
//! The resilient sweep service: serves the figure/table sweeps of the
//! `probranch` reproduction over a socket, wrapping one long-lived
//! shared trace store so every request benefits from (and feeds) the
//! same capture pool. Std-only networking — a small length-prefixed
//! framed protocol over [`std::net::TcpListener`]; no async runtime,
//! no serialization dependency (see [`protocol`]).
//!
//! The crate is transport plus robustness framework: the [`Server`]
//! is generic over a sweep handler (`Fn(&SweepRequest) -> SweepOutcome`),
//! and the `figures --serve` binary wires that handler to the
//! experiment layer. Four robustness layers, one per failure mode a
//! long-running service meets:
//!
//! * **Admission control** — a bounded in-flight budget: a request
//!   arriving while the budget is spent receives a structured
//!   [`Status::Overloaded`] response immediately (load-shedding, never
//!   accept-then-hang), and every connection carries read/write
//!   timeouts so a stalled peer cannot pin a worker.
//! * **Request coalescing** — concurrent identical sweep requests
//!   share one computation: the first becomes the leader, later
//!   arrivals wait on its result and are counted
//!   ([`StatsSnapshot::coalesced`]). Together with the trace store's
//!   per-key capture locks, N concurrent requests for one emulation
//!   key perform exactly one capture.
//! * **Cooperative cancellation** — requests carry an optional
//!   deadline the handler turns into a `CancelToken`; the pipeline's
//!   chunk loops poll it, so an expired request stops consuming CPU
//!   within one chunk and fails with a structured
//!   [`Status::Cancelled`] response.
//! * **Graceful shutdown** — SIGTERM/ctrl-c (see
//!   [`install_signal_shutdown`]) or a protocol `shutdown` request
//!   drains in-flight sweeps to completion while answering new ones
//!   with [`Status::ShuttingDown`], then returns so the driver can
//!   flush demotions to the trace directory before exit.
//!
//! The request path is torture-testable end to end: the
//! `serve.{accept,read,write,drop}` failpoints of `probranch-faults`
//! inject dropped accepts, failed frame reads/writes and post-sweep
//! connection drops under seeded plans, and the bundled
//! `probranch-client` binary retries transient transport failures so a
//! budget-capped fault plan heals to byte-identical output.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
mod sig;

pub use client::{request, request_with_retry, wait_ready};
pub use protocol::{
    read_frame, write_frame, Request, Response, Status, SweepRequest, MAX_FRAME, PROTOCOL, SECTIONS,
};
pub use server::{Server, ServerConfig, StatsSnapshot, SweepOutcome};
pub use sig::{install_signal_shutdown, signal_shutdown_flag};
