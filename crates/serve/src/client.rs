//! Client-side helpers: one request per connection, optional retry
//! with backoff (heals injected accept/write drops), and a readiness
//! probe for scripts that start the server in the background.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::protocol::{read_frame, write_frame, Request, Response};

/// Sends one request and reads one response over a fresh connection.
///
/// # Errors
///
/// Any transport failure (connect, frame I/O, a response that does not
/// parse) comes back as an [`std::io::Error`]; the caller decides
/// whether to retry.
pub fn request(
    addr: impl ToSocketAddrs,
    request: &Request,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &request.encode())?;
    let frame = read_frame(&mut stream)?;
    Response::parse(&frame).map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidData, msg))
}

/// [`request`], retrying transport failures up to `tries` attempts
/// with linear backoff. This is the layer that turns an injected
/// `serve.accept`/`serve.write`/`serve.drop` fault into a healed,
/// byte-identical response — structured protocol errors (a parsed
/// non-ok [`Response`]) are returned as-is, never retried.
///
/// # Errors
///
/// The last transport error once the attempt budget is spent.
pub fn request_with_retry(
    addr: impl ToSocketAddrs + Clone,
    req: &Request,
    timeout: Duration,
    tries: u32,
) -> std::io::Result<Response> {
    let mut last = None;
    for attempt in 0..tries.max(1) {
        match request(addr.clone(), req, timeout) {
            Ok(response) => return Ok(response),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(25 * u64::from(attempt + 1)));
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no attempts made")))
}

/// Pings until the server answers or the timeout elapses. Returns
/// whether the server became ready.
pub fn wait_ready(addr: impl ToSocketAddrs + Clone, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if request(addr.clone(), &Request::Ping, Duration::from_secs(1)).is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
