//! Signal-driven graceful shutdown.
//!
//! Installs minimal SIGINT/SIGTERM handlers whose only effect is one
//! atomic store into a process-wide flag — the sole async-signal-safe
//! operation the drain path needs. The serve loop polls the flag
//! between accepts and turns it into the same drain a protocol
//! `shutdown` request triggers.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the serve loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (SIGINT/SIGTERM) has been delivered since
/// [`install_signal_shutdown`] ran.
pub fn signal_shutdown_flag() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Installs the SIGINT/SIGTERM handlers. Idempotent; a no-op on
/// non-Unix targets (ctrl-c then terminates the process, losing only
/// the drain).
pub fn install_signal_shutdown() {
    sys::install();
}

#[cfg(unix)]
mod sys {
    // The only unsafe in the service: registering a handler via the
    // C `signal` entry point (std offers no stable API for this, and
    // the crate must stay dependency-free).
    #![allow(unsafe_code)]

    use std::sync::atomic::Ordering;

    use super::SHUTDOWN;

    /// The handler body is a single atomic store — async-signal-safe.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is registered with a handler that performs
        // only an atomic store, which is async-signal-safe; the
        // function pointer outlives the process (it is a static item).
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install_signal_shutdown();
        install_signal_shutdown();
        // No signal has been delivered in this test process (the flag
        // is process-global, so this also documents that tests must
        // not raise SIGINT/SIGTERM at themselves).
        assert!(!signal_shutdown_flag());
    }
}
