//! Application-specific output-accuracy metrics (paper Section VII-D,
//! in the spirit of AxBench): each benchmark's outputs under PBS are
//! compared against the original run with the metric the paper uses for
//! it — relative error, success-rate confidence intervals, or image RMS.

/// Relative error between two scalar outputs: `|a − b| / |a|`
/// (0 when both are 0).
pub fn relative_error(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        (a - b).abs() / a.abs()
    }
}

/// Maximum relative error across paired output vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths (outputs of the same
/// program must align).
pub fn max_relative_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "output vectors must align");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| relative_error(x, y))
        .fold(0.0, f64::max)
}

/// Normalized root-mean-square error between two "images" (histograms),
/// as used for Photon: RMS of the per-bin differences divided by the
/// mean bin magnitude of the reference.
///
/// # Panics
///
/// Panics if the images have different sizes.
pub fn normalized_rms(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "images must have equal size");
    if a.is_empty() {
        return 0.0;
    }
    let rms = (a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64)
        .sqrt();
    let scale = a.iter().map(|v| v.abs()).sum::<f64>() / a.len() as f64;
    if scale == 0.0 {
        if rms == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        rms / scale
    }
}

/// A binomial success-rate estimate with its 95% normal-approximation
/// confidence interval — the paper's Genetic accuracy metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessRate {
    /// Point estimate.
    pub rate: f64,
    /// Lower 95% bound (clamped to 0).
    pub lo: f64,
    /// Upper 95% bound (clamped to 1).
    pub hi: f64,
}

impl SuccessRate {
    /// Computes the estimate from `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn from_counts(successes: u64, trials: u64) -> SuccessRate {
        assert!(trials > 0, "success rate needs at least one trial");
        let p = successes as f64 / trials as f64;
        let half = 1.96 * (p * (1.0 - p) / trials as f64).sqrt();
        SuccessRate {
            rate: p,
            lo: (p - half).max(0.0),
            hi: (p + half).min(1.0),
        }
    }

    /// Whether two confidence intervals overlap — the paper's criterion
    /// for "no statistical evidence that PBS differs from the original".
    pub fn overlaps(&self, other: &SuccessRate) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(10.0, 10.0), 0.0);
        assert_eq!(relative_error(10.0, 9.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 1.0), f64::INFINITY);
        assert_eq!(relative_error(-10.0, -9.0), 0.1);
    }

    #[test]
    fn max_relative_error_picks_worst() {
        let a = [1.0, 2.0, 4.0];
        let b = [1.0, 1.0, 4.0];
        assert_eq!(max_relative_error(&a, &b), 0.5);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn max_relative_error_rejects_mismatch() {
        max_relative_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normalized_rms_zero_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(normalized_rms(&a, &a), 0.0);
    }

    #[test]
    fn normalized_rms_scales() {
        let a = [2.0, 2.0];
        let b = [2.2, 1.8];
        // rms = 0.2, scale = 2.0 -> 0.1.
        assert!((normalized_rms(&a, &b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn success_rate_interval() {
        let s = SuccessRate::from_counts(20, 100);
        assert_eq!(s.rate, 0.2);
        assert!(s.lo < 0.2 && s.hi > 0.2);
        assert!(s.lo >= 0.0 && s.hi <= 1.0);
    }

    #[test]
    fn overlap_detection() {
        let a = SuccessRate::from_counts(20, 100);
        let b = SuccessRate::from_counts(23, 100);
        assert!(a.overlaps(&b), "nearby rates overlap");
        let c = SuccessRate::from_counts(80, 100);
        assert!(!a.overlaps(&c), "distant rates do not");
    }

    #[test]
    fn degenerate_rates_have_valid_intervals() {
        let z = SuccessRate::from_counts(0, 10);
        assert_eq!(z.rate, 0.0);
        assert_eq!(z.lo, 0.0);
        let o = SuccessRate::from_counts(10, 10);
        assert_eq!(o.hi, 1.0);
    }
}
