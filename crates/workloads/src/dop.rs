//! **DOP** — digital option pricing via Monte Carlo (paper Section VI-A,
//! from QuantStart's "Digital option pricing with C++"). Two independent
//! Category-1 probabilistic branches: the digital call and digital put
//! in-the-money tests. The probabilistic values derive from a Gaussian
//! (Box–Muller), so DOP is excluded from the Table III uniform-stream
//! randomness tests, exactly as in the paper.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Digital option pricing parameters.
#[derive(Debug, Clone)]
pub struct Dop {
    /// Monte-Carlo paths.
    pub sims: i64,
    /// RNG seed (nonzero).
    pub seed: u64,
    /// Spot price.
    pub spot: f64,
    /// Strike.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub vol: f64,
    /// Maturity in years.
    pub maturity: f64,
}

impl Dop {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Dop {
        let sims = match scale {
            Scale::Smoke => 1_000,
            Scale::Bench => 10_000,
            Scale::Paper => 60_000,
        };
        Dop {
            sims,
            seed: seed.max(1),
            spot: 100.0,
            strike: 105.0,
            rate: 0.05,
            vol: 0.2,
            maturity: 1.0,
        }
    }

    fn s_adjust(&self) -> f64 {
        self.spot * (self.maturity * (self.rate - 0.5 * self.vol * self.vol)).exp()
    }

    fn vol_sqrt_t(&self) -> f64 {
        (self.vol * self.vol * self.maturity).sqrt()
    }

    /// Host reference: `(in-the-money call count, put count)`.
    pub fn reference_counts(&self) -> (u64, u64) {
        let mut rng = HostRng::new(self.seed);
        let s_adjust = self.s_adjust();
        let vst = self.vol_sqrt_t();
        let mut calls = 0u64;
        let mut puts = 0u64;
        for _ in 0..self.sims {
            let (z, _discarded) = rng.next_gauss_pair();
            let s_cur = (z * vst).exp() * s_adjust;
            let d_call = s_cur - self.strike;
            if d_call > 0.0 {
                calls += 1;
            }
            let d_put = self.strike - s_cur;
            if d_put > 0.0 {
                puts += 1;
            }
        }
        (calls, puts)
    }
}

impl Benchmark for Dop {
    fn name(&self) -> &'static str {
        "DOP"
    }

    fn category(&self) -> Category {
        Category::Cat1
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let skip_call = b.label("skip_call");
        let skip_put = b.label("skip_put");
        // r1 = call count, r2 = put count, r8 = i,
        // r10 = 0.0, r11 = vol*sqrt(T), r12 = S_adjust, r13 = strike.
        RNG.init(&mut b, self.seed);
        b.li(Reg::R1, 0).li(Reg::R2, 0).li(Reg::R8, 0);
        b.lif(Reg::R10, 0.0);
        b.lif(Reg::R11, self.vol_sqrt_t());
        b.lif(Reg::R12, self.s_adjust());
        b.lif(Reg::R13, self.strike);
        b.bind(top);
        // Draw the Gaussian (z1 of the pair is discarded, like the
        // classic non-caching Box-Muller call).
        RNG.next_gauss_pair(&mut b, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        b.fmul(Reg::R5, Reg::R3, Reg::R11);
        b.fexp(Reg::R5, Reg::R5);
        b.fmul(Reg::R5, Reg::R5, Reg::R12); // S_cur
                                            // Digital call: pays when S_cur - K > 0 (Category-1 prob branch).
        b.fsub(Reg::R6, Reg::R5, Reg::R13);
        b.prob_fcmp(CmpOp::Le, Reg::R6, Reg::R10);
        b.prob_jmp(None, skip_call);
        b.add(Reg::R1, Reg::R1, 1);
        b.bind(skip_call);
        // Digital put: pays when K - S_cur > 0. Derived from the
        // unswapped S_cur so the two branches stay independent.
        b.fsub(Reg::R7, Reg::R13, Reg::R5);
        b.prob_fcmp(CmpOp::Le, Reg::R7, Reg::R10);
        b.prob_jmp(None, skip_put);
        b.add(Reg::R2, Reg::R2, 1);
        b.bind(skip_put);
        b.add(Reg::R8, Reg::R8, 1);
        b.br(CmpOp::Lt, Reg::R8, self.sims, top);
        // Port 0: raw counts. Port 1: discounted digital prices.
        b.out(Reg::R1, 0);
        b.out(Reg::R2, 0);
        let discount = (-self.rate * self.maturity).exp();
        b.itof(Reg::R3, Reg::R1);
        b.itof(Reg::R4, Reg::R8);
        b.fdiv(Reg::R3, Reg::R3, Reg::R4);
        b.lif(Reg::R5, discount);
        b.fmul(Reg::R3, Reg::R3, Reg::R5);
        b.out(Reg::R3, 1); // call price
        b.itof(Reg::R3, Reg::R2);
        b.fdiv(Reg::R3, Reg::R3, Reg::R4);
        b.fmul(Reg::R3, Reg::R3, Reg::R5);
        b.out(Reg::R3, 1); // put price
        b.halt();
        b.build().expect("DOP program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        let (c, p) = self.reference_counts();
        vec![c, p]
    }

    fn uniform_controlled(&self) -> bool {
        false // Gaussian-derived (paper excludes DOP from Table III)
    }

    fn expected_prob_branches(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn isa_matches_reference() {
        let d = Dop::new(Scale::Smoke, 7);
        let r = run_functional(&d.program(), None, 10_000_000).unwrap();
        let (c, p) = d.reference_counts();
        assert_eq!(r.output(0), &[c, p]);
    }

    #[test]
    fn prices_are_plausible() {
        // Digital call price under Black-Scholes ~ exp(-rT) * N(d2);
        // with S=100, K=105, r=5%, v=20%, T=1: N(d2) ~ 0.48.
        let d = Dop::new(Scale::Bench, 3);
        let r = run_functional(&d.program(), None, 50_000_000).unwrap();
        let prices = r.output_f64(1);
        assert!((prices[0] - 0.455).abs() < 0.05, "call {0}", prices[0]);
        assert!((prices[1] - 0.495).abs() < 0.05, "put {0}", prices[1]);
    }

    #[test]
    fn call_and_put_partition_paths() {
        // Each path is in the money for exactly one of call/put (ties at
        // S_cur == K have measure zero).
        let d = Dop::new(Scale::Smoke, 11);
        let (c, p) = d.reference_counts();
        assert_eq!(c + p, d.sims as u64);
    }

    #[test]
    fn pbs_error_is_tiny() {
        let d = Dop::new(Scale::Bench, 5);
        let base = run_functional(&d.program(), None, 50_000_000).unwrap();
        let pbs = run_functional(&d.program(), Some(Default::default()), 50_000_000).unwrap();
        let rel = (base.output_f64(1)[0] - pbs.output_f64(1)[0]).abs() / base.output_f64(1)[0];
        assert!(rel < 0.01, "relative error {rel}");
    }
}
