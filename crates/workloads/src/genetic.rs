//! **Genetic** — a generational genetic algorithm searching for a hidden
//! 32-bit pattern (paper Section II-A1, after Buckland's classic C
//! example). Two independent Category-1 probabilistic branches: the
//! crossover decision (`u < crossover_rate`) and the per-bit mutation
//! decision (`u < mutation_rate`). The mutation branch guards a *nested*
//! if (flip the bit one way or the other) — the code shape that defeats
//! GCC's if-conversion in the paper's Table I.
//!
//! Accuracy metric (paper Section VII-D): the success rate over seeds —
//! the fraction of trials that find the exact target within the
//! generation budget.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Genetic-algorithm benchmark parameters.
#[derive(Debug, Clone)]
pub struct Genetic {
    /// Population size.
    pub population: i64,
    /// Generation budget.
    pub generations: i64,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// RNG seed (nonzero).
    pub seed: u64,
}

/// Chromosome length in bits.
pub const CHROMOSOME_BITS: u32 = 32;

const POP_BASE: i64 = 0x1000;
const NEW_OFFSET: i64 = 0x1000;

impl Genetic {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Genetic {
        // Tuned so the success rate sits mid-range (~0.25, near the
        // paper's reported ~0.2) — required for the §VII-D confidence
        // interval comparison to be informative.
        let (population, generations) = match scale {
            Scale::Smoke => (8, 12),
            Scale::Bench => (16, 20),
            Scale::Paper => (16, 20),
        };
        Genetic {
            population,
            generations,
            crossover_rate: 0.7,
            mutation_rate: 0.08,
            seed: seed.max(1),
        }
    }

    /// The hidden target pattern, derived from the seed (identical in
    /// the ISA program and the host reference).
    pub fn target(&self) -> u64 {
        (self.seed.wrapping_mul(0x9E3779B97F4A7C15) >> 16) & 0xFFFF_FFFF
    }

    /// Host reference: `(success, generations_run)`.
    pub fn reference_result(&self) -> (u64, u64) {
        let mut rng = HostRng::new(self.seed);
        let target = self.target();
        let p = self.population as usize;
        let mut pop: Vec<u64> = (0..p).map(|_| rng.next_u64() & 0xFFFF_FFFF).collect();
        let mut newpop = vec![0u64; p];
        for gen in 0..self.generations as u64 {
            // Selection: best and second-best by Hamming distance.
            let mut best_s = 64u64;
            let mut best_x = 0u64;
            let mut sec_s = 64u64;
            let mut sec_x = 0u64;
            for &x in &pop {
                let s = (x ^ target).count_ones() as u64;
                if s == 0 {
                    return (1, gen);
                }
                if s < best_s {
                    sec_s = best_s;
                    sec_x = best_x;
                    best_s = s;
                    best_x = x;
                } else if s < sec_s {
                    sec_s = s;
                    sec_x = x;
                }
            }
            // Breeding.
            for slot in newpop.iter_mut() {
                let mut child = best_x;
                let u = rng.next_f64();
                if u < self.crossover_rate {
                    let point = rng.next_u64() & 31;
                    let mask = (1u64 << point) - 1;
                    child = (best_x & mask) | (sec_x & !mask & 0xFFFF_FFFF);
                }
                for j in 0..CHROMOSOME_BITS as u64 {
                    let u = rng.next_f64();
                    if u < self.mutation_rate {
                        if (child >> j) & 1 == 0 {
                            child |= 1 << j;
                        } else {
                            child &= !(1 << j);
                        }
                    }
                }
                *slot = child;
            }
            pop.copy_from_slice(&newpop);
        }
        (0, self.generations as u64)
    }

    /// Success rate over `seeds` consecutive seeds starting at
    /// `first_seed` (host reference; used for the paper's §VII-D CI
    /// comparison).
    pub fn reference_success_rate(&self, first_seed: u64, seeds: u64) -> f64 {
        let mut ok = 0u64;
        for s in 0..seeds {
            let g = Genetic {
                seed: first_seed + s,
                ..self.clone()
            };
            ok += g.reference_result().0;
        }
        ok as f64 / seeds as f64
    }
}

impl Benchmark for Genetic {
    fn name(&self) -> &'static str {
        "Genetic"
    }

    fn category(&self) -> Category {
        Category::Cat1
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let gen_top = b.label("gen_top");
        let fit_top = b.label("fit_top");
        let else_check = b.label("else_check");
        let fit_next = b.label("fit_next");
        let breed_top = b.label("breed_top");
        let no_cross = b.label("no_cross");
        let mut_top = b.label("mut_top");
        let no_mut = b.label("no_mut");
        let set_bit = b.label("set_bit");
        let mut_done = b.label("mut_done");
        let copy_top = b.label("copy_top");
        let init_top = b.label("init_top");
        let found = b.label("found");
        let failed = b.label("failed");

        // Constants.
        RNG.init(&mut b, self.seed);
        b.li(Reg::R0, 1);
        b.li(Reg::R16, 0x5555_5555_5555_5555u64 as i64);
        b.li(Reg::R17, 0x3333_3333_3333_3333u64 as i64);
        b.li(Reg::R18, 0x0f0f_0f0f_0f0f_0f0fu64 as i64);
        b.li(Reg::R19, 0x0101_0101_0101_0101u64 as i64);
        b.li(Reg::R20, self.target() as i64);
        b.lif(Reg::R21, self.crossover_rate);
        b.lif(Reg::R22, self.mutation_rate);
        b.li(Reg::R23, POP_BASE);

        // Population init: pop[i] = next_u64 & 0xFFFFFFFF.
        b.li(Reg::R2, 0);
        b.bind(init_top);
        RNG.next_u64(&mut b, Reg::R13);
        b.and(Reg::R13, Reg::R13, 0xFFFF_FFFF);
        b.shl(Reg::R9, Reg::R2, 3);
        b.add(Reg::R9, Reg::R9, Reg::R23);
        b.st(Reg::R13, Reg::R9, 0);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.population, init_top);

        b.li(Reg::R1, 0); // gen = 0
        b.bind(gen_top);
        // ---- selection ---------------------------------------------------
        b.li(Reg::R6, 64)
            .li(Reg::R4, 0)
            .li(Reg::R7, 64)
            .li(Reg::R5, 0);
        b.li(Reg::R2, 0);
        b.bind(fit_top);
        b.shl(Reg::R9, Reg::R2, 3);
        b.add(Reg::R9, Reg::R9, Reg::R23);
        b.ld(Reg::R10, Reg::R9, 0);
        // SWAR popcount of x ^ target.
        b.xor(Reg::R13, Reg::R10, Reg::R20);
        b.shr(Reg::R14, Reg::R13, 1);
        b.and(Reg::R14, Reg::R14, Reg::R16);
        b.sub(Reg::R13, Reg::R13, Reg::R14);
        b.and(Reg::R14, Reg::R13, Reg::R17);
        b.shr(Reg::R13, Reg::R13, 2);
        b.and(Reg::R13, Reg::R13, Reg::R17);
        b.add(Reg::R13, Reg::R13, Reg::R14);
        b.shr(Reg::R14, Reg::R13, 4);
        b.add(Reg::R13, Reg::R13, Reg::R14);
        b.and(Reg::R13, Reg::R13, Reg::R18);
        b.mul(Reg::R13, Reg::R13, Reg::R19);
        b.shr(Reg::R12, Reg::R13, 56); // score
        b.br(CmpOp::Eq, Reg::R12, 0, found);
        b.br(CmpOp::Ge, Reg::R12, Reg::R6, else_check);
        b.mov(Reg::R7, Reg::R6).mov(Reg::R5, Reg::R4);
        b.mov(Reg::R6, Reg::R12).mov(Reg::R4, Reg::R10);
        b.jmp(fit_next);
        b.bind(else_check);
        b.br(CmpOp::Ge, Reg::R12, Reg::R7, fit_next);
        b.mov(Reg::R7, Reg::R12).mov(Reg::R5, Reg::R10);
        b.bind(fit_next);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.population, fit_top);

        // ---- breeding ------------------------------------------------------
        b.li(Reg::R2, 0);
        b.bind(breed_top);
        b.mov(Reg::R8, Reg::R4); // child = best
        RNG.next_f64(&mut b, Reg::R11);
        // Probabilistic branch 1: crossover (Category 1).
        b.prob_fcmp(CmpOp::Ge, Reg::R11, Reg::R21);
        b.prob_jmp(None, no_cross);
        RNG.next_u64(&mut b, Reg::R13);
        b.and(Reg::R13, Reg::R13, 31);
        b.shl(Reg::R14, Reg::R0, Reg::R13);
        b.sub(Reg::R14, Reg::R14, 1); // mask
        b.and(Reg::R8, Reg::R4, Reg::R14);
        b.xor(Reg::R13, Reg::R14, -1);
        b.and(Reg::R13, Reg::R5, Reg::R13);
        b.and(Reg::R13, Reg::R13, 0xFFFF_FFFF);
        b.or(Reg::R8, Reg::R8, Reg::R13);
        b.bind(no_cross);
        // Per-bit mutation loop.
        b.li(Reg::R3, 0);
        b.bind(mut_top);
        RNG.next_f64(&mut b, Reg::R11);
        // Probabilistic branch 2: mutation (Category 1, with the paper's
        // nested if inside the guarded region).
        b.prob_fcmp(CmpOp::Ge, Reg::R11, Reg::R22);
        b.prob_jmp(None, no_mut);
        b.shr(Reg::R13, Reg::R8, Reg::R3);
        b.and(Reg::R13, Reg::R13, 1);
        b.br(CmpOp::Eq, Reg::R13, 0, set_bit);
        b.shl(Reg::R14, Reg::R0, Reg::R3);
        b.xor(Reg::R14, Reg::R14, -1);
        b.and(Reg::R8, Reg::R8, Reg::R14); // clear bit
        b.jmp(mut_done);
        b.bind(set_bit);
        b.shl(Reg::R14, Reg::R0, Reg::R3);
        b.or(Reg::R8, Reg::R8, Reg::R14); // set bit
        b.bind(mut_done);
        b.bind(no_mut);
        b.add(Reg::R3, Reg::R3, 1);
        b.br(CmpOp::Lt, Reg::R3, CHROMOSOME_BITS as i64, mut_top);
        // Store child into the next generation.
        b.shl(Reg::R9, Reg::R2, 3);
        b.add(Reg::R9, Reg::R9, Reg::R23);
        b.st(Reg::R8, Reg::R9, NEW_OFFSET);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.population, breed_top);

        // ---- generation swap -------------------------------------------------
        b.li(Reg::R2, 0);
        b.bind(copy_top);
        b.shl(Reg::R9, Reg::R2, 3);
        b.add(Reg::R9, Reg::R9, Reg::R23);
        b.ld(Reg::R13, Reg::R9, NEW_OFFSET);
        b.st(Reg::R13, Reg::R9, 0);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.population, copy_top);

        b.add(Reg::R1, Reg::R1, 1);
        b.br(CmpOp::Lt, Reg::R1, self.generations, gen_top);

        b.bind(failed);
        b.li(Reg::R15, 0);
        b.out(Reg::R15, 0);
        b.out(Reg::R1, 0);
        b.halt();

        b.bind(found);
        b.li(Reg::R15, 1);
        b.out(Reg::R15, 0);
        b.out(Reg::R1, 0);
        b.halt();

        b.build().expect("Genetic program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        let (success, gens) = self.reference_result();
        vec![success, gens]
    }

    fn uniform_controlled(&self) -> bool {
        true
    }

    fn expected_prob_branches(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn isa_matches_reference() {
        for seed in [3u64, 8, 21] {
            let g = Genetic::new(Scale::Smoke, seed);
            let r = run_functional(&g.program(), None, 50_000_000).unwrap();
            assert_eq!(r.output(0), g.reference_output().as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn success_rate_is_mid_range() {
        // The accuracy experiment needs a success rate away from 0 and 1
        // (paper reports ~0.2).
        let g = Genetic::new(Scale::Bench, 1);
        let rate = g.reference_success_rate(1, 24);
        assert!(
            (0.05..=0.95).contains(&rate),
            "success rate {rate} too extreme for CI comparison"
        );
    }

    #[test]
    fn target_depends_on_seed() {
        assert_ne!(
            Genetic::new(Scale::Smoke, 1).target(),
            Genetic::new(Scale::Smoke, 2).target()
        );
        assert!(Genetic::new(Scale::Smoke, 1).target() <= 0xFFFF_FFFF);
    }

    #[test]
    fn success_finds_exact_target() {
        // Find a succeeding seed, then verify the run reports a
        // generation within budget.
        let mut found = false;
        for seed in 1..60 {
            let g = Genetic::new(Scale::Bench, seed);
            let (ok, gens) = g.reference_result();
            if ok == 1 {
                assert!(gens < g.generations as u64);
                found = true;
                break;
            }
        }
        assert!(found, "no succeeding seed in 1..60");
    }

    #[test]
    fn pbs_run_completes_and_reports_outcome() {
        let g = Genetic::new(Scale::Smoke, 9);
        let r = run_functional(&g.program(), Some(Default::default()), 50_000_000).unwrap();
        let out = r.output(0);
        assert!(out[0] == 0 || out[0] == 1);
        assert!(r.pbs.unwrap().directed > 0);
    }
}
