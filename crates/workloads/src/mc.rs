//! The two Monte-Carlo kernel benchmarks: **PI** (area of the unit
//! quarter-circle) and **MC-integ** (area under `x²` on `[0,1]`), paper
//! Section II-A5. One Category-1 probabilistic branch each.
//!
//! Both compare a derived probabilistic value against a *constant*
//! (`s - 1 < 0` and `x² - y > 0` respectively) so the PBS `Const-Val`
//! rule holds over the whole run.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Monte-Carlo π estimation (paper's `PI` benchmark): draw `(dx, dy)`
/// uniform in the unit square, count points inside the unit circle.
#[derive(Debug, Clone)]
pub struct Pi {
    /// Number of sample points.
    pub samples: i64,
    /// RNG seed (nonzero).
    pub seed: u64,
}

impl Pi {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Pi {
        let samples = match scale {
            Scale::Smoke => 2_000,
            Scale::Bench => 20_000,
            Scale::Paper => 120_000,
        };
        Pi {
            samples,
            seed: seed.max(1),
        }
    }

    /// Host reference: the hit count.
    pub fn reference_hits(&self) -> u64 {
        let mut rng = HostRng::new(self.seed);
        let mut hits = 0u64;
        for _ in 0..self.samples {
            let dx = rng.next_f64();
            let dy = rng.next_f64();
            let s = dx * dx + dy * dy;
            // ISA computes s - 1.0 and tests < 0.
            if s - 1.0 < 0.0 {
                hits += 1;
            }
        }
        hits
    }
}

impl Benchmark for Pi {
    fn name(&self) -> &'static str {
        "PI"
    }

    fn category(&self) -> Category {
        Category::Cat1
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let skip = b.label("skip");
        // r1 = hits, r2 = i, r3/r4 = dx/dy, r5 = s, r10 = 0.0 const.
        RNG.init(&mut b, self.seed);
        b.li(Reg::R1, 0).li(Reg::R2, 0).lif(Reg::R10, 0.0);
        b.bind(top);
        RNG.next_f64(&mut b, Reg::R3);
        RNG.next_f64(&mut b, Reg::R4);
        b.fmul(Reg::R3, Reg::R3, Reg::R3);
        b.fmul(Reg::R4, Reg::R4, Reg::R4);
        b.fadd(Reg::R5, Reg::R3, Reg::R4);
        b.lif(Reg::R6, 1.0);
        b.fsub(Reg::R5, Reg::R5, Reg::R6); // s - 1
                                           // Probabilistic branch (Category 1): outside the circle -> skip.
        b.prob_fcmp(CmpOp::Ge, Reg::R5, Reg::R10);
        b.prob_jmp(None, skip);
        b.add(Reg::R1, Reg::R1, 1); // hits++
        b.bind(skip);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.samples, top);
        // Outputs: hit count (port 0), pi estimate = 4*hits/samples (port 1).
        b.out(Reg::R1, 0);
        b.itof(Reg::R7, Reg::R1);
        b.itof(Reg::R8, Reg::R2);
        b.fdiv(Reg::R7, Reg::R7, Reg::R8);
        b.lif(Reg::R9, 4.0);
        b.fmul(Reg::R7, Reg::R7, Reg::R9);
        b.out(Reg::R7, 1);
        b.halt();
        b.build().expect("PI program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        vec![self.reference_hits()]
    }

    fn uniform_controlled(&self) -> bool {
        true
    }

    fn expected_prob_branches(&self) -> usize {
        1
    }
}

/// Monte-Carlo integration of `x²` over `[0,1]` (paper's `MC-integ`
/// benchmark): draw `(x, y)`, count points under the curve.
#[derive(Debug, Clone)]
pub struct McInteg {
    /// Number of sample points.
    pub samples: i64,
    /// RNG seed (nonzero).
    pub seed: u64,
}

impl McInteg {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> McInteg {
        let samples = match scale {
            Scale::Smoke => 2_000,
            Scale::Bench => 20_000,
            Scale::Paper => 120_000,
        };
        McInteg {
            samples,
            seed: seed.max(1),
        }
    }

    /// Host reference: the under-curve count.
    pub fn reference_hits(&self) -> u64 {
        let mut rng = HostRng::new(self.seed);
        let mut hits = 0u64;
        for _ in 0..self.samples {
            let x = rng.next_f64();
            let y = rng.next_f64();
            if x * x - y > 0.0 {
                hits += 1;
            }
        }
        hits
    }
}

impl Benchmark for McInteg {
    fn name(&self) -> &'static str {
        "MC-integ"
    }

    fn category(&self) -> Category {
        Category::Cat1
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let skip = b.label("skip");
        RNG.init(&mut b, self.seed);
        b.li(Reg::R1, 0).li(Reg::R2, 0).lif(Reg::R10, 0.0);
        b.bind(top);
        RNG.next_f64(&mut b, Reg::R3); // x
        RNG.next_f64(&mut b, Reg::R4); // y
        b.fmul(Reg::R5, Reg::R3, Reg::R3);
        b.fsub(Reg::R5, Reg::R5, Reg::R4); // x^2 - y
                                           // Probabilistic branch (Category 1): above the curve -> skip.
        b.prob_fcmp(CmpOp::Le, Reg::R5, Reg::R10);
        b.prob_jmp(None, skip);
        b.add(Reg::R1, Reg::R1, 1);
        b.bind(skip);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.samples, top);
        b.out(Reg::R1, 0);
        b.itof(Reg::R7, Reg::R1);
        b.itof(Reg::R8, Reg::R2);
        b.fdiv(Reg::R7, Reg::R7, Reg::R8); // integral estimate ~ 1/3
        b.out(Reg::R7, 1);
        b.halt();
        b.build().expect("MC-integ program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        vec![self.reference_hits()]
    }

    fn uniform_controlled(&self) -> bool {
        true
    }

    fn expected_prob_branches(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn pi_estimate_converges() {
        let p = Pi::new(Scale::Bench, 9);
        let report = run_functional(&p.program(), None, 50_000_000).unwrap();
        let estimate = f64::from_bits(report.output(1)[0]);
        assert!(
            (estimate - std::f64::consts::PI).abs() < 0.05,
            "pi estimate {estimate}"
        );
    }

    #[test]
    fn mc_integ_estimate_converges() {
        let p = McInteg::new(Scale::Bench, 9);
        let report = run_functional(&p.program(), None, 50_000_000).unwrap();
        let estimate = f64::from_bits(report.output(1)[0]);
        assert!(
            (estimate - 1.0 / 3.0).abs() < 0.02,
            "integral estimate {estimate}"
        );
    }

    #[test]
    fn pi_hits_match_reference_exactly() {
        let p = Pi::new(Scale::Smoke, 42);
        let report = run_functional(&p.program(), None, 10_000_000).unwrap();
        assert_eq!(report.output(0), &[p.reference_hits()]);
    }

    #[test]
    fn mc_hits_match_reference_exactly() {
        let p = McInteg::new(Scale::Smoke, 42);
        let report = run_functional(&p.program(), None, 10_000_000).unwrap();
        assert_eq!(report.output(0), &[p.reference_hits()]);
    }

    #[test]
    fn pbs_keeps_pi_estimate_statistically_sound() {
        let p = Pi::new(Scale::Bench, 4);
        let base = run_functional(&p.program(), None, 50_000_000).unwrap();
        let pbs = run_functional(&p.program(), Some(Default::default()), 50_000_000).unwrap();
        let h_base = base.output(0)[0] as f64;
        let h_pbs = pbs.output(0)[0] as f64;
        assert!(
            (h_base - h_pbs).abs() / h_base < 0.01,
            "{h_base} vs {h_pbs}"
        );
    }

    #[test]
    fn different_seeds_give_different_counts() {
        let a = Pi::new(Scale::Smoke, 1).reference_hits();
        let b = Pi::new(Scale::Smoke, 2).reference_hits();
        assert_ne!(a, b);
    }
}
