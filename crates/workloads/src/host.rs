//! Host-side mirrors of the ISA-level random-number routines.
//!
//! The workloads implement xorshift64\* and Box–Muller *in simulated
//! instructions* (see [`crate::asmlib`]); these host implementations
//! follow the exact same arithmetic so that a host reference run and an
//! ISA run (without PBS) produce bit-identical outputs — the foundation
//! of the output-accuracy experiments (paper Section VII-D).

/// A host mirror of the ISA xorshift64\* generator.
///
/// ```
/// use probranch_workloads::HostRng;
/// let mut r = HostRng::new(42);
/// let x = r.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRng {
    state: u64,
}

/// The xorshift64\* output multiplier (shared with the ISA emitters).
pub const XS_MULT: u64 = 0x2545F4914F6CDD1D;

/// The `[0, 1)` scale factor: 2^-53 (shared with the ISA emitters).
pub const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

impl HostRng {
    /// Creates a generator; a zero seed is remapped to a fixed nonzero
    /// constant (zero is the one invalid xorshift state).
    pub fn new(seed: u64) -> HostRng {
        HostRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw value (xorshift64\*: shift-register step, then multiply).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(XS_MULT)
    }

    /// Next double in `[0, 1)`, using exactly the ISA arithmetic:
    /// `itof(u >> 11) * 2^-53`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as i64 as f64) * F64_SCALE
    }

    /// A standard-normal pair via the basic Box–Muller transform, using
    /// exactly the ISA operation sequence.
    pub fn next_gauss_pair(&mut self) -> (f64, f64) {
        let u1 = self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_rng_crate_reference() {
        // Our mirror must agree with probranch-rng's XorShift64Star,
        // which carries its own reference vectors.
        use probranch_rng::{UniformSource, XorShift64Star};
        let mut host = HostRng::new(12345);
        let mut reference = XorShift64Star::seed(12345);
        for _ in 0..100 {
            assert_eq!(host.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn zero_seed_remapped() {
        let mut r = HostRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut r = HostRng::new(7);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gauss_pair_moments() {
        let mut r = HostRng::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let (a, b) = r.next_gauss_pair();
            sum += a + b;
            sq += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sq / (2 * n) as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
