//! **Bandit** — an epsilon-greedy multi-armed bandit (paper Section
//! II-A3, after Komiyama's BanditLib). One Category-1 probabilistic
//! branch: the explore/exploit decision (`u < ε`), reached through a
//! *non-inlined function call* from the pull loop — the structure that
//! defeats both if-conversion and CFD in Table I while PBS's
//! `Function-PC` context still covers it.
//!
//! Rewards are Bernoulli draws resolved branchlessly (`sltu`-style
//! arithmetic), as a tuned bandit implementation would, so the only
//! random *control flow* is the epsilon branch plus the argmax scan.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Number of arms.
pub const ARMS: i64 = 8;

const P_BASE: i64 = 0x100; // arm probabilities (f64 bits)
const WINS_BASE: i64 = 0x200; // accumulated rewards per arm
const PULLS_BASE: i64 = 0x300; // pulls per arm

/// Multi-armed-bandit benchmark parameters.
#[derive(Debug, Clone)]
pub struct Bandit {
    /// Total pulls.
    pub pulls: i64,
    /// Exploration probability.
    pub epsilon: f64,
    /// RNG seed (nonzero).
    pub seed: u64,
}

impl Bandit {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Bandit {
        let pulls = match scale {
            Scale::Smoke => 2_000,
            Scale::Bench => 20_000,
            Scale::Paper => 120_000,
        };
        Bandit {
            pulls,
            epsilon: 0.1,
            seed: seed.max(1),
        }
    }

    /// Arm success probabilities: `p_k = 0.1 + 0.8 k / ARMS`.
    pub fn arm_probability(k: i64) -> f64 {
        0.1 + 0.8 * k as f64 / ARMS as f64
    }

    /// Host reference: `(total_reward, pulls_of_best_arm)`.
    pub fn reference(&self) -> (u64, u64) {
        let mut rng = HostRng::new(self.seed);
        let mut wins = [0u64; ARMS as usize];
        let mut pulls = [0u64; ARMS as usize];
        let mut total = 0u64;
        for _ in 0..self.pulls {
            let u = rng.next_f64();
            let arm = if u < self.epsilon {
                (rng.next_u64() & (ARMS as u64 - 1)) as usize
            } else {
                // Argmax of empirical mean, first-best wins ties; arms
                // never pulled score 1.0 (optimistic initialization).
                let mut best = 0usize;
                let mut best_v = -1.0f64;
                for k in 0..ARMS as usize {
                    let v = if pulls[k] == 0 {
                        1.0
                    } else {
                        wins[k] as f64 / pulls[k] as f64
                    };
                    if v > best_v {
                        best_v = v;
                        best = k;
                    }
                }
                best
            };
            let r = rng.next_f64();
            let reward = (r < Bandit::arm_probability(arm as i64)) as u64;
            wins[arm] += reward;
            pulls[arm] += 1;
            total += reward;
        }
        (total, pulls[ARMS as usize - 1])
    }
}

impl Benchmark for Bandit {
    fn name(&self) -> &'static str {
        "Bandit"
    }

    fn category(&self) -> Category {
        Category::Cat1
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let pull_top = b.label("pull_top");
        let select_fn = b.label("select_fn");
        let exploit = b.label("exploit");
        let select_done = b.label("select_done");
        let arg_top = b.label("arg_top");
        let arg_skip = b.label("arg_skip");
        let arg_pulled = b.label("arg_pulled");
        let arg_next = b.label("arg_next");
        let init_top = b.label("init_top");
        let end = b.label("end");
        // r1 = pull index, r2 = total reward, r8 = arm,
        // r10 = 0.0 const, r11 = epsilon, r12 = 1.0 const,
        // scratch r3..r7, r9, r13..r15.
        RNG.init(&mut b, self.seed);
        b.li(Reg::R1, 0).li(Reg::R2, 0);
        b.lif(Reg::R10, 0.0);
        b.lif(Reg::R11, self.epsilon);
        b.lif(Reg::R12, 1.0);
        // Initialize arm probabilities in memory.
        b.li(Reg::R3, 0);
        b.bind(init_top);
        b.itof(Reg::R4, Reg::R3);
        b.lif(Reg::R5, 0.8 / ARMS as f64);
        b.fmul(Reg::R4, Reg::R4, Reg::R5);
        b.lif(Reg::R5, 0.1);
        b.fadd(Reg::R4, Reg::R4, Reg::R5);
        b.shl(Reg::R6, Reg::R3, 3);
        b.st(Reg::R4, Reg::R6, P_BASE);
        b.add(Reg::R3, Reg::R3, 1);
        b.br(CmpOp::Lt, Reg::R3, ARMS, init_top);

        b.bind(pull_top);
        b.call(select_fn); // arm in r8
                           // Bernoulli reward, branchless: reward = (r < p[arm]).
        RNG.next_f64(&mut b, Reg::R4);
        b.shl(Reg::R6, Reg::R8, 3);
        b.ld(Reg::R5, Reg::R6, P_BASE);
        // Branchless Bernoulli: reward = sign bit of (r - p), since
        // negative doubles have the top bit set and r == p yields +0.0.
        b.fsub(Reg::R5, Reg::R4, Reg::R5); // r - p[arm]
        b.shr(Reg::R7, Reg::R5, 63); // 1 when r < p
                                     // wins[arm] += reward; pulls[arm] += 1; total += reward.
        b.ld(Reg::R9, Reg::R6, WINS_BASE);
        b.add(Reg::R9, Reg::R9, Reg::R7);
        b.st(Reg::R9, Reg::R6, WINS_BASE);
        b.ld(Reg::R9, Reg::R6, PULLS_BASE);
        b.add(Reg::R9, Reg::R9, 1);
        b.st(Reg::R9, Reg::R6, PULLS_BASE);
        b.add(Reg::R2, Reg::R2, Reg::R7);
        b.add(Reg::R1, Reg::R1, 1);
        b.br(CmpOp::Lt, Reg::R1, self.pulls, pull_top);
        // Outputs: total reward and pulls of the best arm (port 0).
        b.out(Reg::R2, 0);
        b.li(Reg::R6, (ARMS - 1) * 8);
        b.ld(Reg::R9, Reg::R6, PULLS_BASE);
        b.out(Reg::R9, 0);
        b.jmp(end);

        // ---- fn select_fn: returns arm index in r8 ----------------------
        b.bind(select_fn);
        RNG.next_f64(&mut b, Reg::R3);
        // The probabilistic branch (Category 1): exploit when u >= eps.
        b.prob_fcmp(CmpOp::Ge, Reg::R3, Reg::R11);
        b.prob_jmp(None, exploit);
        // Explore: uniform arm.
        RNG.next_u64(&mut b, Reg::R8);
        b.and(Reg::R8, Reg::R8, ARMS - 1);
        b.jmp(select_done);
        b.bind(exploit);
        // Argmax of empirical means with optimistic init.
        b.li(Reg::R8, 0);
        b.lif(Reg::R4, -1.0); // best value
        b.li(Reg::R5, 0); // k
        b.bind(arg_top);
        b.shl(Reg::R6, Reg::R5, 3);
        b.ld(Reg::R7, Reg::R6, PULLS_BASE);
        b.br(CmpOp::Ne, Reg::R7, 0, arg_pulled);
        b.mov(Reg::R9, Reg::R12); // unpulled arm scores 1.0
        b.jmp(arg_skip);
        b.bind(arg_pulled);
        b.ld(Reg::R9, Reg::R6, WINS_BASE);
        b.itof(Reg::R9, Reg::R9);
        b.itof(Reg::R7, Reg::R7);
        b.fdiv(Reg::R9, Reg::R9, Reg::R7);
        b.bind(arg_skip);
        b.fbr(CmpOp::Le, Reg::R9, Reg::R4, arg_next);
        b.mov(Reg::R4, Reg::R9);
        b.mov(Reg::R8, Reg::R5);
        b.bind(arg_next);
        b.add(Reg::R5, Reg::R5, 1);
        b.br(CmpOp::Lt, Reg::R5, ARMS, arg_top);
        b.bind(select_done);
        b.ret();

        b.bind(end);
        b.halt();
        b.build().expect("Bandit program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        let (total, best_pulls) = self.reference();
        vec![total, best_pulls]
    }

    fn uniform_controlled(&self) -> bool {
        true
    }

    fn expected_prob_branches(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn isa_matches_reference() {
        let w = Bandit::new(Scale::Smoke, 7);
        let r = run_functional(&w.program(), None, 50_000_000).unwrap();
        assert_eq!(r.output(0), w.reference_output().as_slice());
    }

    #[test]
    fn learns_to_prefer_the_best_arm() {
        let w = Bandit::new(Scale::Bench, 3);
        let (total, best_pulls) = w.reference();
        // The best arm pays 0.8; epsilon-greedy should pull it most of
        // the time, so the average reward approaches 0.8.
        let avg = total as f64 / w.pulls as f64;
        assert!(avg > 0.6, "average reward {avg}");
        assert!(
            best_pulls as f64 / w.pulls as f64 > 0.5,
            "best-arm share {best_pulls}"
        );
    }

    #[test]
    fn reward_sign_trick_is_correct() {
        // (r - p) >> 63 must equal (r < p) for the values in play
        // (p in (0,1), r in [0,1)).
        let mut rng = HostRng::new(5);
        for _ in 0..10_000 {
            let r = rng.next_f64();
            let p = rng.next_f64().max(0.001);
            let diff = r - p;
            let trick = diff.to_bits() >> 63;
            let expect = (r < p) as u64;
            assert_eq!(trick, expect, "r={r} p={p}");
        }
    }

    #[test]
    fn pbs_reward_error_is_small() {
        let w = Bandit::new(Scale::Bench, 11);
        let base = run_functional(&w.program(), None, 50_000_000).unwrap();
        let pbs = run_functional(&w.program(), Some(Default::default()), 50_000_000).unwrap();
        let a = base.output(0)[0] as f64;
        let b = pbs.output(0)[0] as f64;
        assert!((a - b).abs() / a < 0.05, "{a} vs {b}");
    }
}
