//! # probranch-workloads
//!
//! The eight probabilistic benchmarks of *Architectural Support for
//! Probabilistic Branches* (MICRO 2018, Table II), written in the
//! `probranch` ISA with their probabilistic branches marked via
//! `PROB_CMP`/`PROB_JMP`, plus host-Rust reference implementations that
//! mirror the ISA arithmetic bit for bit.
//!
//! | Benchmark | Category | Prob. branches | Domain |
//! |-----------|----------|----------------|--------|
//! | [`Dop`] | 1 | 2 | digital option pricing (Monte Carlo) |
//! | [`Greeks`] | 2 | 3 | option sensitivities (Monte Carlo) |
//! | [`Swaptions`] | 2 | 3 | swaption portfolio pricing |
//! | [`Genetic`] | 1 | 2 | evolutionary optimization |
//! | [`Photon`] | 2 | 2 | light transport in a slab |
//! | [`McInteg`] | 1 | 1 | Monte Carlo integration |
//! | [`Pi`] | 1 | 1 | Monte Carlo π estimation |
//! | [`Bandit`] | 1 | 1 | epsilon-greedy multi-armed bandit |
//!
//! Instruction counts are scaled from the paper's billions to millions
//! (documented in `DESIGN.md`); every probabilistic branch still
//! executes tens of thousands of times, far above the paper's
//! "couple thousand iterations" correctness threshold.
//!
//! ```
//! use probranch_workloads::{Benchmark, Pi, Scale};
//! use probranch_pipeline::run_functional;
//!
//! let pi = Pi::new(Scale::Smoke, 1);
//! let report = run_functional(&pi.program(), None, 10_000_000)?;
//! let estimate = f64::from_bits(report.output(1)[0]);
//! assert!((estimate - std::f64::consts::PI).abs() < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod asmlib;
mod bandit;
mod dop;
mod genetic;
mod greeks;
mod host;
mod mc;
mod photon;
mod swaptions;

pub use bandit::Bandit;
pub use dop::Dop;
pub use genetic::Genetic;
pub use greeks::Greeks;
pub use host::{HostRng, F64_SCALE, XS_MULT};
pub use mc::{McInteg, Pi};
pub use photon::Photon;
pub use swaptions::Swaptions;

use probranch_isa::Program;

/// Probabilistic-branch category (paper Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// The probabilistic value is not used after the branch.
    Cat1,
    /// The probabilistic value (or a derivative) is used after the
    /// branch; PBS must swap values.
    Cat2,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Cat1 => write!(f, "1"),
            Category::Cat2 => write!(f, "2"),
        }
    }
}

/// Workload size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for unit tests (thousands of instructions).
    Smoke,
    /// Bench-harness default (hundreds of thousands of instructions per
    /// run, so full sweeps finish in seconds).
    Bench,
    /// Figure-quality runs (millions of instructions).
    Paper,
}

/// A paper benchmark: an ISA program plus its host reference.
///
/// `Send` is a supertrait so built benchmarks (and `Box<dyn Benchmark>`
/// collections from [`all_benchmarks`]) can move into the worker
/// threads of the parallel experiment harness; implementations are
/// plain parameter structs, so this costs nothing.
pub trait Benchmark: Send {
    /// The paper's benchmark name ("DOP", "Greeks", ...).
    fn name(&self) -> &'static str;

    /// Probabilistic-branch category (Table II).
    fn category(&self) -> Category;

    /// Builds the ISA program.
    fn program(&self) -> Program;

    /// Runs the host-Rust reference implementation, returning the same
    /// values the ISA program emits on output port 0 (bit-identical for
    /// a PBS-less run).
    fn reference_output(&self) -> Vec<u64>;

    /// Whether the probabilistic branches are controlled by
    /// uniform-derived values (Table III eligibility; DOP and Greeks use
    /// Gaussians and are excluded, as in the paper).
    fn uniform_controlled(&self) -> bool;

    /// Expected number of static probabilistic branch sites (Table II).
    fn expected_prob_branches(&self) -> usize;
}

/// Identifiers for the eight benchmarks, in the paper's Table II order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    Dop,
    Greeks,
    Swaptions,
    Genetic,
    Photon,
    McInteg,
    Pi,
    Bandit,
}

impl BenchmarkId {
    /// All eight, in Table II order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::Dop,
        BenchmarkId::Greeks,
        BenchmarkId::Swaptions,
        BenchmarkId::Genetic,
        BenchmarkId::Photon,
        BenchmarkId::McInteg,
        BenchmarkId::Pi,
        BenchmarkId::Bandit,
    ];

    /// Constructs the benchmark at a given scale and seed.
    pub fn build(self, scale: Scale, seed: u64) -> Box<dyn Benchmark> {
        match self {
            BenchmarkId::Dop => Box::new(Dop::new(scale, seed)),
            BenchmarkId::Greeks => Box::new(Greeks::new(scale, seed)),
            BenchmarkId::Swaptions => Box::new(Swaptions::new(scale, seed)),
            BenchmarkId::Genetic => Box::new(Genetic::new(scale, seed)),
            BenchmarkId::Photon => Box::new(Photon::new(scale, seed)),
            BenchmarkId::McInteg => Box::new(McInteg::new(scale, seed)),
            BenchmarkId::Pi => Box::new(Pi::new(scale, seed)),
            BenchmarkId::Bandit => Box::new(Bandit::new(scale, seed)),
        }
    }
}

/// Builds all eight benchmarks.
pub fn all_benchmarks(scale: Scale, seed: u64) -> Vec<Box<dyn Benchmark>> {
    BenchmarkId::ALL
        .iter()
        .map(|id| id.build(scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_all_eight() {
        let all = all_benchmarks(Scale::Smoke, 3);
        assert_eq!(all.len(), 8);
        let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            [
                "DOP",
                "Greeks",
                "Swaptions",
                "Genetic",
                "Photon",
                "MC-integ",
                "PI",
                "Bandit"
            ]
        );
    }

    #[test]
    fn categories_match_table_ii() {
        use Category::*;
        let expect = [Cat1, Cat2, Cat2, Cat1, Cat2, Cat1, Cat1, Cat1];
        for (b, e) in all_benchmarks(Scale::Smoke, 3).iter().zip(expect) {
            assert_eq!(b.category(), e, "{}", b.name());
        }
    }

    #[test]
    fn uniform_eligibility_matches_table_iii() {
        // DOP and Greeks use Gaussian-derived values (excluded).
        for b in all_benchmarks(Scale::Smoke, 3) {
            let expect = !matches!(b.name(), "DOP" | "Greeks");
            assert_eq!(b.uniform_controlled(), expect, "{}", b.name());
        }
    }

    #[test]
    fn static_prob_branch_counts_match_table_ii() {
        for b in all_benchmarks(Scale::Smoke, 3) {
            let (prob, total) = b.program().branch_counts();
            assert_eq!(prob, b.expected_prob_branches(), "{}", b.name());
            assert!(
                total > prob,
                "{} must also contain regular branches",
                b.name()
            );
        }
    }

    #[test]
    fn isa_matches_host_reference_bit_for_bit() {
        for b in all_benchmarks(Scale::Smoke, 12345) {
            let report = probranch_pipeline::run_functional(&b.program(), None, 50_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert_eq!(
                report.output(0),
                b.reference_output().as_slice(),
                "{}: ISA and host reference disagree",
                b.name()
            );
        }
    }

    #[test]
    fn all_benchmarks_run_under_pbs_without_fault() {
        for b in all_benchmarks(Scale::Smoke, 5) {
            let report = probranch_pipeline::run_functional(
                &b.program(),
                Some(probranch_core::PbsConfig::default()),
                50_000_000,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let pbs = report.pbs.expect("PBS attached");
            assert!(pbs.directed > 0, "{}: PBS never engaged: {pbs:?}", b.name());
        }
    }
}
