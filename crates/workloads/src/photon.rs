//! **Photon** — stochastic light transport through a translucent slab
//! (paper Section II-A4, after the Scratchapixel Monte-Carlo lesson).
//! Two Category-2 probabilistic branches — the absorption test and the
//! backscatter test — both comparing a fresh uniform draw against a
//! run-constant threshold, with the draw reused *after* the branch
//! (deposit weighting and scatter distance). The photon state (depth,
//! weight) carries a loop dependence across bounces, the property that
//! makes the loop "hard to split" for control-flow decoupling in the
//! paper's Table I.
//!
//! Output: a 16-bin absorption-depth histogram (the paper compares
//! Photon outputs as images via average RMS error) plus the reflected
//! and transmitted weight sums.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Number of absorption histogram bins.
pub const BINS: usize = 16;

const BIN_BASE: i64 = 0x100;
const MAX_BOUNCES: i64 = 64;

/// Photon-transport benchmark parameters.
#[derive(Debug, Clone)]
pub struct Photon {
    /// Photons to trace.
    pub photons: i64,
    /// RNG seed (nonzero).
    pub seed: u64,
    /// Absorption probability per interaction.
    pub albedo_absorb: f64,
    /// Backscatter probability per interaction.
    pub p_backscatter: f64,
}

impl Photon {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Photon {
        let photons = match scale {
            Scale::Smoke => 400,
            Scale::Bench => 4_000,
            Scale::Paper => 25_000,
        };
        Photon {
            photons,
            seed: seed.max(1),
            albedo_absorb: 0.3,
            p_backscatter: 0.5,
        }
    }

    /// Host reference: `(bins, reflected, transmitted)` — bins hold
    /// absorbed weight per depth slice.
    pub fn reference(&self) -> ([f64; BINS], f64, f64) {
        let mut rng = HostRng::new(self.seed);
        let mut bins = [0.0f64; BINS];
        let mut reflected = 0.0f64;
        let mut transmitted = 0.0f64;
        for _ in 0..self.photons {
            let mut z = 0.0f64;
            let mut w = 1.0f64;
            for _bounce in 0..MAX_BOUNCES {
                let u1 = rng.next_f64();
                let s = u1.ln() * -0.2;
                z += s;
                if z > 1.0 {
                    transmitted += w;
                    break;
                }
                let u2 = rng.next_f64();
                if u2 < self.albedo_absorb {
                    // Deposit w * (u2 + 0.5) into the depth bin.
                    let dep = (u2 + 0.5) * w;
                    let idx = ((z * 16.0) as i64).clamp(0, 15);
                    bins[idx as usize] += dep;
                    break;
                }
                let u3 = rng.next_f64();
                if u3 < self.p_backscatter {
                    z -= (u3 + 0.2) * 0.3;
                }
                if z < 0.0 {
                    reflected += w;
                    break;
                }
                w *= 0.9;
            }
        }
        (bins, reflected, transmitted)
    }
}

impl Benchmark for Photon {
    fn name(&self) -> &'static str {
        "Photon"
    }

    fn category(&self) -> Category {
        Category::Cat2
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let photon_top = b.label("photon_top");
        let bounce_top = b.label("bounce_top");
        let transmit = b.label("transmit");
        let no_absorb = b.label("no_absorb");
        let no_back = b.label("no_back");
        let reflect = b.label("reflect");
        let photon_done = b.label("photon_done");
        let clamp_lo = b.label("clamp_lo");
        let clamp_done = b.label("clamp_done");
        let emit_top = b.label("emit_top");
        // r1 = photon index, r2 = Rd, r3 = bounce, r4 = z, r5 = w,
        // r6..r14 scratch, r15 = Tt,
        // consts: r16 = 0.0, r17 = 1.0, r18 = absorb thr, r19 = 0.5,
        // r20 = -0.2, r21 = 0.3, r22 = 0.9, r23 = 0.2.
        RNG.init(&mut b, self.seed);
        b.li(Reg::R1, 0);
        b.lif(Reg::R2, 0.0);
        b.lif(Reg::R15, 0.0);
        b.lif(Reg::R16, 0.0);
        b.lif(Reg::R17, 1.0);
        b.lif(Reg::R18, self.albedo_absorb);
        b.lif(Reg::R19, 0.5);
        b.lif(Reg::R20, -0.2);
        b.lif(Reg::R21, 0.3);
        b.lif(Reg::R22, 0.9);
        b.lif(Reg::R23, 0.2);

        b.bind(photon_top);
        b.mov(Reg::R4, Reg::R16); // z = 0
        b.mov(Reg::R5, Reg::R17); // w = 1
        b.li(Reg::R3, 0);
        b.bind(bounce_top);
        // Step: s = -0.2 * ln(u1); z += s.
        RNG.next_f64(&mut b, Reg::R6);
        b.fln(Reg::R7, Reg::R6);
        b.fmul(Reg::R7, Reg::R7, Reg::R20);
        b.fadd(Reg::R4, Reg::R4, Reg::R7);
        // Transmission boundary (regular branch: derived from z, not a
        // marked probabilistic branch — mirrors the paper's unmarked
        // boundary tests).
        b.fbr(CmpOp::Gt, Reg::R4, Reg::R17, transmit);
        // Absorption (probabilistic branch 1, Category 2: u2 reused for
        // the deposit weight after the branch).
        RNG.next_f64(&mut b, Reg::R9);
        b.prob_fcmp(CmpOp::Ge, Reg::R9, Reg::R18);
        b.prob_jmp(None, no_absorb);
        b.fadd(Reg::R10, Reg::R9, Reg::R19); // u2 + 0.5 (swapped u2)
        b.fmul(Reg::R10, Reg::R10, Reg::R5); // deposit
        b.lif(Reg::R11, 16.0);
        b.fmul(Reg::R11, Reg::R4, Reg::R11);
        b.ftoi(Reg::R12, Reg::R11);
        b.br(CmpOp::Lt, Reg::R12, 0, clamp_lo);
        b.br(CmpOp::Le, Reg::R12, 15, clamp_done);
        b.li(Reg::R12, 15);
        b.jmp(clamp_done);
        b.bind(clamp_lo);
        b.li(Reg::R12, 0);
        b.bind(clamp_done);
        b.shl(Reg::R13, Reg::R12, 3);
        b.ld(Reg::R14, Reg::R13, BIN_BASE);
        b.fadd(Reg::R14, Reg::R14, Reg::R10);
        b.st(Reg::R14, Reg::R13, BIN_BASE);
        b.jmp(photon_done);
        b.bind(no_absorb);
        // Backscatter (probabilistic branch 2, Category 2: u3 sets the
        // scatter distance after the branch).
        RNG.next_f64(&mut b, Reg::R9);
        b.prob_fcmp(CmpOp::Ge, Reg::R9, Reg::R19);
        b.prob_jmp(None, no_back);
        b.fadd(Reg::R10, Reg::R9, Reg::R23); // u3 + 0.2 (swapped u3)
        b.fmul(Reg::R10, Reg::R10, Reg::R21);
        b.fsub(Reg::R4, Reg::R4, Reg::R10);
        b.bind(no_back);
        // Reflection boundary.
        b.fbr(CmpOp::Lt, Reg::R4, Reg::R16, reflect);
        // Weight decay (loop-carried dependence).
        b.fmul(Reg::R5, Reg::R5, Reg::R22);
        b.add(Reg::R3, Reg::R3, 1);
        b.br(CmpOp::Lt, Reg::R3, MAX_BOUNCES, bounce_top);
        b.jmp(photon_done); // bounce budget exhausted
        b.bind(transmit);
        b.fadd(Reg::R15, Reg::R15, Reg::R5);
        b.jmp(photon_done);
        b.bind(reflect);
        b.fadd(Reg::R2, Reg::R2, Reg::R5);
        b.bind(photon_done);
        b.add(Reg::R1, Reg::R1, 1);
        b.br(CmpOp::Lt, Reg::R1, self.photons, photon_top);

        // Emit the histogram (port 0), then Rd and Tt (port 1).
        b.li(Reg::R3, 0);
        b.bind(emit_top);
        b.shl(Reg::R13, Reg::R3, 3);
        b.ld(Reg::R14, Reg::R13, BIN_BASE);
        b.out(Reg::R14, 0);
        b.add(Reg::R3, Reg::R3, 1);
        b.br(CmpOp::Lt, Reg::R3, BINS as i64, emit_top);
        b.out(Reg::R2, 1);
        b.out(Reg::R15, 1);
        b.halt();
        b.build().expect("Photon program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        let (bins, _, _) = self.reference();
        bins.iter().map(|v| v.to_bits()).collect()
    }

    fn uniform_controlled(&self) -> bool {
        true
    }

    fn expected_prob_branches(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn isa_matches_reference_bins_and_sums() {
        let p = Photon::new(Scale::Smoke, 7);
        let r = run_functional(&p.program(), None, 50_000_000).unwrap();
        let (bins, rd, tt) = p.reference();
        let got: Vec<u64> = r.output(0).to_vec();
        let want: Vec<u64> = bins.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
        assert_eq!(r.output(1), &[rd.to_bits(), tt.to_bits()]);
    }

    #[test]
    fn weight_is_conserved_approximately() {
        // Absorbed + reflected + transmitted should account for most of
        // the injected weight (decay and the bounce cap lose a little).
        let p = Photon::new(Scale::Bench, 3);
        let (bins, rd, tt) = p.reference();
        let absorbed: f64 = bins.iter().sum();
        let total = absorbed + rd + tt;
        let injected = p.photons as f64;
        assert!(
            total > 0.5 * injected && total <= injected * 1.5001,
            "total {total} of {injected}"
        );
    }

    #[test]
    fn absorption_profile_decays_with_depth() {
        // Deeper bins receive less absorbed weight (beyond the first).
        let p = Photon::new(Scale::Bench, 5);
        let (bins, _, _) = p.reference();
        let front: f64 = bins[..4].iter().sum();
        let back: f64 = bins[12..].iter().sum();
        assert!(front > back, "front {front} back {back}");
    }

    #[test]
    fn pbs_rms_error_is_small() {
        let p = Photon::new(Scale::Bench, 9);
        let base = run_functional(&p.program(), None, 50_000_000).unwrap();
        let pbs = run_functional(&p.program(), Some(Default::default()), 50_000_000).unwrap();
        let a = base.output_f64(0);
        let b = pbs.output_f64(0);
        let scale: f64 = a.iter().sum::<f64>() / BINS as f64;
        let rms = (a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            / BINS as f64)
            .sqrt();
        let rel = rms / scale;
        // Paper Section VII-D reports 3.9% for Photon; allow headroom.
        assert!(rel < 0.15, "relative RMS {rel}");
    }
}
