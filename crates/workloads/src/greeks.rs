//! **Greeks** — Monte-Carlo estimation of option price sensitivities via
//! finite differences (paper Section II-A2, from QuantStart's
//! "Calculating the Greeks"). Three *dependent* Category-2 probabilistic
//! branches: the same Gaussian draw prices the option at three bumped
//! spots, and each payoff test's probabilistic value (`S_cur − K`) is
//! accumulated *after* the branch — the value-swap path of PBS.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Greeks benchmark parameters.
#[derive(Debug, Clone)]
pub struct Greeks {
    /// Monte-Carlo paths.
    pub sims: i64,
    /// RNG seed (nonzero).
    pub seed: u64,
    /// Spot price.
    pub spot: f64,
    /// Finite-difference bump.
    pub bump: f64,
    /// Strike.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub vol: f64,
    /// Maturity.
    pub maturity: f64,
}

impl Greeks {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Greeks {
        let sims = match scale {
            Scale::Smoke => 800,
            Scale::Bench => 8_000,
            Scale::Paper => 40_000,
        };
        Greeks {
            sims,
            seed: seed.max(1),
            spot: 100.0,
            bump: 1.0,
            strike: 100.0,
            rate: 0.05,
            vol: 0.2,
            maturity: 1.0,
        }
    }

    fn drift(&self) -> f64 {
        (self.maturity * (self.rate - 0.5 * self.vol * self.vol)).exp()
    }

    fn vol_sqrt_t(&self) -> f64 {
        (self.vol * self.vol * self.maturity).sqrt()
    }

    /// Host reference: the three payoff sums (down, mid, up) as raw `f64`
    /// bits.
    pub fn reference_sums(&self) -> (f64, f64, f64) {
        let mut rng = HostRng::new(self.seed);
        let drift = self.drift();
        let vst = self.vol_sqrt_t();
        let spots = [self.spot - self.bump, self.spot, self.spot + self.bump];
        let mut sums = [0.0f64; 3];
        for _ in 0..self.sims {
            let (z, _discarded) = rng.next_gauss_pair();
            let growth = (z * vst).exp() * drift;
            for (k, &s0) in spots.iter().enumerate() {
                let s_cur = s0 * growth;
                let d = s_cur - self.strike;
                if d > 0.0 {
                    sums[k] += d;
                }
            }
        }
        (sums[0], sums[1], sums[2])
    }

    /// Host reference: `(price, delta, gamma)` from the payoff sums.
    pub fn reference_greeks(&self) -> (f64, f64, f64) {
        let (lo, mid, hi) = self.reference_sums();
        let disc = (-self.rate * self.maturity).exp() / self.sims as f64;
        let (lo, mid, hi) = (lo * disc, mid * disc, hi * disc);
        let delta = (hi - lo) / (2.0 * self.bump);
        let gamma = (hi - 2.0 * mid + lo) / (self.bump * self.bump);
        (mid, delta, gamma)
    }
}

impl Benchmark for Greeks {
    fn name(&self) -> &'static str {
        "Greeks"
    }

    fn category(&self) -> Category {
        Category::Cat2
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        // r1/r2/r3 = payoff sums (down, mid, up), r8 = i,
        // r10 = 0.0, r11 = vol*sqrt(T), r12 = drift, r13 = strike,
        // r14/r15/r16 = bumped spots, r4 = growth, r5 = S_cur, r6 = d.
        RNG.init(&mut b, self.seed);
        b.lif(Reg::R1, 0.0).lif(Reg::R2, 0.0).lif(Reg::R3, 0.0);
        b.li(Reg::R8, 0);
        b.lif(Reg::R10, 0.0);
        b.lif(Reg::R11, self.vol_sqrt_t());
        b.lif(Reg::R12, self.drift());
        b.lif(Reg::R13, self.strike);
        b.lif(Reg::R14, self.spot - self.bump);
        b.lif(Reg::R15, self.spot);
        b.lif(Reg::R16, self.spot + self.bump);
        b.bind(top);
        RNG.next_gauss_pair(&mut b, Reg::R4, Reg::R5, Reg::R6, Reg::R7);
        b.fmul(Reg::R4, Reg::R4, Reg::R11);
        b.fexp(Reg::R4, Reg::R4);
        b.fmul(Reg::R4, Reg::R4, Reg::R12); // growth factor
                                            // Three dependent Category-2 probabilistic branches: the payoff
                                            // accumulation reads the (swapped) probabilistic value d.
        for (spot_reg, sum_reg, label) in [
            (Reg::R14, Reg::R1, "skip_lo"),
            (Reg::R15, Reg::R2, "skip_mid"),
            (Reg::R16, Reg::R3, "skip_hi"),
        ] {
            let skip = b.label(label);
            b.fmul(Reg::R5, spot_reg, Reg::R4); // S_cur
            b.fsub(Reg::R6, Reg::R5, Reg::R13); // d = S_cur - K
            b.prob_fcmp(CmpOp::Le, Reg::R6, Reg::R10);
            b.prob_jmp(None, skip);
            b.fadd(sum_reg, sum_reg, Reg::R6); // payoff_sum += d (swapped)
            b.bind(skip);
        }
        b.add(Reg::R8, Reg::R8, 1);
        b.br(CmpOp::Lt, Reg::R8, self.sims, top);
        // Port 0: the three raw sums (bit patterns). Port 1: greeks.
        b.out(Reg::R1, 0);
        b.out(Reg::R2, 0);
        b.out(Reg::R3, 0);
        let disc = (-self.rate * self.maturity).exp();
        b.itof(Reg::R4, Reg::R8);
        b.lif(Reg::R5, disc);
        b.fdiv(Reg::R5, Reg::R5, Reg::R4); // disc / n
        b.fmul(Reg::R6, Reg::R2, Reg::R5); // price
        b.out(Reg::R6, 1);
        b.halt();
        b.build().expect("Greeks program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        let (lo, mid, hi) = self.reference_sums();
        vec![lo.to_bits(), mid.to_bits(), hi.to_bits()]
    }

    fn uniform_controlled(&self) -> bool {
        false // Gaussian-derived (paper excludes Greeks from Table III)
    }

    fn expected_prob_branches(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn isa_matches_reference() {
        let g = Greeks::new(Scale::Smoke, 7);
        let r = run_functional(&g.program(), None, 10_000_000).unwrap();
        let (lo, mid, hi) = g.reference_sums();
        assert_eq!(r.output(0), &[lo.to_bits(), mid.to_bits(), hi.to_bits()]);
    }

    #[test]
    fn greeks_are_plausible() {
        // ATM call, S=K=100, r=5%, v=20%, T=1: price ~ 10.45, delta ~
        // 0.64, gamma ~ 0.019 (Black-Scholes).
        let g = Greeks::new(Scale::Bench, 3);
        let (price, delta, gamma) = g.reference_greeks();
        assert!((price - 10.45).abs() < 1.0, "price {price}");
        assert!((delta - 0.64).abs() < 0.08, "delta {delta}");
        assert!(gamma > 0.0 && gamma < 0.06, "gamma {gamma}");
    }

    #[test]
    fn category2_swap_keeps_sums_consistent_under_pbs() {
        // Under PBS the accumulated d values are the *swapped* ones —
        // each taken path adds a value that is genuinely positive, so
        // sums remain close to the reference.
        let g = Greeks::new(Scale::Bench, 5);
        let base = run_functional(&g.program(), None, 50_000_000).unwrap();
        let pbs = run_functional(&g.program(), Some(Default::default()), 50_000_000).unwrap();
        for k in 0..3 {
            let a = f64::from_bits(base.output(0)[k]);
            let b = f64::from_bits(pbs.output(0)[k]);
            assert!(b > 0.0);
            let rel = (a - b).abs() / a;
            assert!(rel < 0.02, "sum {k}: {a} vs {b}");
        }
    }

    #[test]
    fn three_sums_are_ordered() {
        // Payoff is monotone in spot.
        let g = Greeks::new(Scale::Smoke, 2);
        let (lo, mid, hi) = g.reference_sums();
        assert!(lo < mid && mid < hi);
    }
}
