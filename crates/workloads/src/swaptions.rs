//! **Swaptions** — a scaled-down swaption-portfolio pricing kernel in
//! the spirit of PARSEC's `swaptions` (paper Section VI-A). Three
//! Category-2 probabilistic branches that sit *inside a non-inlined
//! function called from the trial loop* — the exact structural property
//! that defeats both if-conversion and control-flow decoupling in the
//! paper's Table I, while PBS's calling-context support (`Function-PC`)
//! still handles it.
//!
//! Each trial simulates one scenario for a payer swaption: three
//! uniform draws decide (1) whether the rate path spikes (adding a
//! rate-dependent payoff), (2) whether the notional accrues a
//! draw-dependent factor, and (3) whether an early-exercise haircut
//! applies. All three probabilistic values are *used after* the branch
//! (Category 2) and are compared against run-constant thresholds.

use probranch_isa::{CmpOp, Program, ProgramBuilder, Reg};

use crate::asmlib::RNG;
use crate::host::HostRng;
use crate::{Benchmark, Category, Scale};

/// Swaptions benchmark parameters.
#[derive(Debug, Clone)]
pub struct Swaptions {
    /// Monte-Carlo trials.
    pub trials: i64,
    /// RNG seed (nonzero).
    pub seed: u64,
    /// Threshold for the rate-spike scenario.
    pub p_spike: f64,
    /// Threshold for the accrual scenario.
    pub p_accrue: f64,
    /// Threshold for the early-exercise haircut.
    pub p_exercise: f64,
}

impl Swaptions {
    /// Creates the benchmark at a scale preset.
    pub fn new(scale: Scale, seed: u64) -> Swaptions {
        let trials = match scale {
            Scale::Smoke => 1_200,
            Scale::Bench => 12_000,
            Scale::Paper => 80_000,
        };
        Swaptions {
            trials,
            seed: seed.max(1),
            p_spike: 0.7,
            p_accrue: 0.4,
            p_exercise: 0.5,
        }
    }

    /// Host mirror of the per-trial path function.
    fn host_path(&self, rng: &mut HostRng) -> f64 {
        let mut val = 1.0f64;
        let u1 = rng.next_f64();
        if u1 < self.p_spike {
            val += u1 * 2.5; // payoff grows with the (probabilistic) rate draw
        }
        let u2 = rng.next_f64();
        if u2 < self.p_accrue {
            val *= u2 + 0.75; // accrual factor depends on the draw
        }
        let u3 = rng.next_f64();
        if u3 > self.p_exercise {
            val -= u3 * 0.5; // haircut depends on the draw
        }
        val
    }

    /// Host reference: the portfolio value sum (bit pattern on port 0).
    pub fn reference_sum(&self) -> f64 {
        let mut rng = HostRng::new(self.seed);
        let mut sum = 0.0f64;
        for _ in 0..self.trials {
            sum += self.host_path(&mut rng);
        }
        sum
    }
}

impl Benchmark for Swaptions {
    fn name(&self) -> &'static str {
        "Swaptions"
    }

    fn category(&self) -> Category {
        Category::Cat2
    }

    fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let main_top = b.label("main_top");
        let path_fn = b.label("path_fn");
        let done = b.label("done");
        // Globals: r1 = sum, r2 = i, r10 = 0.0,
        // r11/r12/r13 = thresholds, r14 = 0.75, r15 = 2.5, r16 = 0.5,
        // r17 = 1.0. Path fn: r3 = val, r4 = u, r5 = tmp.
        RNG.init(&mut b, self.seed);
        b.lif(Reg::R1, 0.0).li(Reg::R2, 0);
        b.lif(Reg::R10, 0.0);
        b.lif(Reg::R11, self.p_spike);
        b.lif(Reg::R12, self.p_accrue);
        b.lif(Reg::R13, self.p_exercise);
        b.lif(Reg::R14, 0.75);
        b.lif(Reg::R15, 2.5);
        b.lif(Reg::R16, 0.5);
        b.lif(Reg::R17, 1.0);
        b.bind(main_top);
        b.call(path_fn);
        b.fadd(Reg::R1, Reg::R1, Reg::R3); // sum += val
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, self.trials, main_top);
        b.out(Reg::R1, 0);
        // Port 1: average portfolio value.
        b.itof(Reg::R4, Reg::R2);
        b.fdiv(Reg::R4, Reg::R1, Reg::R4);
        b.out(Reg::R4, 1);
        b.jmp(done);

        // ---- fn path_fn: returns val in r3 -------------------------------
        b.bind(path_fn);
        b.mov(Reg::R3, Reg::R17); // val = 1.0
                                  // Scenario 1: rate spike (Category 2: u1 used after the branch).
        let s1 = b.label("s1");
        RNG.next_f64(&mut b, Reg::R4);
        b.prob_fcmp(CmpOp::Ge, Reg::R4, Reg::R11);
        b.prob_jmp(None, s1);
        b.fmul(Reg::R5, Reg::R4, Reg::R15);
        b.fadd(Reg::R3, Reg::R3, Reg::R5);
        b.bind(s1);
        // Scenario 2: accrual (Category 2).
        let s2 = b.label("s2");
        RNG.next_f64(&mut b, Reg::R4);
        b.prob_fcmp(CmpOp::Ge, Reg::R4, Reg::R12);
        b.prob_jmp(None, s2);
        b.fadd(Reg::R5, Reg::R4, Reg::R14);
        b.fmul(Reg::R3, Reg::R3, Reg::R5);
        b.bind(s2);
        // Scenario 3: early-exercise haircut (Category 2).
        let s3 = b.label("s3");
        RNG.next_f64(&mut b, Reg::R4);
        b.prob_fcmp(CmpOp::Le, Reg::R4, Reg::R13);
        b.prob_jmp(None, s3);
        b.fmul(Reg::R5, Reg::R4, Reg::R16);
        b.fsub(Reg::R3, Reg::R3, Reg::R5);
        b.bind(s3);
        b.ret();

        b.bind(done);
        b.halt();
        b.build().expect("Swaptions program is well-formed")
    }

    fn reference_output(&self) -> Vec<u64> {
        vec![self.reference_sum().to_bits()]
    }

    fn uniform_controlled(&self) -> bool {
        true
    }

    fn expected_prob_branches(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_pipeline::run_functional;

    #[test]
    fn isa_matches_reference() {
        let s = Swaptions::new(Scale::Smoke, 7);
        let r = run_functional(&s.program(), None, 10_000_000).unwrap();
        assert_eq!(r.output(0), &[s.reference_sum().to_bits()]);
    }

    #[test]
    fn average_value_is_plausible() {
        // E[val] = 1 + 0.7*E[2.5 u | u<.7]... roughly: scenario1 adds
        // ~0.61 on 70% of paths; scenario2 scales; scenario3 subtracts.
        let s = Swaptions::new(Scale::Bench, 3);
        let avg = s.reference_sum() / s.trials as f64;
        assert!((1.0..2.5).contains(&avg), "avg {avg}");
    }

    #[test]
    fn pbs_handles_branches_inside_called_function() {
        // The paper's calling-context support: the three branches are
        // reached through a call at depth 1, which PBS supports.
        let s = Swaptions::new(Scale::Smoke, 5);
        let r = run_functional(&s.program(), Some(Default::default()), 10_000_000).unwrap();
        let stats = r.pbs.unwrap();
        let total = 3 * s.trials as u64;
        assert_eq!(stats.directed + stats.bootstrap + stats.bypassed, total);
        assert!(
            stats.directed as f64 / total as f64 > 0.95,
            "directed fraction too low: {stats:?}"
        );
    }

    #[test]
    fn pbs_portfolio_value_error_is_small() {
        let s = Swaptions::new(Scale::Bench, 9);
        let base = run_functional(&s.program(), None, 50_000_000).unwrap();
        let pbs = run_functional(&s.program(), Some(Default::default()), 50_000_000).unwrap();
        let a = f64::from_bits(base.output(0)[0]);
        let b = f64::from_bits(pbs.output(0)[0]);
        assert!((a - b).abs() / a < 0.02, "{a} vs {b}");
    }
}
