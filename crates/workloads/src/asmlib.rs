//! ISA-level random-number emitters shared by all workloads.
//!
//! Random numbers must cost real simulated instructions (they do in the
//! paper's x86 binaries), so every workload inlines these sequences: an
//! xorshift64\* step (3 shifts, 3 xors, 1 multiply), the `[0,1)`
//! conversion (shift, int→fp, multiply) and the Box–Muller transform
//! (ln, sqrt, sin, cos — long-latency FP ops in the timing model).
//!
//! [`HostRng`](crate::HostRng) mirrors the arithmetic exactly, making
//! host-reference and ISA runs bit-identical.

use probranch_isa::{ProgramBuilder, Reg};

use crate::host::{F64_SCALE, XS_MULT};

/// Register assignment for the inline RNG. The three persistent
/// registers must not be clobbered by the surrounding workload; `tmp` is
/// scratch, clobbered by every emitted sequence.
#[derive(Debug, Clone, Copy)]
pub struct RngAsm {
    /// Persistent generator state.
    pub state: Reg,
    /// Persistent constant: the xorshift64\* multiplier.
    pub mult: Reg,
    /// Persistent constant: 2^-53.
    pub scale: Reg,
    /// Scratch register.
    pub tmp: Reg,
}

impl RngAsm {
    /// Emits the one-time initialization (seed and constants).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (the invalid xorshift state) — callers
    /// seed from [`HostRng`](crate::HostRng)-compatible nonzero values.
    pub fn init(&self, b: &mut ProgramBuilder, seed: u64) {
        assert_ne!(seed, 0, "xorshift seed must be nonzero");
        b.li(self.state, seed as i64);
        b.li(self.mult, XS_MULT as i64);
        b.lif(self.scale, F64_SCALE);
    }

    /// Emits `out = next_u64()` (7 instructions). Clobbers `tmp`.
    pub fn next_u64(&self, b: &mut ProgramBuilder, out: Reg) {
        b.shr(self.tmp, self.state, 12)
            .xor(self.state, self.state, self.tmp);
        b.shl(self.tmp, self.state, 25)
            .xor(self.state, self.state, self.tmp);
        b.shr(self.tmp, self.state, 27)
            .xor(self.state, self.state, self.tmp);
        b.mul(out, self.state, self.mult);
    }

    /// Emits `out = next_f64()` in `[0, 1)` (10 instructions). Clobbers
    /// `tmp`.
    pub fn next_f64(&self, b: &mut ProgramBuilder, out: Reg) {
        self.next_u64(b, out);
        b.shr(out, out, 11);
        b.itof(out, out);
        b.fmul(out, out, self.scale);
    }

    /// Emits a standard-normal pair `(z0, z1)` via Box–Muller. Clobbers
    /// `tmp`, `t1`, `t2`. All five named registers must be distinct.
    pub fn next_gauss_pair(&self, b: &mut ProgramBuilder, z0: Reg, z1: Reg, t1: Reg, t2: Reg) {
        self.next_f64(b, t1); // u1
        self.next_f64(b, t2); // u2
        b.fln(t1, t1);
        b.lif(z1, -2.0);
        b.fmul(t1, t1, z1); // -2 ln u1
        b.fsqrt(t1, t1); // r
        b.lif(z1, 2.0 * std::f64::consts::PI);
        b.fmul(t2, t2, z1); // theta
        b.fcos(z0, t2);
        b.fmul(z0, t1, z0); // r cos(theta)
        b.fsin(z1, t2);
        b.fmul(z1, t1, z1); // r sin(theta)
    }
}

/// The default register block used by the workloads: state/mult/scale in
/// r24..r26, scratch r27. Workload code keeps r0..r23 for itself.
pub const RNG: RngAsm = RngAsm {
    state: Reg::R24,
    mult: Reg::R25,
    scale: Reg::R26,
    tmp: Reg::R27,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostRng;
    use probranch_pipeline::{EmuConfig, Emulator};

    #[test]
    fn isa_f64_stream_matches_host_bit_for_bit() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        RNG.init(&mut b, 0xDEADBEEF);
        b.li(Reg::R1, 0);
        b.bind(top);
        RNG.next_f64(&mut b, Reg::R2);
        b.out(Reg::R2, 0);
        b.add(Reg::R1, Reg::R1, 1);
        b.br(probranch_isa::CmpOp::Lt, Reg::R1, 64, top);
        b.halt();
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        e.run_to_halt(100_000).unwrap();
        let mut host = HostRng::new(0xDEADBEEF);
        for &bits in e.output(0) {
            assert_eq!(f64::from_bits(bits), host.next_f64());
        }
    }

    #[test]
    fn isa_gauss_stream_matches_host_bit_for_bit() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        RNG.init(&mut b, 777);
        b.li(Reg::R1, 0);
        b.bind(top);
        RNG.next_gauss_pair(&mut b, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        b.out(Reg::R2, 0);
        b.out(Reg::R3, 0);
        b.add(Reg::R1, Reg::R1, 1);
        b.br(probranch_isa::CmpOp::Lt, Reg::R1, 32, top);
        b.halt();
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        e.run_to_halt(100_000).unwrap();
        let mut host = HostRng::new(777);
        let out = e.output_f64(0);
        for pair in out.chunks(2) {
            let (z0, z1) = host.next_gauss_pair();
            assert_eq!(pair[0], z0);
            assert_eq!(pair[1], z1);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_seed_rejected() {
        let mut b = ProgramBuilder::new();
        RNG.init(&mut b, 0);
    }
}
