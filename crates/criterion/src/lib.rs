//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access and no vendored registry,
//! so this crate provides the subset of the criterion API that the
//! `probranch-bench` targets use — `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with wall-clock timing and a plain-text
//! report per benchmark. Swap it for the real crate by pointing the
//! workspace dependency at crates.io once the registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: configures sample counts and runs named
/// benchmark functions, printing a one-line timing report for each.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// No-op shim for CLI-argument handling on the real harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run `f` with a [`Bencher`] and print `id: <mean time>/iter`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / b.iterations.max(1) as f64;
        println!(
            "bench {id}: {:>12.1} ns/iter ({} iters, {:.3} s total)",
            per_iter,
            b.iterations,
            b.elapsed.as_secs_f64()
        );
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iterations` calls of `f`, black-boxing each result.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `fn main` running each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert_eq!(runs, 3);
    }
}
