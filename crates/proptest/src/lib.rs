//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this crate implements the subset of the proptest API that
//! `tests/properties.rs` uses: the [`Strategy`] trait with `prop_map`,
//! range / tuple / `Just` / `any` strategies, `proptest::collection::vec`,
//! `proptest::sample::select`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Generation is driven by a
//! deterministic splitmix64 stream seeded from the test name, so every
//! run explores the same cases. There is no shrinking: a failing case
//! panics with the case index so it can be replayed directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Runner configuration and failure type.

    /// Per-`proptest!` block configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property assertion, carrying its message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from a rendered assertion message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator; the `proptest!` macro derives the seed from the
    /// property name so runs are reproducible but differ across tests.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test values; the shim generates directly with no
/// shrink tree.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies, as built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the full domain of `T`, as returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// Strategy picking one element of `items` uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty collection");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

pub mod prelude {
    //! The imports a property test needs: `use proptest::prelude::*;`.

    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

/// Assert inside a property, failing the case (not the process) so the
/// runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Inequality assertion inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define `#[test]` functions that run their body over generated inputs.
///
/// Supports the standard form: an optional
/// `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config = $config;
            // FNV-1a over the test name: deterministic, distinct per test.
            let seed = stringify!($name)
                .bytes()
                .fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                });
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in crate::collection::vec(
                prop_oneof![Just(1u32), (10u32..20).prop_map(|n| n * 2)],
                1..8,
            )
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x == 1 || (20..40).contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(any::<u64>(), 2..9);
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn select_draws_from_the_given_items() {
        let s = crate::sample::select(vec!['a', 'b', 'c']);
        let mut rng = crate::TestRng::new(42);
        for _ in 0..32 {
            assert!(['a', 'b', 'c'].contains(&s.generate(&mut rng)));
        }
    }
}
