//! The PBS unit: the functional engine gluing the Prob-BTB, SwapTable,
//! Prob-in-Flight and Context-Table together (paper Sections III and V).

use crate::tables::InFlightRecord;
use crate::{ContextTable, PbsConfig, ProbBtb};

/// Why a probabilistic branch was *not* handled by PBS and executed as a
/// regular branch instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BypassReason {
    /// The Prob-BTB is full (more distinct probabilistic branches than
    /// provisioned entries).
    BtbCapacity,
    /// The branch carries more probabilistic values than the SwapTable
    /// supports.
    TooManyValues,
    /// The branch executes deeper than one function call inside the
    /// active loop (paper: counter > 1 ⇒ treat all branches as regular).
    DeepCall,
    /// The `Const-Val` safety check failed: the comparison constant
    /// changed within the context, so PBS "may be risky to use" and the
    /// branch is demoted for the rest of its context.
    ConstValChanged,
}

/// The resolution of one dynamic probabilistic-branch execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchResolution {
    /// Initialization phase: the instance executes as a regular branch
    /// (its own freshly generated outcome, predicted by the baseline
    /// predictor in the timing model) while its record fills the
    /// Prob-in-Flight FIFO.
    Bootstrap {
        /// The actual outcome of the new probabilistic values.
        taken: bool,
    },
    /// Steady state: fetch followed the recorded outcome — no prediction,
    /// no misprediction. The architectural probabilistic registers must
    /// be overwritten with `swapped` (the recorded values matching the
    /// followed direction), in instruction order.
    Directed {
        /// The recorded direction that fetch followed.
        taken: bool,
        /// Recorded probabilistic values to swap into the registers.
        swapped: Vec<u64>,
    },
    /// PBS did not handle this instance; it executes as a regular branch.
    Bypassed {
        /// The actual outcome of the new probabilistic values.
        taken: bool,
        /// Why PBS stepped aside.
        reason: BypassReason,
    },
}

impl BranchResolution {
    /// The direction the branch actually follows.
    pub fn taken(&self) -> bool {
        match *self {
            BranchResolution::Bootstrap { taken }
            | BranchResolution::Directed { taken, .. }
            | BranchResolution::Bypassed { taken, .. } => taken,
        }
    }

    /// Whether this instance is PBS-directed (never mispredicts, does not
    /// touch the branch predictor).
    pub fn is_directed(&self) -> bool {
        matches!(self, BranchResolution::Directed { .. })
    }
}

/// Event counters exposed by the unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PbsStats {
    /// Dynamic instances steered by PBS (never mispredict).
    pub directed: u64,
    /// Dynamic instances executed as regular branches while the FIFO
    /// fills.
    pub bootstrap: u64,
    /// Dynamic instances bypassed (capacity / safety / deep calls).
    pub bypassed: u64,
    /// Prob-BTB allocations performed.
    pub allocations: u64,
    /// Entries demoted by the `Const-Val` safety check.
    pub const_val_demotions: u64,
    /// Stale-context entries evicted to make room (capacity heuristic).
    pub evictions: u64,
    /// Entries flushed because their loop context terminated.
    pub context_flushes: u64,
}

/// The PBS hardware unit (functional model).
///
/// Drive it from an emulator:
///
/// * [`execute_prob_branch`](PbsUnit::execute_prob_branch) for every
///   dynamic probabilistic branch (a `PROB_CMP` … `PROB_JMP` group);
/// * [`observe_branch`](PbsUnit::observe_branch),
///   [`observe_call`](PbsUnit::observe_call) and
///   [`observe_ret`](PbsUnit::observe_ret) for every control transfer,
///   powering dynamic loop detection and context tracking.
#[derive(Debug, Clone)]
pub struct PbsUnit {
    config: PbsConfig,
    btb: ProbBtb,
    context: ContextTable,
    stats: PbsStats,
    /// Recycled value buffers for in-flight records: the driver hands
    /// consumed swap buffers back through [`PbsUnit::recycle`], making
    /// the steady-state directed path allocation-free.
    spare: Vec<Vec<u64>>,
}

impl PbsUnit {
    /// Creates a unit with the given hardware configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero-sized structures (see
    /// [`PbsConfig::validated`]).
    pub fn new(config: PbsConfig) -> PbsUnit {
        let config = config.validated();
        PbsUnit {
            btb: ProbBtb::new(config.num_branches),
            context: ContextTable::new(),
            stats: PbsStats::default(),
            spare: Vec::new(),
            config,
        }
    }

    /// Copies `values` into a recycled buffer (or a fresh one when the
    /// pool is empty).
    fn record_buf(&mut self, values: &[u64]) -> Vec<u64> {
        let mut v = self.spare.pop().unwrap_or_default();
        v.clear();
        v.extend_from_slice(values);
        v
    }

    /// Returns a spent swap buffer (from
    /// [`BranchResolution::Directed::swapped`]) to the recycle pool.
    /// Optional — purely an allocation optimization for hot drivers.
    pub fn recycle(&mut self, buffer: Vec<u64>) {
        if self.spare.len() < 8 {
            self.spare.push(buffer);
        }
    }

    /// Resolves one dynamic execution of the probabilistic branch whose
    /// jump instruction is at `pc`.
    ///
    /// * `values` — the newly generated probabilistic values, in
    ///   instruction order (`PROB_CMP` register first);
    /// * `const_val` — the value of the comparison operand (the paper's
    ///   `Const-Val` snapshot);
    /// * `taken_new` — the outcome the *new* values produce.
    pub fn execute_prob_branch(
        &mut self,
        pc: u32,
        values: &[u64],
        const_val: u64,
        taken_new: bool,
    ) -> BranchResolution {
        if values.len() > self.config.values_per_branch {
            self.stats.bypassed += 1;
            return BranchResolution::Bypassed {
                taken: taken_new,
                reason: BypassReason::TooManyValues,
            };
        }
        let context = match self.context.current() {
            Some(c) => c,
            None => {
                self.stats.bypassed += 1;
                return BranchResolution::Bypassed {
                    taken: taken_new,
                    reason: BypassReason::DeepCall,
                };
            }
        };

        let in_flight_limit = self.config.in_flight;
        let new_values = self.record_buf(values);
        if self.btb.find_mut(pc, context).is_none() {
            // First encounter in this context: allocate and bootstrap.
            // On a full table, evict an entry from a stale/outer context
            // first (the paper's capacity heuristic, Section V-C2).
            if self.btb.len() >= self.btb.capacity() && self.btb.evict_victim(context) {
                self.stats.evictions += 1;
            }
            match self.btb.allocate(pc, context, const_val) {
                Some(entry) => {
                    entry.executed = 1;
                    entry.in_flight.push(InFlightRecord {
                        values: new_values,
                        outcome: taken_new,
                    });
                    self.stats.allocations += 1;
                    self.stats.bootstrap += 1;
                    return BranchResolution::Bootstrap { taken: taken_new };
                }
                None => {
                    self.recycle(new_values);
                    self.stats.bypassed += 1;
                    return BranchResolution::Bypassed {
                        taken: taken_new,
                        reason: BypassReason::BtbCapacity,
                    };
                }
            }
        }

        let entry = self.btb.find_mut(pc, context).expect("checked above");
        if entry.risky {
            let spent = new_values;
            self.recycle(spent);
            self.stats.bypassed += 1;
            return BranchResolution::Bypassed {
                taken: taken_new,
                reason: BypassReason::ConstValChanged,
            };
        }
        if entry.const_val != const_val {
            // Safety rule (Section V-C1): a changing comparison condition
            // breaks the correctness argument — flush and demote.
            entry.risky = true;
            entry.in_flight.clear();
            self.recycle(new_values);
            self.stats.const_val_demotions += 1;
            self.stats.bypassed += 1;
            return BranchResolution::Bypassed {
                taken: taken_new,
                reason: BypassReason::ConstValChanged,
            };
        }

        entry.executed += 1;
        if entry.in_flight.len() < in_flight_limit {
            // Initialization: record while the pipeline window fills.
            entry.in_flight.push(InFlightRecord {
                values: new_values,
                outcome: taken_new,
            });
            self.stats.bootstrap += 1;
            return BranchResolution::Bootstrap { taken: taken_new };
        }

        // Steady state: pull the oldest record to direct this instance,
        // store the new values for a future instance.
        let old = entry.in_flight.pop().expect("FIFO at in-flight limit");
        entry.in_flight.push(InFlightRecord {
            values: new_values,
            outcome: taken_new,
        });
        self.stats.directed += 1;
        BranchResolution::Directed {
            taken: old.outcome,
            swapped: old.values,
        }
    }

    /// Observes a direct branch (conditional or not) for loop detection.
    /// Must be called for every control transfer with a static target,
    /// *including* probabilistic jumps.
    #[inline]
    pub fn observe_branch(&mut self, pc: u32, target: u32, taken: bool) {
        if !self.config.context_tracking {
            return;
        }
        for gen in self.context.observe_branch(pc, target, taken) {
            let flushed = self.btb.flush_context(gen);
            self.stats.context_flushes += flushed as u64;
        }
    }

    /// Observes a call instruction at `pc`.
    #[inline]
    pub fn observe_call(&mut self, pc: u32) {
        if self.config.context_tracking {
            self.context.observe_call(pc);
        }
    }

    /// Observes a return instruction.
    #[inline]
    pub fn observe_ret(&mut self) {
        if self.config.context_tracking {
            self.context.observe_ret();
        }
    }

    /// Models a context switch without state save/restore: all PBS state
    /// is lost and every branch re-bootstraps (the paper instead
    /// recommends saving the 193 bytes; both behaviours are available).
    pub fn flush_all(&mut self) {
        self.btb.flush_all();
        self.context = ContextTable::new();
    }

    /// Event counters.
    pub fn stats(&self) -> PbsStats {
        self.stats
    }

    /// The hardware configuration.
    pub fn config(&self) -> &PbsConfig {
        &self.config
    }

    /// The context table (for inspection).
    pub fn context(&self) -> &ContextTable {
        &self.context
    }

    /// The Prob-BTB (for inspection).
    pub fn btb(&self) -> &ProbBtb {
        &self.btb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> PbsUnit {
        PbsUnit::new(PbsConfig::default())
    }

    /// Drives `n` executions of a single branch at `pc` with values
    /// 0,1,2,... and condition `value < 100` (always taken).
    fn drive(u: &mut PbsUnit, pc: u32, n: u64) -> Vec<BranchResolution> {
        (0..n)
            .map(|i| u.execute_prob_branch(pc, &[i], 100, i < 100))
            .collect()
    }

    #[test]
    fn bootstrap_then_directed() {
        let mut u = unit();
        let rs = drive(&mut u, 10, 10);
        for r in &rs[..4] {
            assert!(matches!(r, BranchResolution::Bootstrap { .. }), "{r:?}");
        }
        for r in &rs[4..] {
            assert!(r.is_directed(), "{r:?}");
        }
        assert_eq!(u.stats().bootstrap, 4);
        assert_eq!(u.stats().directed, 6);
    }

    #[test]
    fn directed_values_lag_by_in_flight_depth() {
        // The value consumed by instance i (i >= B) is the value
        // generated by instance i - B: the FIFO preserves generation
        // order with lag B.
        let mut u = unit();
        let rs = drive(&mut u, 10, 12);
        for (i, r) in rs.iter().enumerate().skip(4) {
            match r {
                BranchResolution::Directed { swapped, .. } => {
                    assert_eq!(swapped, &vec![(i - 4) as u64], "instance {i}");
                }
                other => panic!("instance {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn directed_outcome_matches_recorded_value() {
        // Values 96..104 against `< 100`: outcomes flip at value 100, and
        // each directed instance must follow the outcome its swapped
        // value produced.
        let mut u = unit();
        for i in 96..112u64 {
            let r = u.execute_prob_branch(10, &[i], 100, i < 100);
            if let BranchResolution::Directed { taken, swapped } = r {
                assert_eq!(taken, swapped[0] < 100, "semantic consistency");
            }
        }
    }

    #[test]
    fn category2_multiple_values_swap_together() {
        let mut u = unit();
        for i in 0..8u64 {
            let r = u.execute_prob_branch(10, &[i, i + 1000], 5, i < 5);
            if let BranchResolution::Directed { swapped, .. } = r {
                assert_eq!(swapped.len(), 2);
                assert_eq!(swapped[1], swapped[0] + 1000, "values travel as a group");
            }
        }
        assert!(u.stats().directed > 0);
    }

    #[test]
    fn too_many_values_bypasses() {
        let mut u = unit(); // values_per_branch = 2
        let r = u.execute_prob_branch(10, &[1, 2, 3], 5, true);
        assert_eq!(
            r,
            BranchResolution::Bypassed {
                taken: true,
                reason: BypassReason::TooManyValues
            }
        );
    }

    #[test]
    fn btb_capacity_bypasses_fifth_branch() {
        let mut u = unit(); // 4 entries
        for pc in [10, 20, 30, 40] {
            drive(&mut u, pc, 1);
        }
        let r = u.execute_prob_branch(50, &[0], 100, true);
        assert_eq!(
            r,
            BranchResolution::Bypassed {
                taken: true,
                reason: BypassReason::BtbCapacity
            }
        );
    }

    #[test]
    fn const_val_change_demotes_branch() {
        let mut u = unit();
        drive(&mut u, 10, 6);
        // The comparison constant changes: correctness rule violated.
        let r = u.execute_prob_branch(10, &[7], 200, true);
        assert_eq!(
            r,
            BranchResolution::Bypassed {
                taken: true,
                reason: BypassReason::ConstValChanged
            }
        );
        assert_eq!(u.stats().const_val_demotions, 1);
        // Still demoted on subsequent executions, even with the original
        // constant.
        let r = u.execute_prob_branch(10, &[8], 100, true);
        assert_eq!(
            r,
            BranchResolution::Bypassed {
                taken: true,
                reason: BypassReason::ConstValChanged
            }
        );
    }

    #[test]
    fn loop_end_flushes_and_rebootstraps() {
        let mut u = unit();
        // Enter a loop (backward taken branch), run the prob branch to
        // steady state.
        u.observe_branch(90, 5, true);
        drive(&mut u, 10, 8);
        assert!(u.stats().directed > 0);
        // Loop terminates.
        u.observe_branch(90, 5, false);
        assert_eq!(u.stats().context_flushes, 1);
        // Re-execution of the loop is a new context: bootstrap again.
        u.observe_branch(90, 5, true);
        let r = u.execute_prob_branch(10, &[0], 100, true);
        assert!(matches!(r, BranchResolution::Bootstrap { .. }));
    }

    #[test]
    fn deep_calls_bypass() {
        let mut u = unit();
        u.observe_branch(90, 5, true); // loop
        u.observe_call(7);
        drive(&mut u, 10, 1); // depth 1: fine
        assert_eq!(u.stats().bootstrap, 1);
        u.observe_call(8); // depth 2
        let r = u.execute_prob_branch(10, &[1], 100, true);
        assert_eq!(
            r,
            BranchResolution::Bypassed {
                taken: true,
                reason: BypassReason::DeepCall
            }
        );
        u.observe_ret();
        let r = u.execute_prob_branch(10, &[2], 100, true);
        assert!(!matches!(r, BranchResolution::Bypassed { .. }));
    }

    #[test]
    fn distinct_call_sites_are_distinct_branch_entries() {
        let mut u = unit();
        u.observe_branch(90, 5, true);
        u.observe_call(7);
        drive(&mut u, 10, 5);
        u.observe_ret();
        u.observe_call(8);
        // Same pc through a different call site: fresh bootstrap.
        let r = u.execute_prob_branch(10, &[0], 100, true);
        assert!(matches!(r, BranchResolution::Bootstrap { .. }));
        assert_eq!(u.btb().len(), 2);
    }

    #[test]
    fn flush_all_resets_everything() {
        let mut u = unit();
        drive(&mut u, 10, 6);
        u.flush_all();
        assert!(u.btb().is_empty());
        let r = u.execute_prob_branch(10, &[0], 100, true);
        assert!(matches!(r, BranchResolution::Bootstrap { .. }));
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let drive_all = || {
            let mut u = unit();
            let mut out = Vec::new();
            for i in 0..50u64 {
                u.observe_branch(90, 5, i % 10 != 9);
                out.push(u.execute_prob_branch(10, &[i * 7 % 13], 6, (i * 7 % 13) < 6));
            }
            out
        };
        assert_eq!(drive_all(), drive_all());
    }

    #[test]
    fn value_conservation_directed_stream_is_prefix_of_generated() {
        // Every value PBS hands out was generated earlier by the same
        // branch, in order (paper: "PBS replays the same stream").
        let mut u = unit();
        let generated: Vec<u64> = (0..40).collect();
        let mut consumed = Vec::new();
        for &v in &generated {
            match u.execute_prob_branch(10, &[v], 1000, true) {
                BranchResolution::Directed { swapped, .. } => consumed.push(swapped[0]),
                BranchResolution::Bootstrap { .. } => consumed.push(v),
                BranchResolution::Bypassed { .. } => unreachable!(),
            }
        }
        // Bootstrap consumes 0..4 (its own values); directed replays
        // 0,1,2,... lagged — so the consumed stream equals the first 4
        // values, then the generated stream from the start again.
        assert_eq!(&consumed[..4], &generated[..4]);
        assert_eq!(&consumed[4..], &generated[..36]);
    }

    #[test]
    fn context_disabled_unit_ignores_loops() {
        let mut u = PbsUnit::new(PbsConfig {
            context_tracking: false,
            ..PbsConfig::default()
        });
        u.observe_branch(90, 5, true);
        drive(&mut u, 10, 8);
        u.observe_branch(90, 5, false); // would flush with tracking on
        let r = u.execute_prob_branch(10, &[9], 100, true);
        assert!(
            r.is_directed(),
            "no context tracking: entry survives loop end"
        );
        assert_eq!(u.stats().context_flushes, 0);
    }
}
