/// Configuration of the PBS hardware unit, fixed at design time
/// (paper Section V-C2).
///
/// The default matches the paper's evaluated design point: support for
/// four distinct probabilistic branches, two probabilistic values per
/// branch, and four outstanding in-flight instances — 193 bytes of state
/// (see [`crate::cost`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbsConfig {
    /// Number of Prob-BTB entries (distinct probabilistic branches
    /// tracked simultaneously).
    pub num_branches: usize,
    /// Maximum probabilistic values per branch (1 slot lives in the
    /// Prob-BTB entry, the rest in the SwapTable).
    pub values_per_branch: usize,
    /// Prob-in-Flight depth: maximum outstanding instances between fetch
    /// and execute, which is also the bootstrap length — the first
    /// `in_flight` executions run as regular branches while the pipeline
    /// fills (paper Section III-B).
    pub in_flight: usize,
    /// Whether calling-context tracking (Context-Table) is enabled.
    /// Disabling it models the simpler PC-only indexing the paper
    /// describes as "sufficient for most code scenarios".
    pub context_tracking: bool,
}

impl Default for PbsConfig {
    fn default() -> PbsConfig {
        PbsConfig {
            num_branches: 4,
            values_per_branch: 2,
            in_flight: 4,
            context_tracking: true,
        }
    }
}

impl PbsConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero (a PBS unit with no entries is a
    /// configuration bug, caught eagerly).
    pub fn validated(self) -> PbsConfig {
        assert!(self.num_branches > 0, "num_branches must be positive");
        assert!(
            self.values_per_branch > 0,
            "values_per_branch must be positive"
        );
        assert!(self.in_flight > 0, "in_flight must be positive");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let c = PbsConfig::default();
        assert_eq!(c.num_branches, 4);
        assert_eq!(c.values_per_branch, 2);
        assert_eq!(c.in_flight, 4);
        assert!(c.context_tracking);
    }

    #[test]
    fn validated_accepts_default() {
        let _ = PbsConfig::default().validated();
    }

    #[test]
    #[should_panic(expected = "in_flight must be positive")]
    fn validated_rejects_zero_inflight() {
        PbsConfig {
            in_flight: 0,
            ..PbsConfig::default()
        }
        .validated();
    }
}
