//! # probranch-core
//!
//! The paper's primary contribution: **Probabilistic Branch Support
//! (PBS)**, from *Architectural Support for Probabilistic Branches*
//! (Adileh, Lilja, Eeckhout — MICRO 2018), as a functional hardware
//! model.
//!
//! PBS eliminates mispredictions of *probabilistic branches* — branches
//! steered by freshly drawn random values — by exploiting the observation
//! that their outcome only needs to be correct *in a statistical sense*.
//! Instead of predicting, the fetch stage follows the **recorded outcome
//! of a previous execution** of the branch, and the execute stage swaps
//! the newly generated probabilistic value(s) with the recorded one(s) so
//! that control-dependent code observes values consistent with the
//! direction that was followed.
//!
//! The hardware structures modeled here (paper Section V-C):
//!
//! * **Prob-BTB** — one entry per tracked probabilistic branch: target,
//!   the T/NT direction to follow at fetch, a pointer to the value that
//!   matches that direction, and the `Const-Val` safety snapshot;
//! * **SwapTable** — extra value slots for branches carrying more than
//!   one probabilistic value (Category-2 codes);
//! * **Prob-in-Flight** — the FIFO of executed-but-not-yet-consumed
//!   `(values, outcome)` records, bounding overlapping instances;
//! * **Context-Table** — a two-entry innermost-loop tracker with
//!   function-call context (dynamic loop detection via backward
//!   branches), providing context disambiguation and context-end
//!   flushing.
//!
//! [`PbsUnit`] ties them together and is driven by the emulator in
//! `probranch-pipeline`. [`cost`] reproduces the paper's 193-byte
//! hardware budget arithmetic.
//!
//! ```
//! use probranch_core::{PbsConfig, PbsUnit, BranchResolution};
//!
//! let mut pbs = PbsUnit::new(PbsConfig::default());
//! // One probabilistic branch executing repeatedly at pc 100: the first
//! // `in_flight` (4) executions bootstrap, the rest are PBS-directed.
//! for i in 0..10u64 {
//!     let value = 0.1 * i as f64;
//!     let taken = value < 0.5;
//!     let r = pbs.execute_prob_branch(100, &[value.to_bits()], 0.5f64.to_bits(), taken);
//!     match r {
//!         BranchResolution::Bootstrap { .. } => assert!(i < 4),
//!         BranchResolution::Directed { .. } => assert!(i >= 4),
//!         BranchResolution::Bypassed { .. } => unreachable!(),
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod context;
pub mod cost;
mod tables;
mod unit;

pub use config::PbsConfig;
pub use context::{ContextKey, ContextTable};
pub use tables::{InFlightRecord, ProbBtb, ProbBtbEntry, ProbInFlight};
pub use unit::{BranchResolution, BypassReason, PbsStats, PbsUnit};

// The parallel experiment harness ships PBS configurations and result
// counters across worker threads; assert thread-safety at compile time
// so a future interior-mutability field cannot silently break it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PbsConfig>();
    assert_send_sync::<PbsStats>();
    assert_send_sync::<PbsUnit>();
};
