//! The Context-Table: dynamic tracking of the two innermost loops and
//! one level of function call, providing the calling-context
//! disambiguation of paper Section V-C1 (Figure 5).
//!
//! Loops are detected from backward branches, following the strategy the
//! paper adopts from Tubella & González: a taken backward branch whose
//! target has not been seen allocates a loop entry (`Loop-PC` = target,
//! `Last-PC` = branch address); a not-taken backward branch at or beyond
//! `Last-PC` terminates the loop. Loop termination flushes every PBS
//! table entry belonging to that context.

/// The calling context of a probabilistic branch: which dynamic loop
/// instance it executes in and through which function call it was
/// reached.
///
/// `loop_gen` is a generation number uniquely identifying the dynamic
/// loop instance. The hardware encodes this as a single bit indexing the
/// two-entry Context-Table; because every loop termination flushes its
/// entries, at most one generation per slot is ever live, so the
/// generation number models exactly the same reachability the 1-bit
/// index + flush-on-end provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextKey {
    /// Dynamic loop instance (0 = not inside any tracked loop).
    pub loop_gen: u64,
    /// PC of the function call through which the branch is reached
    /// (0 = reached directly in the loop body).
    pub function_pc: u32,
}

impl ContextKey {
    /// The context of code executing outside any tracked loop.
    pub const TOP_LEVEL: ContextKey = ContextKey {
        loop_gen: 0,
        function_pc: 0,
    };
}

#[derive(Debug, Clone, Copy)]
struct LoopEntry {
    loop_pc: u32,
    last_pc: u32,
    function_pc: u32,
    /// 3-bit function-call depth counter (paper: `Counter`).
    call_counter: u8,
    gen: u64,
}

const CALL_COUNTER_MAX: u8 = 7; // 3-bit field

/// The two-entry Context-Table (paper Figure 5). Newest loop last.
#[derive(Debug, Clone, Default)]
pub struct ContextTable {
    entries: Vec<LoopEntry>,
    next_gen: u64,
}

impl ContextTable {
    /// Creates an empty table.
    pub fn new() -> ContextTable {
        ContextTable {
            entries: Vec::with_capacity(2),
            next_gen: 1,
        }
    }

    /// Observes a conditional or unconditional direct branch. Backward
    /// branches drive loop detection. Returns the generation numbers of
    /// any loop contexts that ended (the caller must flush matching PBS
    /// entries).
    #[inline]
    pub fn observe_branch(&mut self, pc: u32, target: u32, taken: bool) -> Vec<u64> {
        let mut flushed = Vec::new();
        if target > pc {
            return flushed; // forward branch: no loop information
        }
        if taken {
            if let Some(pos) = self.entries.iter().position(|e| e.loop_pc == target) {
                // Re-entering a known loop: inner loops allocated after it
                // must have completed (possibly exiting via an untracked
                // path) — erase them.
                for e in self.entries.drain(pos + 1..) {
                    flushed.push(e.gen);
                }
                let e = self.entries.last_mut().expect("position found");
                if pc > e.last_pc {
                    e.last_pc = pc;
                }
            } else {
                // New loop: allocate; evict the oldest if full.
                if self.entries.len() == 2 {
                    flushed.push(self.entries.remove(0).gen);
                }
                let gen = self.next_gen;
                self.next_gen += 1;
                self.entries.push(LoopEntry {
                    loop_pc: target,
                    last_pc: pc,
                    function_pc: 0,
                    call_counter: 0,
                    gen,
                });
            }
        } else {
            // Not-taken backward branch at or beyond Last-PC terminates
            // the loop — and any loop allocated after it ("if the older
            // loop terminates before the newer one, both are erased").
            if let Some(pos) = self
                .entries
                .iter()
                .position(|e| e.loop_pc == target && pc >= e.last_pc)
            {
                for e in self.entries.drain(pos..) {
                    flushed.push(e.gen);
                }
            }
        }
        flushed
    }

    /// Observes a function call at `pc` (the address of the call
    /// instruction, the paper's `Function-PC`).
    pub fn observe_call(&mut self, pc: u32) {
        if let Some(e) = self.entries.last_mut() {
            if e.call_counter == 0 {
                e.function_pc = pc;
            }
            e.call_counter = (e.call_counter + 1).min(CALL_COUNTER_MAX);
        }
    }

    /// Observes a function return.
    pub fn observe_ret(&mut self) {
        if let Some(e) = self.entries.last_mut() {
            e.call_counter = e.call_counter.saturating_sub(1);
            if e.call_counter == 0 {
                e.function_pc = 0;
            }
        }
    }

    /// The context to associate with a probabilistic branch encountered
    /// now, or `None` when PBS must treat branches as regular because the
    /// call depth exceeds one (paper: "PBS tracks the branches when this
    /// counter is set to zero ... or one").
    pub fn current(&self) -> Option<ContextKey> {
        match self.entries.last() {
            None => Some(ContextKey::TOP_LEVEL),
            Some(e) => match e.call_counter {
                0 => Some(ContextKey {
                    loop_gen: e.gen,
                    function_pc: 0,
                }),
                1 => Some(ContextKey {
                    loop_gen: e.gen,
                    function_pc: e.function_pc,
                }),
                _ => None,
            },
        }
    }

    /// Number of tracked loops (0..=2).
    pub fn active_loops(&self) -> usize {
        self.entries.len()
    }

    /// The generation of the innermost tracked loop, if any.
    pub fn active_gen(&self) -> Option<u64> {
        self.entries.last().map(|e| e.gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_top_level() {
        let t = ContextTable::new();
        assert_eq!(t.current(), Some(ContextKey::TOP_LEVEL));
        assert_eq!(t.active_loops(), 0);
    }

    #[test]
    fn taken_backward_branch_allocates_loop() {
        let mut t = ContextTable::new();
        let flushed = t.observe_branch(50, 10, true);
        assert!(flushed.is_empty());
        assert_eq!(t.active_loops(), 1);
        let key = t.current().unwrap();
        assert_ne!(key, ContextKey::TOP_LEVEL);
        assert_eq!(key.function_pc, 0);
    }

    #[test]
    fn forward_branches_are_ignored() {
        let mut t = ContextTable::new();
        assert!(t.observe_branch(10, 50, true).is_empty());
        assert_eq!(t.active_loops(), 0);
    }

    #[test]
    fn loop_termination_flushes_generation() {
        let mut t = ContextTable::new();
        t.observe_branch(50, 10, true);
        let gen = t.active_gen().unwrap();
        // Loop iterates a few more times.
        t.observe_branch(50, 10, true);
        t.observe_branch(50, 10, true);
        // Exit: backward branch not taken.
        let flushed = t.observe_branch(50, 10, false);
        assert_eq!(flushed, vec![gen]);
        assert_eq!(t.active_loops(), 0);
        assert_eq!(t.current(), Some(ContextKey::TOP_LEVEL));
    }

    #[test]
    fn reexecuted_loop_gets_fresh_generation() {
        let mut t = ContextTable::new();
        t.observe_branch(50, 10, true);
        let g1 = t.active_gen().unwrap();
        t.observe_branch(50, 10, false);
        t.observe_branch(50, 10, true);
        let g2 = t.active_gen().unwrap();
        assert_ne!(
            g1, g2,
            "a re-executed loop is a new context (paper Section IV)"
        );
    }

    #[test]
    fn nested_loops_track_two_levels() {
        let mut t = ContextTable::new();
        t.observe_branch(100, 10, true); // outer
        let outer = t.active_gen().unwrap();
        t.observe_branch(60, 40, true); // inner
        let inner = t.active_gen().unwrap();
        assert_eq!(t.active_loops(), 2);
        assert_ne!(outer, inner);
        // Inner exits.
        let flushed = t.observe_branch(60, 40, false);
        assert_eq!(flushed, vec![inner]);
        assert_eq!(t.active_gen(), Some(outer));
    }

    #[test]
    fn outer_termination_erases_inner_too() {
        let mut t = ContextTable::new();
        t.observe_branch(100, 10, true); // outer
        let outer = t.active_gen().unwrap();
        t.observe_branch(60, 40, true); // inner
        let inner = t.active_gen().unwrap();
        // Outer's backward branch observed not-taken while inner is live.
        let flushed = t.observe_branch(100, 10, false);
        assert_eq!(flushed, vec![outer, inner]);
        assert_eq!(t.active_loops(), 0);
    }

    #[test]
    fn third_loop_evicts_oldest() {
        let mut t = ContextTable::new();
        t.observe_branch(100, 10, true);
        let first = t.active_gen().unwrap();
        t.observe_branch(60, 40, true);
        let flushed = t.observe_branch(90, 70, true);
        assert_eq!(flushed, vec![first]);
        assert_eq!(t.active_loops(), 2);
    }

    #[test]
    fn reentering_outer_loop_erases_stale_inner() {
        let mut t = ContextTable::new();
        t.observe_branch(100, 10, true); // outer allocated
        t.observe_branch(60, 40, true); // inner allocated
        let inner = t.active_gen().unwrap();
        // Outer's backward branch taken again (inner exited via an
        // untracked path such as a forward break).
        let flushed = t.observe_branch(100, 10, true);
        assert_eq!(flushed, vec![inner]);
        assert_eq!(t.active_loops(), 1);
    }

    #[test]
    fn function_call_context() {
        let mut t = ContextTable::new();
        t.observe_branch(100, 10, true);
        let gen = t.active_gen().unwrap();
        t.observe_call(42);
        let key = t.current().unwrap();
        assert_eq!(
            key,
            ContextKey {
                loop_gen: gen,
                function_pc: 42
            }
        );
        // Second-level call: PBS unsupported.
        t.observe_call(43);
        assert_eq!(t.current(), None);
        t.observe_ret();
        assert_eq!(t.current().unwrap().function_pc, 42);
        t.observe_ret();
        assert_eq!(
            t.current().unwrap(),
            ContextKey {
                loop_gen: gen,
                function_pc: 0
            }
        );
    }

    #[test]
    fn distinct_call_sites_give_distinct_contexts() {
        let mut t = ContextTable::new();
        t.observe_branch(100, 10, true);
        t.observe_call(42);
        let k1 = t.current().unwrap();
        t.observe_ret();
        t.observe_call(77);
        let k2 = t.current().unwrap();
        assert_ne!(
            k1, k2,
            "paper: different paths to the same branch get separate entries"
        );
    }

    #[test]
    fn last_pc_grows_with_larger_backward_branches() {
        let mut t = ContextTable::new();
        t.observe_branch(50, 10, true);
        // A later backward branch to the same loop head extends Last-PC;
        // a not-taken backward branch below Last-PC (e.g. a continue-like
        // inner branch) must NOT terminate the loop...
        t.observe_branch(55, 10, true);
        let flushed = t.observe_branch(50, 10, false);
        assert!(
            flushed.is_empty(),
            "pc 50 < Last-PC 55 is not a termination"
        );
        // ...but one at Last-PC does.
        let flushed = t.observe_branch(55, 10, false);
        assert_eq!(flushed.len(), 1);
    }

    #[test]
    fn calls_outside_loops_are_ignored() {
        let mut t = ContextTable::new();
        t.observe_call(9);
        t.observe_ret();
        assert_eq!(t.current(), Some(ContextKey::TOP_LEVEL));
    }
}
