//! Hardware-cost accounting, reproducing the paper's Section V-C2
//! arithmetic bit for bit.
//!
//! The paper's numbers for the default design point (4 branches × 2
//! values × 4 in flight):
//!
//! * one Prob-BTB entry + one SwapTable entry ≈ 35 bytes; ×4 branches ≈
//!   "about 140 bytes";
//! * Prob-in-Flight: 2 bytes/entry, 4 outstanding × (compare + jump) =
//!   16 bytes;
//! * Context-Table: 2 entries × (three 48-bit addresses + two 3-bit
//!   counters) = 37.5 bytes;
//! * **total: 193 bytes**.

use crate::PbsConfig;

/// Bits per Prob-BTB entry: 1 loop-context bit + 48-bit function-call PC
/// + 48-bit branch PC + 48-bit target PC + 8-bit physical-register index
/// + valid bit + T/NT bit + 64-bit `Const-Val` (paper Section V-C2).
pub const PROB_BTB_ENTRY_BITS: usize = 1 + 48 + 48 + 48 + 8 + 1 + 1 + 64;

/// Bits per SwapTable entry: 48-bit PC + 3-bit Prob-BTB index + 8-bit
/// physical-register index + valid bit.
pub const SWAP_TABLE_ENTRY_BITS: usize = 48 + 3 + 8 + 1;

/// Bits per Prob-in-Flight entry ("2 bytes").
pub const IN_FLIGHT_ENTRY_BITS: usize = 16;

/// Bits per Context-Table entry: Loop-PC + Last-PC + Function-PC (48 bits
/// each) + 3-bit call-depth counter + 3-bit auxiliary counter.
pub const CONTEXT_ENTRY_BITS: usize = 3 * 48 + 2 * 3;

/// Number of Context-Table entries (two innermost loops).
pub const CONTEXT_ENTRIES: usize = 2;

/// Total PBS state in bits for a configuration.
pub fn total_bits(config: &PbsConfig) -> usize {
    let per_branch_btb = PROB_BTB_ENTRY_BITS;
    // One value pointer lives in the Prob-BTB (`Pr_Phy`); each extra
    // value occupies a SwapTable entry.
    let swap_entries = config.values_per_branch.saturating_sub(1);
    let per_branch_swap = swap_entries * SWAP_TABLE_ENTRY_BITS;
    let btb_and_swap = config.num_branches * (per_branch_btb + per_branch_swap);
    // In-flight instances record both the compare and the jump.
    let in_flight = config.in_flight * 2 * IN_FLIGHT_ENTRY_BITS;
    let context = if config.context_tracking {
        CONTEXT_ENTRIES * CONTEXT_ENTRY_BITS
    } else {
        0
    };
    btb_and_swap + in_flight + context
}

/// Total PBS state in bytes, rounded up.
pub fn total_bytes(config: &PbsConfig) -> usize {
    total_bits(config).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_costs_193_bytes() {
        // The paper's headline number (abstract, Sections I and V-C2).
        assert_eq!(total_bytes(&PbsConfig::default()), 193);
    }

    #[test]
    fn one_branch_with_two_values_and_four_in_flight_is_51_bytes() {
        // Paper: "to support one probabilistic branch with two
        // probabilistic values and four in-flight copies of the branch,
        // we need 51 bytes in the Prob-BTB, SwapTable, and
        // Prob-in-Flight."
        let c = PbsConfig {
            num_branches: 1,
            context_tracking: false,
            ..PbsConfig::default()
        };
        assert_eq!(total_bytes(&c), 51);
    }

    #[test]
    fn four_branches_without_in_flight_or_context_is_about_140_bytes() {
        // Paper: "Assuming four probabilistic branches, this amounts to
        // about 140 bytes."
        let c = PbsConfig {
            context_tracking: false,
            in_flight: 4,
            ..PbsConfig::default()
        };
        let btb_and_swap_bits = total_bits(&c) - 4 * 2 * IN_FLIGHT_ENTRY_BITS;
        let bytes = btb_and_swap_bits as f64 / 8.0;
        assert!((bytes - 140.0).abs() < 1.0, "{bytes} bytes");
    }

    #[test]
    fn context_table_is_37_5_bytes() {
        assert_eq!(CONTEXT_ENTRIES * CONTEXT_ENTRY_BITS, 300);
        // 300 bits = 37.5 bytes.
    }

    #[test]
    fn cost_scales_linearly_in_branches() {
        let base = PbsConfig {
            context_tracking: false,
            ..PbsConfig::default()
        };
        let b1 = total_bits(&PbsConfig {
            num_branches: 1,
            ..base.clone()
        });
        let b2 = total_bits(&PbsConfig {
            num_branches: 2,
            ..base.clone()
        });
        let b3 = total_bits(&PbsConfig {
            num_branches: 3,
            ..base
        });
        assert_eq!(b2 - b1, b3 - b2);
    }

    #[test]
    fn category1_only_design_is_cheaper() {
        // A Category-1-only unit needs no SwapTable entries.
        let cat1 = PbsConfig {
            values_per_branch: 1,
            ..PbsConfig::default()
        };
        assert!(total_bytes(&cat1) < total_bytes(&PbsConfig::default()));
    }
}
