//! Experiment runners, one per paper table/figure.
//!
//! Every sweep is expressed as a grid of independent cells and executed
//! through [`probranch_harness::run_cells`], so a run with `N` workers
//! produces byte-identical rows to a serial run (the determinism
//! integration tests lock this in). Per-cell workload seeds are derived
//! from the cell identity ([`Cell::workload_seed`]) — no RNG state is
//! shared across cells.
//!
//! The timing sweeps run through the **shared-trace replay engine** by
//! default ([`Engine::Replay`]): cells that differ only in predictor,
//! core or filter configuration share one captured [`DynTrace`] per
//! emulation key instead of re-emulating the workload, through a
//! run-wide [`EngineContext`] trace pool — Figures 1, 6, 7 and 8 sweep
//! the *same* keys, so one `figures` invocation emulates each key
//! exactly once, and Figure 9 replays pooled/persisted traces where its
//! keys overlap, streaming fused two-consumer convoys with bounded
//! memory where they don't. The convoy, fused and reference engines
//! remain selectable for differential debugging (`figures --engine`);
//! all four produce byte-identical rows.

use probranch_core::PbsConfig;
use probranch_faults as faults;
use probranch_harness::{
    run_cells, run_cells_supervised, workload_seed, Attempt, Cell, CellOutcome, EngineContext,
    Jobs, Supervision,
};
use probranch_pipeline::{
    run_functional, DynTrace, EmuError, OooConfig, PredictorChoice, SimConfig, SimReport,
    Simulation,
};
use probranch_rng::SplitMix64;
use probranch_stats::randomness::{run_battery, BatteryCounts};
use probranch_stats::summary::Summary;
use probranch_workloads::accuracy::{normalized_rms, relative_error, SuccessRate};
use probranch_workloads::{BenchmarkId, HostRng, McInteg, Pi, Scale};

/// Run-size selection for the whole harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentScale {
    /// Seconds-long smoke runs.
    Smoke,
    /// Default: full sweep in a couple of minutes.
    Bench,
    /// Figure-quality runs.
    Paper,
}

impl ExperimentScale {
    /// Reads `PROBRANCH_SCALE` (`smoke` / `bench` / `paper`), defaulting
    /// to `Bench`.
    pub fn from_env() -> ExperimentScale {
        std::env::var("PROBRANCH_SCALE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(ExperimentScale::Bench)
    }

    /// Parses a scale name as accepted by `PROBRANCH_SCALE` and the
    /// `figures --scale` flag.
    pub fn parse(name: &str) -> Option<ExperimentScale> {
        match name {
            "smoke" => Some(ExperimentScale::Smoke),
            "bench" => Some(ExperimentScale::Bench),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// The scale's name, as accepted by [`ExperimentScale::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ExperimentScale::Smoke => "smoke",
            ExperimentScale::Bench => "bench",
            ExperimentScale::Paper => "paper",
        }
    }

    /// The workload scale preset.
    pub fn workload(self) -> Scale {
        match self {
            ExperimentScale::Smoke => Scale::Smoke,
            ExperimentScale::Bench => Scale::Bench,
            ExperimentScale::Paper => Scale::Paper,
        }
    }

    /// Number of seeds for seed-averaged experiments (paper: 7–8).
    pub fn seeds(self) -> u64 {
        match self {
            ExperimentScale::Smoke => 2,
            ExperimentScale::Bench | ExperimentScale::Paper => 7,
        }
    }
}

const MAX_INSTS: u64 = 2_000_000_000;

/// Which simulation engine a sweep runs its timing cells through — the
/// pipeline crate's [`EngineKind`](probranch_pipeline::EngineKind),
/// re-exported under the name the bench crate and the `figures` binary
/// have always used.
///
/// The engines produce byte-identical `SimReport`s (locked in by
/// `tests/engine_equivalence.rs`); the figures binary exposes the
/// choice as `--engine` for differential debugging. Under
/// [`Engine::Replay`] (the default) cells sharing an emulation key
/// `(workload, seed, PBS)` replay one captured trace pooled in the
/// run-wide [`EngineContext`]; paired runs (Figure 9) re-time a
/// materialized (pooled or persisted) trace, or drain one streamed
/// fused two-consumer convoy when there is none.
pub use probranch_pipeline::EngineKind as Engine;

/// The emulation key of a timing cell: the fields that determine the
/// dynamic instruction stream. Predictor and core configuration are
/// deliberately absent — cells differing only in those share a trace.
/// The scale is included so one [`EngineContext`] could serve runs at
/// several scales without ever conflating their streams.
pub type EmuKey = (BenchmarkId, u64, bool, ExperimentScale);

/// The content hash identifying one emulation key's captured stream on
/// disk: the workload identity (benchmark, scale, derived RNG seed) and
/// the architectural fingerprint (PBS/emulator configuration,
/// instruction budget, ISA version). Everything that shapes a captured
/// trace, nothing timing-side.
fn trace_content_hash(cell: &Cell, scale: ExperimentScale, cfg: &SimConfig) -> u64 {
    SplitMix64::mix_fold(&[
        cell.workload as u64,
        scale as u64,
        cell.workload_seed(),
        cfg.emu_key_fingerprint(),
    ])
}

/// A stable fingerprint of a core (timing) configuration, for grid
/// memo keys: every field that can change a timing result.
fn core_fingerprint(core: &OooConfig) -> u64 {
    let l = &core.latencies;
    SplitMix64::mix_fold(&[
        core.width as u64,
        core.rob_size as u64,
        core.frontend_depth,
        core.mispredict_penalty,
        l.int_alu,
        l.int_mul,
        l.int_div,
        l.fp_add,
        l.fp_mul,
        l.fp_div,
        l.fp_long,
        l.store,
        l.branch,
        l.other,
    ])
}

/// One memoized benchmark × [`FOUR_CONFIGS`] grid (see
/// [`four_config_reports`]), keyed by everything that shapes its rows.
type GridKey = (ExperimentScale, Engine, u64);

/// The run-wide simulation context: the trace pool plus a memo of the
/// four-config report grids several figures share.
///
/// Figures 6 and 7 sweep the *identical* timing cells (same predictors,
/// same default core) and differ only in which statistic they render;
/// Figure 8 re-times the same traces on the wide core. The context
/// therefore pools at two levels: captured [`DynTrace`]s per emulation
/// key (each key emulated — or disk-loaded, see
/// [`EngineContext`] — exactly once per run) and finished
/// [`SimReport`] grids per (scale, engine, core) point, so a `figures`
/// run never re-times a cell grid it has already retired. Both pools
/// are deterministic memoizations of pure functions, so rows are
/// byte-identical with or without sharing — the engine-diff and
/// determinism gates check exactly that.
#[derive(Debug)]
pub struct Context {
    traces: EngineContext<EmuKey>,
    grids:
        std::sync::Mutex<std::collections::HashMap<GridKey, std::sync::Arc<Vec<Vec<SimReport>>>>>,
    grid_hits: std::sync::atomic::AtomicUsize,
    supervision: Supervision,
    outcomes: std::sync::Mutex<Vec<CellOutcome>>,
}

impl Default for Context {
    fn default() -> Context {
        Context {
            traces: EngineContext::default(),
            grids: std::sync::Mutex::default(),
            grid_hits: std::sync::atomic::AtomicUsize::new(0),
            supervision: Supervision::default_robust(),
            outcomes: std::sync::Mutex::default(),
        }
    }
}

impl Context {
    /// A context with empty pools and no disk persistence.
    pub fn new() -> Context {
        Context::default()
    }

    /// A context whose trace pool is backed by trace files under `dir`.
    pub fn with_trace_dir(dir: impl Into<std::path::PathBuf>) -> Context {
        Context::with_store(Some(dir.into()), None)
    }

    /// The fully general constructor: an optional trace directory and
    /// an optional in-memory pool budget in bytes (see
    /// [`EngineContext::with_options`] for the demotion/eviction
    /// semantics).
    pub fn with_store(trace_dir: Option<std::path::PathBuf>, mem_budget: Option<usize>) -> Context {
        Context::with_robustness(trace_dir, mem_budget, false, Supervision::default_robust())
    }

    /// [`with_store`](Context::with_store) plus the robustness policy:
    /// `strict` turns every self-healing path (stale rejection,
    /// quarantine, persistence shutdown, engine degradation) into a
    /// hard structured error, and `supervision` sets the per-cell
    /// retry/deadline envelope of the supervised sweeps.
    pub fn with_robustness(
        trace_dir: Option<std::path::PathBuf>,
        mem_budget: Option<usize>,
        strict: bool,
        supervision: Supervision,
    ) -> Context {
        Context {
            traces: EngineContext::with_robustness(trace_dir, mem_budget, strict),
            supervision,
            ..Context::default()
        }
    }

    /// The underlying trace pool.
    pub fn traces(&self) -> &EngineContext<EmuKey> {
        &self.traces
    }

    /// Whether this context runs under `--strict-traces`.
    pub fn strict(&self) -> bool {
        self.traces.strict()
    }

    /// The per-cell supervision policy of the timing sweeps.
    pub fn supervision(&self) -> Supervision {
        self.supervision
    }

    /// Outcomes of every supervised cell that did not sail through on
    /// its first attempt, across all sweeps run through this context.
    pub fn cell_outcomes(&self) -> Vec<CellOutcome> {
        self.outcomes.lock().expect("outcome lock").clone()
    }

    /// Supervised cells that needed more than one attempt.
    pub fn retried_cells(&self) -> usize {
        self.outcomes
            .lock()
            .expect("outcome lock")
            .iter()
            .filter(|o| o.attempts > 1)
            .count()
    }

    /// Supervised cells whose surviving attempt ran a degraded engine.
    pub fn degraded_cells(&self) -> usize {
        self.outcomes
            .lock()
            .expect("outcome lock")
            .iter()
            .filter(|o| !o.label.is_empty())
            .count()
    }

    /// Supervised cells the watchdog saw overrun the soft deadline.
    pub fn over_deadline_cells(&self) -> usize {
        self.outcomes
            .lock()
            .expect("outcome lock")
            .iter()
            .filter(|o| o.over_deadline)
            .count()
    }

    /// Runs one supervised sweep: results in cell-index order
    /// (byte-identical to an unsupervised run whenever every cell
    /// eventually succeeds), non-clean outcomes folded into this
    /// context's tally. A cell that exhausts its attempts raises the
    /// typed [`SupervisedError`](probranch_harness::SupervisedError)
    /// as a panic payload; the figures binary catches it and renders a
    /// structured error instead of a crash (the quiet panic hook keeps
    /// the unwind silent).
    fn sweep<T: Sync, R: Send>(
        &self,
        cells: &[T],
        jobs: Jobs,
        run: impl Fn(&T, &Attempt) -> R + Sync,
    ) -> Vec<R> {
        match run_cells_supervised(cells, jobs, self.supervision, run) {
            Ok(done) => {
                if !done.outcomes.is_empty() {
                    self.outcomes
                        .lock()
                        .expect("outcome lock")
                        .extend(done.outcomes);
                }
                done.results
            }
            Err(e) => std::panic::panic_any(e),
        }
    }

    /// Emulations actually performed through this context.
    pub fn captures(&self) -> usize {
        self.traces.captures()
    }

    /// Traces served from the trace directory instead of captured.
    pub fn disk_loads(&self) -> usize {
        self.traces.disk_loads()
    }

    /// Distinct emulation keys currently pooled.
    pub fn keys(&self) -> usize {
        self.traces.keys()
    }

    /// Total heap bytes held by the pooled traces.
    pub fn bytes(&self) -> usize {
        self.traces.bytes()
    }

    /// Four-config grids served from the grid memo instead of re-timed.
    pub fn grid_hits(&self) -> usize {
        self.grid_hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Pool hits: trace gets served from an already-pooled trace.
    pub fn store_hits(&self) -> usize {
        self.traces.store_hits()
    }

    /// Pooled traces demoted to their mmap-backed persisted form under
    /// the memory budget.
    pub fn demotions(&self) -> usize {
        self.traces.demotions()
    }

    /// Pooled traces evicted outright under the memory budget.
    pub fn evictions(&self) -> usize {
        self.traces.evictions()
    }

    /// High-water mark of pooled trace bytes.
    pub fn peak_bytes(&self) -> usize {
        self.traces.peak_bytes()
    }

    /// The memoized grid for `key`, computing it with `compute` on
    /// first use.
    fn grid(
        &self,
        key: GridKey,
        compute: impl FnOnce() -> Vec<Vec<SimReport>>,
    ) -> std::sync::Arc<Vec<Vec<SimReport>>> {
        if let Some(grid) = self.grids.lock().expect("grid memo lock").get(&key) {
            self.grid_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return std::sync::Arc::clone(grid);
        }
        // Computed outside the lock: grids are deterministic, so a
        // racing duplicate compute is waste, never a wrong answer —
        // and in practice the figures run retires sweeps sequentially.
        let grid = std::sync::Arc::new(compute());
        self.grids
            .lock()
            .expect("grid memo lock")
            .entry(key)
            .or_insert_with(|| std::sync::Arc::clone(&grid))
            .clone()
    }
}

/// The benchmark's paper name, without running anything (benchmark
/// constructors only store parameters).
fn name_of(id: BenchmarkId) -> &'static str {
    id.build(Scale::Smoke, 0).name()
}

/// The cell's full simulation configuration.
fn cell_config(cell: &Cell, core: OooConfig) -> SimConfig {
    let mut cfg = SimConfig {
        core,
        predictor: cell.predictor,
        ..SimConfig::default()
    };
    if cell.pbs {
        cfg.pbs = Some(PbsConfig::default());
    }
    cfg.max_insts = MAX_INSTS;
    cfg
}

/// Builds the cell's workload (at its derived seed) and simulates it
/// under the cell's predictor/PBS configuration with the fused engine.
fn sim_cell(cell: &Cell, scale: ExperimentScale, core: OooConfig) -> SimReport {
    let bench = cell.workload.build(scale.workload(), cell.workload_seed());
    let cfg = cell_config(cell, core);
    Simulation::new(Engine::Fused)
        .run(&bench.program(), &cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
}

/// The cell's trace, through the run-wide pool: the first cell of an
/// emulation key captures (or disk-loads) the [`DynTrace`], every later
/// cell — possibly on another worker thread, possibly in a *different
/// sweep* — replays the shared copy without re-emulating.
fn cell_trace(
    cell: &Cell,
    scale: ExperimentScale,
    cfg: &SimConfig,
    ctx: &Context,
    attempt: u64,
) -> std::sync::Arc<DynTrace> {
    let key = (cell.workload, cell.seed, cell.pbs, scale);
    let hash = trace_content_hash(cell, scale, cfg);
    ctx.traces
        .get_or_capture(key, hash, cfg, || {
            if faults::injected(faults::Site::Capture, &[hash, attempt]) {
                return Err(EmuError::InjectedFault {
                    site: faults::Site::Capture.name(),
                });
            }
            let bench = cell.workload.build(scale.workload(), cell.workload_seed());
            DynTrace::capture(&bench.program(), cfg)
        })
        .unwrap_or_else(|e| panic!("{:?}: {e}", cell.workload))
}

/// [`sim_cell`] behind an engine choice. Under [`Engine::Replay`] the
/// cell replays the pooled trace of its emulation key (see
/// [`cell_trace`]). [`Engine::Convoy`] cells are grouped per key by the
/// sweep runners and drain streamed fused convoys instead of reaching
/// this per-cell path.
fn sim_cell_engine(
    cell: &Cell,
    scale: ExperimentScale,
    core: OooConfig,
    engine: Engine,
    ctx: &Context,
    attempt: u64,
) -> SimReport {
    match engine {
        Engine::Fused => sim_cell(cell, scale, core),
        Engine::Reference => {
            let bench = cell.workload.build(scale.workload(), cell.workload_seed());
            let cfg = cell_config(cell, core);
            Simulation::new(Engine::Reference)
                .run(&bench.program(), &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
        }
        Engine::Replay | Engine::Convoy => {
            let cfg = cell_config(cell, core);
            let trace = cell_trace(cell, scale, &cfg, ctx, attempt);
            Simulation::new(Engine::Replay)
                .replay(&trace, &cfg)
                .unwrap_or_else(|e| panic!("{:?}: {e}", cell.workload))
        }
    }
}

/// The engine attempt `number` of a supervised cell actually runs: the
/// requested engine twice, then the degradation cascade — fused, then
/// reference — so a cell whose trace capture or replay keeps failing
/// still retires. Engine equivalence (locked in by
/// `tests/engine_equivalence.rs`) keeps degraded rows byte-identical
/// to clean ones. Under `--strict-traces` the cascade is off: the
/// requested engine either succeeds or the cell's failure surfaces as
/// a structured error.
fn engine_for_attempt(requested: Engine, number: u32, strict: bool) -> Engine {
    match number {
        _ if strict => requested,
        0 | 1 => requested,
        2 => Engine::Fused,
        _ => Engine::Reference,
    }
}

/// One supervised timing cell: the injectable cell-body fault sites
/// fire first (salted by cell identity and attempt ordinal, so retries
/// re-roll), then the cell simulates under the cascade engine for this
/// attempt, labelling itself when it degraded.
fn sim_cell_supervised(
    cell: &Cell,
    scale: ExperimentScale,
    core: OooConfig,
    requested: Engine,
    ctx: &Context,
    attempt: &Attempt,
) -> SimReport {
    faults::cell_faults(&[cell.stable_hash(), attempt.number as u64]);
    probranch_pipeline::cancel::inject_spurious(&[cell.stable_hash(), attempt.number as u64]);
    let engine = engine_for_attempt(requested, attempt.number, ctx.strict());
    if engine != requested {
        attempt.set_label(engine.name());
    }
    sim_cell_engine(cell, scale, core, engine, ctx, attempt.number as u64)
}

/// [`convoy_key`] under supervision: a degraded attempt re-simulates
/// the key's configurations individually on the cascade engine instead
/// of draining the streamed convoy, preserving report order (and, by
/// engine equivalence, bytes).
fn convoy_key_supervised(
    workload: BenchmarkId,
    seed: u64,
    scale: ExperimentScale,
    configs: &[SimConfig],
    attempt: &Attempt,
    strict: bool,
) -> Vec<SimReport> {
    let engine = engine_for_attempt(Engine::Convoy, attempt.number, strict);
    if engine == Engine::Convoy {
        return convoy_key(workload, seed, scale, configs);
    }
    attempt.set_label(engine.name());
    let bench = workload.build(scale.workload(), workload_seed(workload, seed));
    let program = bench.program();
    let sim = Simulation::new(engine);
    configs
        .iter()
        .map(|cfg| {
            sim.run(&program, cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
        })
        .collect()
}

/// One emulation key's cells as a **streamed fused convoy**: builds the
/// key's workload once and drains every configuration in lockstep from
/// a single capture stream — the [`Engine::Convoy`] execution shape.
fn convoy_key(
    workload: BenchmarkId,
    seed: u64,
    scale: ExperimentScale,
    configs: &[SimConfig],
) -> Vec<SimReport> {
    let bench = workload.build(scale.workload(), workload_seed(workload, seed));
    Simulation::new(Engine::Convoy)
        .run_many(&bench.program(), configs)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// One Figure 1 row: the share of probabilistic branches in dynamic
/// branches and in mispredictions, per predictor.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Probabilistic share of dynamic conditional branches (%).
    pub prob_branch_share: f64,
    /// Probabilistic share of tournament mispredictions (%).
    pub tournament_mispredict_share: f64,
    /// Probabilistic share of TAGE-SC-L mispredictions (%).
    pub tage_mispredict_share: f64,
}

/// Figure 1: probabilistic branches are a small fraction of dynamic
/// branches but a disproportionate fraction of mispredictions.
pub fn fig1(scale: ExperimentScale, jobs: Jobs) -> Vec<Fig1Row> {
    fig1_with(scale, jobs, Engine::default())
}

/// [`fig1`] under an explicit engine and a private trace pool.
pub fn fig1_with(scale: ExperimentScale, jobs: Jobs, engine: Engine) -> Vec<Fig1Row> {
    fig1_with_ctx(scale, jobs, engine, &Context::new())
}

/// [`fig1`] under an explicit engine and the run-wide trace pool. The
/// two predictor cells of each benchmark share one emulation key, so
/// the replay engine emulates each workload at most once per `ctx` —
/// zero times when an earlier sweep already pooled the key.
pub fn fig1_with_ctx(
    scale: ExperimentScale,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> Vec<Fig1Row> {
    const PREDICTORS: [PredictorChoice; 2] =
        [PredictorChoice::Tournament, PredictorChoice::TageScL];
    let reports: Vec<SimReport> = if engine == Engine::Convoy {
        // One streamed fused convoy per benchmark: both predictors in
        // lockstep from a single capture stream.
        ctx.sweep(&BenchmarkId::ALL, jobs, |&w, attempt| {
            faults::cell_faults(&[w as u64, attempt.number as u64]);
            probranch_pipeline::cancel::inject_spurious(&[w as u64, attempt.number as u64]);
            let configs =
                PREDICTORS.map(|p| cell_config(&Cell::new(w, p, false, 0), OooConfig::default()));
            convoy_key_supervised(w, 0, scale, &configs, attempt, ctx.strict())
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        let cells: Vec<Cell> = BenchmarkId::ALL
            .iter()
            .flat_map(|&w| PREDICTORS.map(|p| Cell::new(w, p, false, 0)))
            .collect();
        ctx.sweep(&cells, jobs, |c, attempt| {
            sim_cell_supervised(c, scale, OooConfig::default(), engine, ctx, attempt)
        })
    };
    let share = |r: &SimReport| {
        100.0 * r.timing.prob_branches as f64 / r.timing.cond_branches.max(1) as f64
    };
    let mshare = |r: &SimReport| {
        100.0 * r.timing.mispredicts_prob as f64 / r.timing.mispredicts.max(1) as f64
    };
    BenchmarkId::ALL
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&id, pair)| {
            let (tour, tage) = (&pair[0], &pair[1]);
            Fig1Row {
                name: name_of(id),
                prob_branch_share: share(tour),
                tournament_mispredict_share: mshare(tour),
                tage_mispredict_share: mshare(tage),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One Table I row: baseline applicability per benchmark.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Whether if-conversion applies to all its probabilistic branches.
    pub predication: bool,
    /// First predication failure reason, if any.
    pub predication_reason: Option<String>,
    /// Whether CFD applies to all its probabilistic branches.
    pub cfd: bool,
    /// First CFD failure reason, if any.
    pub cfd_reason: Option<String>,
}

/// Table I: whether predication and control-flow decoupling can be
/// applied (static analysis of the eight workloads).
pub fn table1(jobs: Jobs) -> Vec<Table1Row> {
    // No predictor/PBS axis: the cells are the benchmarks themselves.
    run_cells(&BenchmarkId::ALL, jobs, |&id| {
        let b = id.build(Scale::Smoke, workload_seed(id, 0));
        let p = b.program();
        let pred = probranch_compiler::predication::analyze_program(&p);
        let cfd = probranch_compiler::cfd::analyze_program(&p);
        let first_err = |v: &[(u32, probranch_compiler::Applicability)]| {
            v.iter()
                .find_map(|(_, a)| a.as_ref().err().map(|e| e.to_string()))
        };
        Table1Row {
            name: b.name(),
            predication: pred.iter().all(|(_, a)| a.is_ok()),
            predication_reason: first_err(&pred),
            cfd: cfd.iter().all(|(_, a)| a.is_ok()),
            cfd_reason: first_err(&cfd),
        }
    })
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

/// One Table II row: benchmark characteristics.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Static probabilistic branch sites.
    pub prob_branches: usize,
    /// Total static conditional branch sites.
    pub total_branches: usize,
    /// Category ("1" or "2").
    pub category: String,
    /// Dynamically executed instructions at this scale.
    pub dynamic_insts: u64,
}

/// Table II: benchmark characteristics (branch counts, category,
/// instruction counts).
pub fn table2(scale: ExperimentScale, jobs: Jobs) -> Vec<Table2Row> {
    run_cells(&BenchmarkId::ALL, jobs, |&id| {
        let b = id.build(scale.workload(), workload_seed(id, 0));
        let p = b.program();
        let (prob, total) = p.branch_counts();
        let r = run_functional(&p, None, MAX_INSTS).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        Table2Row {
            name: b.name(),
            prob_branches: prob,
            total_branches: total,
            category: b.category().to_string(),
            dynamic_insts: r.timing.instructions,
        }
    })
}

// ---------------------------------------------------------------------------
// Figures 6, 7, 8
// ---------------------------------------------------------------------------

/// One Figure 6 row: MPKI with and without PBS, per predictor.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Tournament MPKI without PBS.
    pub tournament_base: f64,
    /// Tournament MPKI with PBS.
    pub tournament_pbs: f64,
    /// TAGE-SC-L MPKI without PBS.
    pub tage_base: f64,
    /// TAGE-SC-L MPKI with PBS.
    pub tage_pbs: f64,
}

impl Fig6Row {
    /// MPKI reduction (%) for the tournament predictor.
    pub fn tournament_reduction(&self) -> f64 {
        100.0 * (self.tournament_base - self.tournament_pbs) / self.tournament_base.max(1e-9)
    }

    /// MPKI reduction (%) for TAGE-SC-L.
    pub fn tage_reduction(&self) -> f64 {
        100.0 * (self.tage_base - self.tage_pbs) / self.tage_base.max(1e-9)
    }
}

/// The four machine configurations every benchmark is swept over:
/// tournament / TAGE-SC-L, each without and with PBS.
const FOUR_CONFIGS: [(PredictorChoice, bool); 4] = [
    (PredictorChoice::Tournament, false),
    (PredictorChoice::Tournament, true),
    (PredictorChoice::TageScL, false),
    (PredictorChoice::TageScL, true),
];

/// The benchmark × [`FOUR_CONFIGS`] grid, one run per cell, merged back
/// per benchmark in config order. Under the replay engine each
/// benchmark's four cells collapse onto two emulation keys (PBS off /
/// on), each captured at most once into the run-wide pool and replayed
/// for both predictors; under [`Engine::Convoy`] each key runs as one
/// streamed fused convoy of its two predictor cells.
fn four_config_reports(
    scale: ExperimentScale,
    core: OooConfig,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> std::sync::Arc<Vec<Vec<SimReport>>> {
    ctx.grid((scale, engine, core_fingerprint(&core)), || {
        if engine == Engine::Convoy {
            // One (benchmark, PBS) key per convoy, both predictors in
            // lockstep; regrouped below into FOUR_CONFIGS order.
            let keys: Vec<(BenchmarkId, bool)> = BenchmarkId::ALL
                .iter()
                .flat_map(|&w| [false, true].map(|pbs| (w, pbs)))
                .collect();
            let per_key = ctx.sweep(&keys, jobs, |&(w, pbs), attempt| {
                faults::cell_faults(&[w as u64, pbs as u64, attempt.number as u64]);
                probranch_pipeline::cancel::inject_spurious(&[
                    w as u64,
                    pbs as u64,
                    attempt.number as u64,
                ]);
                let configs = [PredictorChoice::Tournament, PredictorChoice::TageScL]
                    .map(|p| cell_config(&Cell::new(w, p, pbs, 0), core.clone()));
                convoy_key_supervised(w, 0, scale, &configs, attempt, ctx.strict())
            });
            return per_key
                .chunks_exact(2)
                .map(|key_pair| {
                    let (off, on) = (&key_pair[0], &key_pair[1]);
                    // FOUR_CONFIGS order: (T, off), (T, on), (Tg, off),
                    // (Tg, on).
                    vec![off[0].clone(), on[0].clone(), off[1].clone(), on[1].clone()]
                })
                .collect();
        }
        let cells: Vec<Cell> = BenchmarkId::ALL
            .iter()
            .flat_map(|&w| FOUR_CONFIGS.map(|(p, pbs)| Cell::new(w, p, pbs, 0)))
            .collect();
        let reports = ctx.sweep(&cells, jobs, |c, attempt| {
            sim_cell_supervised(c, scale, core.clone(), engine, ctx, attempt)
        });
        reports
            .chunks_exact(FOUR_CONFIGS.len())
            .map(<[SimReport]>::to_vec)
            .collect()
    })
}

/// Figure 6: MPKI reduction through PBS for both predictors.
pub fn fig6(scale: ExperimentScale, jobs: Jobs) -> Vec<Fig6Row> {
    fig6_with(scale, jobs, Engine::default())
}

/// [`fig6`] under an explicit engine and a private trace pool.
pub fn fig6_with(scale: ExperimentScale, jobs: Jobs, engine: Engine) -> Vec<Fig6Row> {
    fig6_with_ctx(scale, jobs, engine, &Context::new())
}

/// [`fig6`] under an explicit engine and the run-wide trace pool.
pub fn fig6_with_ctx(
    scale: ExperimentScale,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> Vec<Fig6Row> {
    BenchmarkId::ALL
        .iter()
        .zip(four_config_reports(scale, OooConfig::default(), jobs, engine, ctx).iter())
        .map(|(&id, r)| Fig6Row {
            name: name_of(id),
            tournament_base: r[0].timing.mpki(),
            tournament_pbs: r[1].timing.mpki(),
            tage_base: r[2].timing.mpki(),
            tage_pbs: r[3].timing.mpki(),
        })
        .collect()
}

/// One Figure 7/8 row: IPC under the four predictor/PBS configurations,
/// normalized to the tournament baseline.
#[derive(Debug, Clone)]
pub struct IpcRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Tournament baseline IPC (the normalization denominator).
    pub tournament: f64,
    /// TAGE-SC-L IPC / tournament IPC.
    pub tage: f64,
    /// Tournament+PBS IPC / tournament IPC.
    pub tournament_pbs: f64,
    /// TAGE-SC-L+PBS IPC / tournament IPC.
    pub tage_pbs: f64,
}

fn ipc_rows(
    scale: ExperimentScale,
    core: OooConfig,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> Vec<IpcRow> {
    BenchmarkId::ALL
        .iter()
        .zip(four_config_reports(scale, core, jobs, engine, ctx).iter())
        .map(|(&id, r)| {
            let base = r[0].timing.ipc();
            IpcRow {
                name: name_of(id),
                tournament: base,
                tage: r[2].timing.ipc() / base,
                tournament_pbs: r[1].timing.ipc() / base,
                tage_pbs: r[3].timing.ipc() / base,
            }
        })
        .collect()
}

/// Figure 7: normalized IPC on the 4-wide, 168-ROB core.
pub fn fig7(scale: ExperimentScale, jobs: Jobs) -> Vec<IpcRow> {
    fig7_with(scale, jobs, Engine::default())
}

/// [`fig7`] under an explicit engine and a private trace pool.
pub fn fig7_with(scale: ExperimentScale, jobs: Jobs, engine: Engine) -> Vec<IpcRow> {
    fig7_with_ctx(scale, jobs, engine, &Context::new())
}

/// [`fig7`] under an explicit engine and the run-wide trace pool —
/// Figures 6, 7 and 8 sweep the *same* emulation keys, so a shared
/// `ctx` re-times pooled traces instead of re-emulating anything.
pub fn fig7_with_ctx(
    scale: ExperimentScale,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> Vec<IpcRow> {
    ipc_rows(scale, OooConfig::default(), jobs, engine, ctx)
}

/// Figure 8: normalized IPC on the 8-wide, 256-ROB core.
pub fn fig8(scale: ExperimentScale, jobs: Jobs) -> Vec<IpcRow> {
    fig8_with(scale, jobs, Engine::default())
}

/// [`fig8`] under an explicit engine and a private trace pool.
pub fn fig8_with(scale: ExperimentScale, jobs: Jobs, engine: Engine) -> Vec<IpcRow> {
    fig8_with_ctx(scale, jobs, engine, &Context::new())
}

/// [`fig8`] under an explicit engine and the run-wide trace pool. The
/// 8-wide core is timing-side only: Figure 8 replays the very traces
/// Figures 6 and 7 captured.
pub fn fig8_with_ctx(
    scale: ExperimentScale,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> Vec<IpcRow> {
    ipc_rows(scale, OooConfig::wide(), jobs, engine, ctx)
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

/// One Figure 9 row: regular-branch MPKI increase due to probabilistic
/// branches interfering in the tournament predictor.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Maximum MPKI increase (%) across seeds.
    pub max_increase_pct: f64,
}

/// Figure 9: negative interference of probabilistic branches in the
/// 1 KB tournament predictor — the maximum (over seeds) increase in
/// regular-branch MPKI when probabilistic branches access the predictor
/// versus when they are filtered out.
pub fn fig9(scale: ExperimentScale, jobs: Jobs) -> Vec<Fig9Row> {
    fig9_with(scale, jobs, Engine::default())
}

/// [`fig9`] under an explicit engine and a private trace pool.
pub fn fig9_with(scale: ExperimentScale, jobs: Jobs, engine: Engine) -> Vec<Fig9Row> {
    fig9_with_ctx(scale, jobs, engine, &Context::new())
}

/// [`fig9`] under an explicit engine and the run-wide trace pool. The
/// unfiltered and filtered runs of a cell share the dynamic instruction
/// stream: the replay engine re-times a materialized trace twice when
/// one is available — the pooled trace when the run-wide context
/// already holds the cell's key (its seed-0 keys are exactly
/// Figures 1/6/7/8's), or an ephemeral load-or-capture trace when a
/// trace directory is configured (persisted but never pooled — no
/// later sweep revisits a fig9-private seed) — and otherwise drains a
/// single bounded-memory capture stream as a fused two-consumer
/// convoy. Either way the extra seeds never bloat the pool.
pub fn fig9_with_ctx(
    scale: ExperimentScale,
    jobs: Jobs,
    engine: Engine,
    ctx: &Context,
) -> Vec<Fig9Row> {
    // One cell per (benchmark, seed): both the unfiltered and the
    // filtered run need the same workload instance, so they pair up
    // inside the cell rather than across cells.
    let seeds = scale.seeds();
    let cells: Vec<Cell> = BenchmarkId::ALL
        .iter()
        .flat_map(|&w| (0..seeds).map(move |s| Cell::new(w, PredictorChoice::Tournament, false, s)))
        .collect();
    let increases = ctx.sweep(&cells, jobs, |cell, attempt| {
        faults::cell_faults(&[cell.stable_hash(), attempt.number as u64]);
        probranch_pipeline::cancel::inject_spurious(&[cell.stable_hash(), attempt.number as u64]);
        let cascaded = engine_for_attempt(engine, attempt.number, ctx.strict());
        if cascaded != engine {
            attempt.set_label(cascaded.name());
        }
        let engine = cascaded;
        let mut cfg = SimConfig {
            predictor: cell.predictor,
            max_insts: MAX_INSTS,
            ..SimConfig::default()
        };
        let (unfiltered, filtered) = match engine {
            Engine::Replay | Engine::Convoy => {
                let mut filtered_cfg = cfg.clone();
                filtered_cfg.filter_prob_from_predictor = true;
                let pair = [cfg, filtered_cfg];
                let key = (cell.workload, cell.seed, cell.pbs, scale);
                let pooled = if engine == Engine::Replay {
                    ctx.traces.peek(&key)
                } else {
                    None
                };
                // Once a trace is materialized, two independent
                // replays beat the fused pair drain (two issue rings
                // interleaved per record thrash — see CHANGES.md); the
                // fused convoy earns its keep on the streamed path,
                // where it shares the one capture pass.
                let replay_pair = |trace: &DynTrace| {
                    Simulation::new(Engine::Replay)
                        .replay_many(trace, &pair)
                        .expect("replay")
                };
                let mut reports = match pooled {
                    // The run-wide pool already holds this key (its
                    // seed-0 keys are exactly Figures 1/6/7/8's).
                    Some(trace) => replay_pair(&trace),
                    // Fig9-private key with a trace directory: load or
                    // capture+persist WITHOUT pooling — no later sweep
                    // revisits it, and the pool never evicts.
                    None if engine == Engine::Replay && ctx.traces.persistent() => {
                        let hash = trace_content_hash(cell, scale, &pair[0]);
                        let trace = ctx
                            .traces
                            .load_or_capture_unpooled(hash, &pair[0], || {
                                if faults::injected(
                                    faults::Site::Capture,
                                    &[hash, attempt.number as u64],
                                ) {
                                    return Err(EmuError::InjectedFault {
                                        site: faults::Site::Capture.name(),
                                    });
                                }
                                let bench =
                                    cell.workload.build(scale.workload(), cell.workload_seed());
                                DynTrace::capture(&bench.program(), &pair[0])
                            })
                            .unwrap_or_else(|e| panic!("{:?}: {e}", cell.workload));
                        replay_pair(&trace)
                    }
                    // No pool hit, no disk: one streamed fused convoy,
                    // bounded memory.
                    None => convoy_key(cell.workload, cell.seed, scale, &pair),
                }
                .into_iter();
                (
                    reports.next().expect("unfiltered report"),
                    reports.next().expect("filtered report"),
                )
            }
            Engine::Fused | Engine::Reference => {
                let b = cell.workload.build(scale.workload(), cell.workload_seed());
                let sim = Simulation::new(engine);
                let unfiltered = sim.run(&b.program(), &cfg).expect("sim");
                cfg.filter_prob_from_predictor = true;
                (unfiltered, sim.run(&b.program(), &cfg).expect("sim"))
            }
        };
        let base = filtered.timing.mpki_regular();
        if base > 0.0 {
            100.0 * (unfiltered.timing.mpki_regular() - base) / base
        } else {
            0.0
        }
    });
    BenchmarkId::ALL
        .iter()
        .zip(increases.chunks_exact(seeds as usize))
        .map(|(&id, incs)| Fig9Row {
            name: name_of(id),
            max_increase_pct: incs.iter().fold(0.0f64, |a, &b| a.max(b)),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------------

/// The `(original, PBS)` uniform value streams of one run, for the
/// randomness battery. `None` for DOP and Greeks (Gaussian-derived, as
/// the paper excludes them).
pub fn uniform_stream_pair(
    id: BenchmarkId,
    scale: Scale,
    seed: u64,
) -> Option<(Vec<f64>, Vec<f64>)> {
    let bench = id.build(scale, seed);
    if !bench.uniform_controlled() {
        return None;
    }
    match id {
        BenchmarkId::Pi | BenchmarkId::McInteg => {
            // The probabilistic value is *derived* from the two uniform
            // draws (dx²+dy²−1 / x²−y); the battery needs the underlying
            // uniforms. PBS consumption is deterministic (bootstrap B,
            // then generation order lagged by B), so the consumed-order
            // uniform stream is reconstructed exactly.
            let samples = match id {
                BenchmarkId::Pi => Pi::new(scale, seed).samples,
                _ => McInteg::new(scale, seed).samples,
            } as usize;
            let mut rng = HostRng::new(seed.max(1));
            let pairs: Vec<(f64, f64)> = (0..samples)
                .map(|_| (rng.next_f64(), rng.next_f64()))
                .collect();
            let b = PbsConfig::default().in_flight;
            let original: Vec<f64> = pairs.iter().flat_map(|&(a, c)| [a, c]).collect();
            let mut pbs: Vec<f64> = pairs[..b.min(samples)]
                .iter()
                .flat_map(|&(a, c)| [a, c])
                .collect();
            pbs.extend(
                pairs[..samples.saturating_sub(b)]
                    .iter()
                    .flat_map(|&(a, c)| [a, c]),
            );
            Some((original, pbs))
        }
        _ => {
            // The probabilistic values are the uniforms themselves:
            // record consumption order directly. The "original" order is
            // obtained with an effectively infinite in-flight window
            // (every instance bootstraps, consuming its own value).
            let huge = PbsConfig {
                in_flight: usize::MAX / 2,
                ..PbsConfig::default()
            };
            let orig =
                run_functional(&bench.program(), Some(huge), MAX_INSTS).expect("functional run");
            let pbs = run_functional(&bench.program(), Some(PbsConfig::default()), MAX_INSTS)
                .expect("functional run");
            let tof = |r: &SimReport| {
                r.prob_consumed
                    .iter()
                    .map(|&b| f64::from_bits(b))
                    .collect::<Vec<f64>>()
            };
            Some((tof(&orig), tof(&pbs)))
        }
    }
}

/// One Table III row: battery counts for original and PBS streams, as
/// 95% confidence intervals over seeds.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// PASS interval, original.
    pub orig_pass: Summary,
    /// WEAK interval, original.
    pub orig_weak: Summary,
    /// FAIL interval, original.
    pub orig_fail: Summary,
    /// PASS interval, PBS.
    pub pbs_pass: Summary,
    /// WEAK interval, PBS.
    pub pbs_weak: Summary,
    /// FAIL interval, PBS.
    pub pbs_fail: Summary,
}

/// The six uniform-controlled benchmarks of Table III, in paper order.
const TABLE3_IDS: [BenchmarkId; 6] = [
    BenchmarkId::Swaptions,
    BenchmarkId::Genetic,
    BenchmarkId::Photon,
    BenchmarkId::McInteg,
    BenchmarkId::Pi,
    BenchmarkId::Bandit,
];

/// Table III: the randomness battery over original versus PBS-processed
/// value streams, for the uniform-controlled benchmarks.
pub fn table3(scale: ExperimentScale, jobs: Jobs) -> Vec<Table3Row> {
    let seeds = scale.seeds();
    let cells: Vec<Cell> = TABLE3_IDS
        .iter()
        .flat_map(|&w| (0..seeds).map(move |s| Cell::new(w, PredictorChoice::Tournament, true, s)))
        .collect();
    let batteries = run_cells(&cells, jobs, |cell| {
        let (orig, pbs) =
            uniform_stream_pair(cell.workload, scale.workload(), cell.workload_seed())
                .expect("uniform benchmark");
        let co = BatteryCounts::of(&run_battery(&orig));
        let cp = BatteryCounts::of(&run_battery(&pbs));
        [co.pass, co.weak, co.fail, cp.pass, cp.weak, cp.fail]
    });
    TABLE3_IDS
        .iter()
        .zip(batteries.chunks_exact(seeds as usize))
        .map(|(&id, per_seed)| {
            let column = |i: usize| per_seed.iter().map(|c| c[i] as f64).collect::<Vec<f64>>();
            Table3Row {
                name: name_of(id),
                orig_pass: Summary::of(&column(0)),
                orig_weak: Summary::of(&column(1)),
                orig_fail: Summary::of(&column(2)),
                pbs_pass: Summary::of(&column(3)),
                pbs_weak: Summary::of(&column(4)),
                pbs_fail: Summary::of(&column(5)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §VII-D output accuracy
// ---------------------------------------------------------------------------

/// One accuracy row (paper Section VII-D).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The metric used ("relative error", "success-rate CI overlap",
    /// "normalized RMS").
    pub metric: &'static str,
    /// The measured error/indicator (0 = identical).
    pub value: f64,
    /// Whether the result is within the paper's acceptance criterion.
    pub acceptable: bool,
}

/// One unit of §VII-D work: a benchmark's base-vs-PBS functional run
/// pair, or one Genetic success-rate trial.
#[derive(Debug, Clone, Copy)]
enum AccuracyCell {
    /// Max relative error over the primary outputs.
    RelErr(BenchmarkId),
    /// One Genetic trial at a seed index; trials aggregate into one row.
    GeneticTrial(u64),
    /// Normalized RMS over the absorption histogram.
    Photon,
    /// Reward relative error.
    Bandit,
}

/// Base and PBS functional runs of the same workload instance.
fn base_pbs_pair(id: BenchmarkId, w: Scale, seed_index: u64) -> (SimReport, SimReport) {
    let b = id.build(w, workload_seed(id, seed_index));
    let base = run_functional(&b.program(), None, MAX_INSTS).expect("run");
    let pbs = run_functional(&b.program(), Some(PbsConfig::default()), MAX_INSTS).expect("run");
    (base, pbs)
}

/// Section VII-D: output accuracy of PBS versus the original run.
pub fn accuracy(scale: ExperimentScale, jobs: Jobs) -> Vec<AccuracyRow> {
    let w = scale.workload();
    let trials = match scale {
        ExperimentScale::Smoke => 8,
        _ => 24,
    };

    // Relative-error benchmarks: DOP, Greeks, Swaptions, MC-integ, PI.
    const REL_ERR_IDS: [BenchmarkId; 5] = [
        BenchmarkId::Dop,
        BenchmarkId::Greeks,
        BenchmarkId::Swaptions,
        BenchmarkId::McInteg,
        BenchmarkId::Pi,
    ];
    let mut cells: Vec<AccuracyCell> = REL_ERR_IDS.map(AccuracyCell::RelErr).to_vec();
    cells.extend((0..trials).map(AccuracyCell::GeneticTrial));
    cells.push(AccuracyCell::Photon);
    cells.push(AccuracyCell::Bandit);

    // Each cell yields either a finished row (Err) or one Genetic
    // (ok_base, ok_pbs) sample (Ok) to be aggregated below.
    let outcomes = run_cells(&cells, jobs, |cell| match *cell {
        AccuracyCell::RelErr(id) => {
            let (base, pbs) = base_pbs_pair(id, w, 0);
            // Compare the primary result values (port 1 when present,
            // port 0 counts otherwise), interpreting counts as
            // magnitudes.
            let (a, p) = if base.output(1).is_empty() {
                (
                    base.output(0).iter().map(|&v| v as f64).collect::<Vec<_>>(),
                    pbs.output(0).iter().map(|&v| v as f64).collect::<Vec<_>>(),
                )
            } else {
                (base.output_f64(1), pbs.output_f64(1))
            };
            let err = a
                .iter()
                .zip(&p)
                .map(|(&x, &y)| relative_error(x, y))
                .fold(0.0, f64::max);
            Err(AccuracyRow {
                name: name_of(id),
                metric: "max relative error",
                value: err,
                acceptable: err < 0.02,
            })
        }
        AccuracyCell::GeneticTrial(s) => {
            let (base, pbs) = base_pbs_pair(BenchmarkId::Genetic, w, s);
            Ok((base.output(0)[0], pbs.output(0)[0]))
        }
        AccuracyCell::Photon => {
            let (base, pbs) = base_pbs_pair(BenchmarkId::Photon, w, 0);
            let rms = normalized_rms(&base.output_f64(0), &pbs.output_f64(0));
            // The paper observed 3.9% at 6.2G instructions; the per-bin
            // Monte-Carlo variance scales as 1/sqrt(photons), so the
            // acceptance bound is scale-aware (AxBench-style
            // image-quality ranges). EXPERIMENTS.md records the measured
            // value per scale.
            let bound = match scale {
                ExperimentScale::Smoke => 0.40,
                ExperimentScale::Bench => 0.20,
                ExperimentScale::Paper => 0.10,
            };
            Err(AccuracyRow {
                name: "Photon",
                metric: "normalized RMS",
                value: rms,
                acceptable: rms < bound,
            })
        }
        AccuracyCell::Bandit => {
            let (base, pbs) = base_pbs_pair(BenchmarkId::Bandit, w, 0);
            let err = relative_error(base.output(0)[0] as f64, pbs.output(0)[0] as f64);
            Err(AccuracyRow {
                name: "Bandit",
                metric: "reward relative error",
                value: err,
                acceptable: err < 0.02,
            })
        }
    });

    let mut rows = Vec::new();
    let (mut ok_base, mut ok_pbs) = (0u64, 0u64);
    for outcome in outcomes {
        match outcome {
            Err(row) => rows.push(row),
            Ok((b, p)) => {
                ok_base += b;
                ok_pbs += p;
            }
        }
    }
    // Genetic: success-rate confidence intervals over the trials,
    // re-inserted at its paper position (after the relative-error rows).
    let a = SuccessRate::from_counts(ok_base, trials);
    let b = SuccessRate::from_counts(ok_pbs, trials);
    rows.insert(
        REL_ERR_IDS.len(),
        AccuracyRow {
            name: "Genetic",
            metric: "success-rate CI overlap",
            value: (a.rate - b.rate).abs(),
            acceptable: a.overlaps(&b),
        },
    );
    rows
}

// ---------------------------------------------------------------------------
// Hardware cost (§V-C2)
// ---------------------------------------------------------------------------

/// One hardware-cost row.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Configuration description.
    pub config: String,
    /// Total bytes of PBS state.
    pub bytes: usize,
}

/// Section V-C2: the hardware-cost table, including the paper's
/// 193-byte design point.
pub fn hardware_cost() -> Vec<CostRow> {
    let mut rows = Vec::new();
    for (desc, cfg) in [
        (
            "paper default (4 br × 2 val × 4 in-flight + context)",
            PbsConfig::default(),
        ),
        (
            "1 branch, no context",
            PbsConfig {
                num_branches: 1,
                context_tracking: false,
                ..PbsConfig::default()
            },
        ),
        (
            "8 branches",
            PbsConfig {
                num_branches: 8,
                ..PbsConfig::default()
            },
        ),
        (
            "Category-1 only (1 value)",
            PbsConfig {
                values_per_branch: 1,
                ..PbsConfig::default()
            },
        ),
        (
            "8 in flight",
            PbsConfig {
                in_flight: 8,
                ..PbsConfig::default()
            },
        ),
    ] {
        rows.push(CostRow {
            config: desc.to_string(),
            bytes: probranch_core::cost::total_bytes(&cfg),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_holds_at_smoke_scale() {
        let rows = fig1(ExperimentScale::Smoke, Jobs::default());
        assert_eq!(rows.len(), 8);
        // Averages: the misprediction share must exceed the execution
        // share (the paper's headline observation).
        let avg_share: f64 = rows.iter().map(|r| r.prob_branch_share).sum::<f64>() / 8.0;
        let avg_mis: f64 = rows.iter().map(|r| r.tage_mispredict_share).sum::<f64>() / 8.0;
        assert!(
            avg_mis > avg_share,
            "prob branches should cause a disproportionate misprediction share: {avg_share:.1}% exec vs {avg_mis:.1}% mispredicts"
        );
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1(Jobs::default());
        let by_name: std::collections::HashMap<&str, (bool, bool)> = rows
            .iter()
            .map(|r| (r.name, (r.predication, r.cfd)))
            .collect();
        assert_eq!(by_name["DOP"], (true, true));
        assert_eq!(by_name["Greeks"], (false, true));
        assert_eq!(by_name["Swaptions"], (false, false));
        assert_eq!(by_name["Genetic"], (false, true));
        assert_eq!(by_name["Photon"], (false, false));
        assert_eq!(by_name["MC-integ"], (true, true));
        assert_eq!(by_name["PI"], (true, true));
        assert_eq!(by_name["Bandit"], (false, false));
    }

    #[test]
    fn table2_counts() {
        let rows = table2(ExperimentScale::Smoke, Jobs::default());
        let expected = [2, 3, 3, 2, 2, 1, 1, 1];
        for (r, e) in rows.iter().zip(expected) {
            assert_eq!(r.prob_branches, e, "{}", r.name);
            assert!(r.dynamic_insts > 1000, "{}", r.name);
        }
    }

    #[test]
    fn fig6_pbs_reduces_mpki_everywhere() {
        for r in fig6(ExperimentScale::Smoke, Jobs::default()) {
            assert!(
                r.tournament_pbs <= r.tournament_base + 0.05,
                "{}: {r:?}",
                r.name
            );
            assert!(r.tage_pbs <= r.tage_base + 0.05, "{}: {r:?}", r.name);
        }
    }

    #[test]
    fn uniform_stream_pairs_exist_for_the_six() {
        for id in [
            BenchmarkId::Swaptions,
            BenchmarkId::Genetic,
            BenchmarkId::Photon,
            BenchmarkId::McInteg,
            BenchmarkId::Pi,
            BenchmarkId::Bandit,
        ] {
            let (o, p) = uniform_stream_pair(id, Scale::Smoke, 3).expect("eligible");
            assert!(o.len() >= 100, "{id:?}: {}", o.len());
            // Workloads whose control flow depends on the branch
            // outcomes (Photon's bounce count, Genetic's convergence)
            // may consume a different number of values under PBS; the
            // counts must still be in the same ballpark.
            let ratio = o.len() as f64 / p.len() as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{id:?}: {} vs {}",
                o.len(),
                p.len()
            );
            assert!(o.iter().all(|v| (0.0..1.0).contains(v)), "{id:?}");
        }
        assert!(uniform_stream_pair(BenchmarkId::Dop, Scale::Smoke, 3).is_none());
        assert!(uniform_stream_pair(BenchmarkId::Greeks, Scale::Smoke, 3).is_none());
    }

    #[test]
    fn pi_reconstruction_matches_pbs_lag_semantics() {
        let (o, p) = uniform_stream_pair(BenchmarkId::Pi, Scale::Smoke, 5).unwrap();
        // First B pairs identical, then the original replays.
        let b = PbsConfig::default().in_flight * 2;
        assert_eq!(&o[..b], &p[..b]);
        assert_eq!(&p[b..], &o[..o.len() - b]);
    }

    #[test]
    fn hardware_cost_headline() {
        let rows = hardware_cost();
        assert_eq!(rows[0].bytes, 193);
        assert_eq!(rows[1].bytes, 51);
    }
}
