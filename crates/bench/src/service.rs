//! Glue between the transport-only sweep service
//! ([`probranch_serve`]) and the experiment layer: renders one named
//! section of the figure run, and wraps that in the
//! `Fn(&SweepRequest) -> SweepOutcome` handler the server is generic
//! over.
//!
//! Byte-identity is by construction: the in-process `figures` run and
//! the served path both iterate [`probranch_serve::SECTIONS`] through
//! [`section_text`], so there is exactly one rendering code path for
//! CI to diff.

use std::time::Duration;

use probranch_harness::{Jobs, StrictViolation, SupervisedError};
use probranch_pipeline::cancel::{CancelScope, CancelToken};
use probranch_serve::{SweepOutcome, SweepRequest};

use crate::experiments::{self, Engine, ExperimentScale};
use crate::render;

/// Renders one named section of the figure run — the strings
/// `figures` prints, in [`probranch_serve::SECTIONS`] order. Returns
/// `None` for an unknown section name.
///
/// Panics raised by supervised sweeps (exhausted cells, strict
/// violations, cancellation) propagate to the caller, which owns
/// turning them into structured errors.
pub fn section_text(
    section: &str,
    scale: ExperimentScale,
    jobs: Jobs,
    engine: Engine,
    ctx: &experiments::Context,
) -> Option<String> {
    Some(match section {
        "table2" => render::table2(&experiments::table2(scale, jobs)),
        "table1" => render::table1(&experiments::table1(jobs)),
        "fig1" => render::fig1(&experiments::fig1_with_ctx(scale, jobs, engine, ctx)),
        "fig6" => render::fig6(&experiments::fig6_with_ctx(scale, jobs, engine, ctx)),
        "fig7" => render::ipc(
            &experiments::fig7_with_ctx(scale, jobs, engine, ctx),
            "FIG 7 — normalized IPC, 4-wide / 168-entry ROB",
        ),
        "fig8" => render::ipc(
            &experiments::fig8_with_ctx(scale, jobs, engine, ctx),
            "FIG 8 — normalized IPC, 8-wide / 256-entry ROB",
        ),
        "fig9" => render::fig9(&experiments::fig9_with_ctx(scale, jobs, engine, ctx)),
        "table3" => render::table3(&experiments::table3(scale, jobs)),
        "accuracy" => render::accuracy(&experiments::accuracy(scale, jobs)),
        "cost" => render::cost(&experiments::hardware_cost()),
        _ => return None,
    })
}

/// Builds the sweep handler `figures --serve` (and the in-process
/// tests) hand to [`probranch_serve::Server::run`]: parses the
/// request, scopes an optional per-request cancellation deadline over
/// the sweep, and maps supervised panics to structured
/// [`SweepOutcome`]s instead of crashing a connection thread.
pub fn sweep_handler(
    ctx: &experiments::Context,
    default_jobs: Jobs,
) -> impl Fn(&SweepRequest) -> SweepOutcome + Sync + '_ {
    move |req: &SweepRequest| {
        let Some(scale) = ExperimentScale::parse(&req.scale) else {
            return SweepOutcome::BadRequest(format!("unknown scale `{}`", req.scale));
        };
        let Some(engine) = Engine::parse(&req.engine) else {
            return SweepOutcome::BadRequest(format!("unknown engine `{}`", req.engine));
        };
        let jobs = match req.jobs {
            Some(0) | None => default_jobs,
            Some(n) => Jobs::new(n),
        };
        // The request deadline becomes the parent cancel token for
        // every supervised cell the sweep spawns: an expired request
        // stops consuming CPU at the next pipeline poll point.
        let token = match req.deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let _scope = CancelScope::enter(token);
        let section = req.section.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            section_text(&section, scale, jobs, engine, ctx)
        }));
        match outcome {
            Ok(Some(body)) => SweepOutcome::Ok(body),
            Ok(None) => SweepOutcome::BadRequest(format!("unknown section `{section}`")),
            Err(payload) => {
                let msg = if let Some(e) = payload.downcast_ref::<SupervisedError>() {
                    e.to_string()
                } else if let Some(v) = payload.downcast_ref::<StrictViolation>() {
                    v.to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    "sweep panicked with a non-string payload".to_string()
                };
                if msg.contains("cancelled") {
                    SweepOutcome::Cancelled(msg)
                } else {
                    SweepOutcome::Failed(msg)
                }
            }
        }
    }
}
