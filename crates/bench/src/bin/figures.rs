//! Regenerates every table and figure of the PBS paper in one run.
//!
//! ```text
//! cargo run -p probranch-bench --bin figures --release -- --scale bench --jobs 8
//! ```
//!
//! Scales: `smoke` (seconds), `bench` (default, ~2 minutes), `paper`
//! (figure-quality, ~10 minutes). The scale can also be set through the
//! `PROBRANCH_SCALE` environment variable; the flag wins when both are
//! given.
//!
//! `--jobs N` selects the worker count of the parallel experiment
//! engine (default: `PROBRANCH_JOBS`, else all available cores). The
//! printed tables are byte-identical for every worker count — the
//! default run performs **no wall-clock measurement at all**, so stdout
//! stays byte-diffable across machines and worker counts.
//!
//! All timing sweeps share **one trace pool** for the whole run (an
//! [`experiments::Context`]): Figures 1, 6, 7 and 8 revisit the same
//! emulation keys, so each key is emulated exactly once per
//! invocation. `--trace-dir DIR` extends the pool to disk — traces are
//! persisted per content-hashed key and later runs load instead of
//! emulating, with stale/corrupt files falling back to capture. The
//! printed tables are byte-identical with or without a (warm or cold)
//! trace directory.
//!
//! `--emit-bench-json PATH` switches to throughput-benchmark mode: runs
//! the `sim-throughput` sweep (fig6 grid; fused, reference, replay and
//! fused-convoy engines plus the shared-pool fig6+fig7 sweep), writes
//! the measured-MIPS report as JSON to `PATH`, and prints the summary
//! plus wall time to stderr. All timing lives behind this flag.

use probranch_bench::experiments::{self, Engine, ExperimentScale};
use probranch_bench::{service, throughput};
use probranch_faults as faults;
use probranch_harness::{Jobs, StrictViolation, SupervisedError, Supervision};

struct Options {
    scale: ExperimentScale,
    jobs: Option<Jobs>,
    engine: Engine,
    bench_json: Option<String>,
    trace_dir: Option<String>,
    trace_mem_budget: Option<usize>,
    fault_plan: Option<faults::FaultPlan>,
    strict_traces: bool,
    cell_retries: Option<u32>,
    cell_deadline_ms: Option<u64>,
    serve: Option<String>,
}

/// Parses a byte count with an optional `k`/`m`/`g` (KiB/MiB/GiB)
/// suffix, e.g. `64m`.
fn parse_bytes(v: &str) -> Option<usize> {
    let v = v.trim();
    let (digits, shift) = match v.as_bytes().last()? {
        b'k' | b'K' => (&v[..v.len() - 1], 10),
        b'm' | b'M' => (&v[..v.len() - 1], 20),
        b'g' | b'G' => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_shl(shift).filter(|_| n.leading_zeros() >= shift))
}

fn parse_args() -> Options {
    let mut scale: Option<ExperimentScale> = None;
    let mut jobs: Option<Jobs> = None;
    let mut engine: Option<Engine> = None;
    let mut bench_json: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut trace_mem_budget: Option<usize> = None;
    let mut fault_plan: Option<faults::FaultPlan> = None;
    let mut strict_traces = false;
    let mut cell_retries: Option<u32> = None;
    let mut cell_deadline_ms: Option<u64> = None;
    let mut serve: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, value) = match arg.as_str() {
            "--help" | "-h" => usage(""),
            "--strict-traces" => {
                if strict_traces {
                    usage("--strict-traces given twice");
                }
                strict_traces = true;
                continue;
            }
            "--scale" | "--jobs" | "--engine" | "--emit-bench-json" | "--trace-dir"
            | "--trace-mem-budget" | "--fault-plan" | "--cell-retries" | "--cell-deadline-ms"
            | "--serve" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage(&format!("{arg} needs a value")));
                (arg.clone(), v)
            }
            _ if arg.starts_with("--scale=")
                || arg.starts_with("--jobs=")
                || arg.starts_with("--engine=")
                || arg.starts_with("--emit-bench-json=")
                || arg.starts_with("--trace-dir=")
                || arg.starts_with("--trace-mem-budget=")
                || arg.starts_with("--fault-plan=")
                || arg.starts_with("--cell-retries=")
                || arg.starts_with("--cell-deadline-ms=")
                || arg.starts_with("--serve=") =>
            {
                let (f, v) = arg.split_once('=').expect("checked above");
                (f.to_string(), v.to_string())
            }
            _ => usage(&format!("unknown argument `{arg}`")),
        };
        match flag.as_str() {
            "--scale" => {
                if scale.is_some() {
                    usage("--scale given twice");
                }
                scale = Some(
                    ExperimentScale::parse(&value)
                        .unwrap_or_else(|| usage(&format!("unknown scale `{value}`"))),
                );
            }
            "--jobs" => {
                if jobs.is_some() {
                    usage("--jobs given twice");
                }
                let n: usize = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid job count `{value}`")));
                // 0 means "auto", matching PROBRANCH_JOBS.
                jobs = Some(if n == 0 {
                    Jobs::available()
                } else {
                    Jobs::new(n)
                });
            }
            "--engine" => {
                if engine.is_some() {
                    usage("--engine given twice");
                }
                engine = Some(
                    Engine::parse(&value)
                        .unwrap_or_else(|| usage(&format!("unknown engine `{value}`"))),
                );
            }
            "--emit-bench-json" => {
                if bench_json.is_some() {
                    usage("--emit-bench-json given twice");
                }
                bench_json = Some(value);
            }
            "--trace-dir" => {
                if trace_dir.is_some() {
                    usage("--trace-dir given twice");
                }
                trace_dir = Some(value);
            }
            "--trace-mem-budget" => {
                if trace_mem_budget.is_some() {
                    usage("--trace-mem-budget given twice");
                }
                trace_mem_budget = Some(
                    parse_bytes(&value)
                        .unwrap_or_else(|| usage(&format!("invalid byte count `{value}`"))),
                );
            }
            "--fault-plan" => {
                if fault_plan.is_some() {
                    usage("--fault-plan given twice");
                }
                fault_plan = Some(
                    faults::FaultPlan::parse(&value)
                        .unwrap_or_else(|e| usage(&format!("invalid fault plan `{value}`: {e}"))),
                );
            }
            "--cell-retries" => {
                if cell_retries.is_some() {
                    usage("--cell-retries given twice");
                }
                cell_retries = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("invalid retry count `{value}`"))),
                );
            }
            "--cell-deadline-ms" => {
                if cell_deadline_ms.is_some() {
                    usage("--cell-deadline-ms given twice");
                }
                cell_deadline_ms = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("invalid deadline `{value}`"))),
                );
            }
            "--serve" => {
                if serve.is_some() {
                    usage("--serve given twice");
                }
                serve = Some(value);
            }
            _ => unreachable!(),
        }
    }
    // The PROBRANCH_FAULTS environment variable seeds a plan when the
    // flag is absent (the torture CI job's hook).
    if fault_plan.is_none() {
        if let Ok(spec) = std::env::var("PROBRANCH_FAULTS") {
            if !spec.is_empty() {
                fault_plan = Some(faults::FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    usage(&format!("invalid PROBRANCH_FAULTS plan `{spec}`: {e}"))
                }));
            }
        }
    }
    Options {
        scale: scale.unwrap_or_else(ExperimentScale::from_env),
        jobs,
        engine: engine.unwrap_or_default(),
        bench_json,
        trace_dir,
        trace_mem_budget,
        fault_plan,
        strict_traces,
        cell_retries,
        cell_deadline_ms,
        serve,
    }
}

fn usage(error: &str) -> ! {
    let text = "usage: figures [--scale smoke|bench|paper] [--jobs N]\n               [--engine replay|convoy|fused|reference]\n               [--trace-dir DIR] [--trace-mem-budget BYTES]\n               [--fault-plan SPEC] [--strict-traces]\n               [--cell-retries N] [--cell-deadline-ms MS]\n               [--emit-bench-json PATH] [--serve ADDR]\n       --fault-plan SPEC: arm seeded failpoints for the run, e.g.\n        `seed=7,persist.write=0.5x3,cell.panic=0.2` (sites:\n        persist.write/.enospc/.short/.fsync/.rename, mmap.load,\n        capture, capture.block, cell.panic, cell.delay, cancel.spurious,\n        serve.accept/.read/.write/.drop; probability in [0,1],\n        optional xCOUNT budget). Decisions are pure functions of\n        (seed, site, salt), so a plan misbehaves identically across\n        reruns and worker counts. PROBRANCH_FAULTS holds a plan when\n        the flag is absent. The run either survives with\n        byte-identical stdout or exits 3 with a structured error\n        naming the exhausted cell.\n       --strict-traces: turn every degradation path (stale rejection,\n        quarantine, persistence shutdown, engine fallback) into a hard\n        structured error instead of self-healing.\n       --cell-retries N: extra attempts per supervised cell\n        (default 3: requested engine twice, then fused, then\n        reference).\n       --cell-deadline-ms MS: per-cell deadline; the simulation\n        engines poll a cancel token per chunk, so an overrunning cell\n        is cooperatively cancelled at its next poll point (a\n        structured DeadlineExceeded failure feeding the retry\n        cascade). Bodies that never poll still complete and are only\n        flagged on stderr.\n       (or set PROBRANCH_SCALE / PROBRANCH_JOBS; default: bench scale,\n        all cores; --jobs 0 also means all cores)\n       --engine: simulation engine for the timing sweeps (default:\n        replay — emulate each workload once per (workload, seed, PBS)\n        key into a run-wide trace pool shared by every sweep, and\n        re-time the pooled trace for every predictor/core/filter cell;\n        convoy regroups each sweep into streamed fused per-key convoys,\n        fused/reference re-simulate every cell — both for differential\n        debugging). All four print byte-identical tables.\n       --trace-dir DIR: persist captured traces under DIR, keyed by a\n        content hash of (workload, seed derivation, PBS/emulator\n        config, ISA version); later runs memory-map the files instead\n        of emulating (zero-copy record streams). Stale or corrupt files\n        fall back to capture; orphaned writer temp files and old\n        quarantined files are swept on open. stdout stays\n        byte-identical with or without the flag.\n       --trace-mem-budget BYTES: bound the in-memory trace pool\n        (optional k/m/g suffix, e.g. 64m). Over budget, the coldest\n        pooled traces are demoted to their mmap-backed persisted form\n        (with --trace-dir) or evicted and re-captured on next use.\n        stdout stays byte-identical for any budget.\n       --emit-bench-json PATH: run the sim-throughput sweep instead of\n        the figures, writing measured MIPS per cell (fused, reference,\n        replay and fused-convoy engines, per-key trace-capture\n        overhead, plus the shared-pool fig6+fig7 sweep aggregate) to\n        PATH (serial unless --jobs is given; all wall-clock timing\n        lives here)\n       --serve ADDR: run as the resilient sweep service instead of a\n        one-shot sweep — bind ADDR (e.g. 127.0.0.1:7633), answer\n        probranch-client requests over one shared trace pool with\n        admission control, request coalescing and per-request\n        cancellation deadlines; SIGINT/SIGTERM or a `shutdown` request\n        drains in-flight sweeps, flushes pending demotions, prints the\n        service counters and exits 0. Each section's bytes match the\n        in-process run exactly.";
    if error.is_empty() {
        println!("{text}");
        std::process::exit(0);
    }
    eprintln!("error: {error}\n\n{text}");
    std::process::exit(2);
}

/// Throughput-benchmark mode: the only code path in this binary allowed
/// to read the wall clock.
fn run_bench_json(path: &str, scale: ExperimentScale, jobs: Option<Jobs>) {
    // Serial by default: per-cell wall times on an otherwise idle
    // machine, not contention artifacts.
    let jobs = jobs.unwrap_or_else(Jobs::serial);
    // Benchmark cells measure capture wall time; keep single-worker
    // runs free of helper threads so the numbers stay contention-free.
    probranch_pipeline::set_capture_overlap(jobs.get() > 1);
    eprintln!("sim-throughput: {} scale, {jobs} jobs", scale.name());
    let t0 = std::time::Instant::now();
    let report = throughput::measure(scale, jobs);
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprint!("{}", report.summary());
    eprintln!(
        "wrote {path}; total wall time {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

/// The full figure run, in paper order — the same
/// [`service::section_text`] path the sweep service serves, so the two
/// are byte-identical by construction. Panics raised by supervised
/// sweeps carry typed payloads `main` renders as structured errors.
fn run_figures(scale: ExperimentScale, jobs: Jobs, engine: Engine, ctx: &experiments::Context) {
    for section in probranch_serve::SECTIONS {
        let text = service::section_text(section, scale, jobs, engine, ctx)
            .unwrap_or_else(|| panic!("SECTIONS names unknown section `{section}`"));
        println!("{text}");
    }
}

/// Service mode (`--serve ADDR`): every request shares `ctx`'s trace
/// pool; drain flushes pending demotions before exit.
fn run_serve(addr: &str, jobs: Jobs, ctx: &experiments::Context) {
    let server = probranch_serve::Server::bind(addr, probranch_serve::ServerConfig::default())
        .unwrap_or_else(|e| {
            eprintln!("error: binding {addr}: {e}");
            std::process::exit(2);
        });
    let bound = server.local_addr().expect("bound listener has an address");
    // A persistence fault trips the breaker; in service mode it
    // half-opens after a cooldown instead of staying dark for the
    // (indefinite) process lifetime.
    ctx.traces()
        .set_persist_cooldown(std::time::Duration::from_secs(30));
    probranch_serve::install_signal_shutdown();
    eprintln!("serving sweeps on {bound}; SIGTERM or `probranch-client {bound} --shutdown` drains");
    let shutdown = server.shutdown_handle();
    let watcher = std::thread::spawn(move || {
        while !shutdown.load(std::sync::atomic::Ordering::Acquire) {
            if probranch_serve::signal_shutdown_flag() {
                shutdown.store(true, std::sync::atomic::Ordering::Release);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    });
    let stats = server
        .run(service::sweep_handler(ctx, jobs))
        .unwrap_or_else(|e| {
            eprintln!("error: serve loop: {e}");
            std::process::exit(2);
        });
    let _ = watcher.join();
    let flushed = ctx.traces().flush_to_disk();
    eprintln!(
        "service: {}; drained, {flushed} pending traces flushed",
        stats.summary()
    );
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.bench_json {
        run_bench_json(path, opts.scale, opts.jobs);
        return;
    }
    let scale = opts.scale;
    let jobs = opts.jobs.unwrap_or_else(Jobs::from_env);
    // Single-worker runs stay single-threaded: the capture/drain
    // overlap helper thread only spawns when the run is already
    // parallel (PROBRANCH_CAPTURE_OVERLAP overrides either way).
    probranch_pipeline::set_capture_overlap(jobs.get() > 1);
    let engine = opts.engine;
    let mut supervision = Supervision::default_robust();
    if let Some(r) = opts.cell_retries {
        supervision = supervision.with_retries(r);
    }
    if let Some(ms) = opts.cell_deadline_ms {
        supervision = supervision.with_deadline(std::time::Duration::from_millis(ms));
    }
    let faulted = opts.fault_plan.is_some();
    if let Some(plan) = opts.fault_plan {
        eprintln!("fault plan armed: {}", plan.spec());
        faults::install(plan);
    }
    // One trace pool for the whole run: every timing sweep below shares
    // it, so an emulation key is captured (or disk-loaded) exactly once
    // per invocation no matter how many figures revisit it.
    let ctx = experiments::Context::with_robustness(
        opts.trace_dir.as_ref().map(Into::into),
        opts.trace_mem_budget,
        opts.strict_traces,
        supervision,
    );
    if let Some(addr) = &opts.serve {
        run_serve(addr, jobs, &ctx);
        if faulted {
            eprintln!("fault sites hit: {}", faults::hits_summary());
        }
        return;
    }
    // The job count and engine go to stderr: stdout must stay
    // byte-identical across worker counts, engines *and* warm/cold
    // trace directories (the determinism guarantees CI diffs on).
    println!("probranch — regenerating all tables & figures at {scale:?} scale\n");
    eprintln!("running with {jobs} jobs, {} engine", engine.name());

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_figures(scale, jobs, engine, &ctx);
    }));
    eprintln!(
        "run pool: {} keys, {} captures, {} disk loads, {} grid hits, {} MiB",
        ctx.keys(),
        ctx.captures(),
        ctx.disk_loads(),
        ctx.grid_hits(),
        ctx.bytes() / (1 << 20)
    );
    eprintln!(
        "trace store: {} hits, {} demotions, {} evictions, peak {} MiB",
        ctx.store_hits(),
        ctx.demotions(),
        ctx.evictions(),
        ctx.peak_bytes() / (1 << 20)
    );
    eprintln!(
        "robustness: {} retried, {} degraded, {} over deadline; {} stale rejected, {} quarantined, {} io retries, {} write failures, persistence {}",
        ctx.retried_cells(),
        ctx.degraded_cells(),
        ctx.over_deadline_cells(),
        ctx.traces().stale_rejected(),
        ctx.traces().quarantined(),
        ctx.traces().io_retries(),
        ctx.traces().write_failures(),
        if ctx.traces().persistence_disabled() {
            "disabled"
        } else {
            "on"
        }
    );
    if faulted {
        eprintln!("fault sites hit: {}", faults::hits_summary());
    }
    if let Err(payload) = outcome {
        // A supervised cell that exhausted every attempt (or a strict
        // violation) surfaces as a structured error attributing the
        // exhausted site, not a crash.
        let msg = if let Some(e) = payload.downcast_ref::<SupervisedError>() {
            e.to_string()
        } else if let Some(v) = payload.downcast_ref::<StrictViolation>() {
            v.to_string()
        } else {
            // A genuine bug: re-raise so the default abort path (and
            // its backtrace machinery) reports it unchanged.
            std::panic::resume_unwind(payload);
        };
        eprintln!("error: {msg}");
        std::process::exit(3);
    }
}
