//! Regenerates every table and figure of the PBS paper in one run.
//!
//! ```text
//! cargo run -p probranch-bench --bin figures --release -- --scale bench
//! ```
//!
//! Scales: `smoke` (seconds), `bench` (default, ~2 minutes), `paper`
//! (figure-quality, ~10 minutes). The scale can also be set through the
//! `PROBRANCH_SCALE` environment variable; the flag wins when both are
//! given.

use probranch_bench::experiments::{self, ExperimentScale};
use probranch_bench::render;

fn scale_from_args() -> ExperimentScale {
    let mut args = std::env::args().skip(1);
    let Some(arg) = args.next() else {
        return ExperimentScale::from_env();
    };
    let value = match arg.as_str() {
        "--scale" => args
            .next()
            .unwrap_or_else(|| usage("--scale needs a value")),
        _ if arg.starts_with("--scale=") => arg["--scale=".len()..].to_string(),
        "--help" | "-h" => usage(""),
        _ => usage(&format!("unknown argument `{arg}`")),
    };
    if let Some(extra) = args.next() {
        usage(&format!("unexpected argument `{extra}`"));
    }
    ExperimentScale::parse(&value).unwrap_or_else(|| usage(&format!("unknown scale `{value}`")))
}

fn usage(error: &str) -> ! {
    let text = "usage: figures [--scale smoke|bench|paper]\n       (or set PROBRANCH_SCALE; default: bench)";
    if error.is_empty() {
        println!("{text}");
        std::process::exit(0);
    }
    eprintln!("error: {error}\n\n{text}");
    std::process::exit(2);
}

fn main() {
    let scale = scale_from_args();
    let t0 = std::time::Instant::now();
    println!("probranch — regenerating all tables & figures at {scale:?} scale\n");

    println!("{}", render::table2(&experiments::table2(scale)));
    println!("{}", render::table1(&experiments::table1()));
    println!("{}", render::fig1(&experiments::fig1(scale)));
    println!("{}", render::fig6(&experiments::fig6(scale)));
    println!(
        "{}",
        render::ipc(
            &experiments::fig7(scale),
            "FIG 7 — normalized IPC, 4-wide / 168-entry ROB"
        )
    );
    println!(
        "{}",
        render::ipc(
            &experiments::fig8(scale),
            "FIG 8 — normalized IPC, 8-wide / 256-entry ROB"
        )
    );
    println!("{}", render::fig9(&experiments::fig9(scale)));
    println!("{}", render::table3(&experiments::table3(scale)));
    println!("{}", render::accuracy(&experiments::accuracy(scale)));
    println!("{}", render::cost(&experiments::hardware_cost()));

    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
