//! Regenerates every table and figure of the PBS paper in one run.
//!
//! ```text
//! PROBRANCH_SCALE=bench cargo run -p probranch-bench --bin figures --release
//! ```
//!
//! Scales: `smoke` (seconds), `bench` (default, ~2 minutes), `paper`
//! (figure-quality, ~10 minutes).

use probranch_bench::experiments::{self, ExperimentScale};
use probranch_bench::render;

fn main() {
    let scale = ExperimentScale::from_env();
    let t0 = std::time::Instant::now();
    println!("probranch — regenerating all tables & figures at {scale:?} scale\n");

    println!("{}", render::table2(&experiments::table2(scale)));
    println!("{}", render::table1(&experiments::table1()));
    println!("{}", render::fig1(&experiments::fig1(scale)));
    println!("{}", render::fig6(&experiments::fig6(scale)));
    println!("{}", render::ipc(&experiments::fig7(scale), "FIG 7 — normalized IPC, 4-wide / 168-entry ROB"));
    println!("{}", render::ipc(&experiments::fig8(scale), "FIG 8 — normalized IPC, 8-wide / 256-entry ROB"));
    println!("{}", render::fig9(&experiments::fig9(scale)));
    println!("{}", render::table3(&experiments::table3(scale)));
    println!("{}", render::accuracy(&experiments::accuracy(scale)));
    println!("{}", render::cost(&experiments::hardware_cost()));

    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
