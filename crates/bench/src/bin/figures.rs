//! Regenerates every table and figure of the PBS paper in one run.
//!
//! ```text
//! cargo run -p probranch-bench --bin figures --release -- --scale bench --jobs 8
//! ```
//!
//! Scales: `smoke` (seconds), `bench` (default, ~2 minutes), `paper`
//! (figure-quality, ~10 minutes). The scale can also be set through the
//! `PROBRANCH_SCALE` environment variable; the flag wins when both are
//! given.
//!
//! `--jobs N` selects the worker count of the parallel experiment
//! engine (default: `PROBRANCH_JOBS`, else all available cores). The
//! printed tables are byte-identical for every worker count — only the
//! wall time changes, which is why the timing line goes to stderr.

use probranch_bench::experiments::{self, ExperimentScale};
use probranch_bench::render;
use probranch_harness::Jobs;

struct Options {
    scale: ExperimentScale,
    jobs: Jobs,
}

fn parse_args() -> Options {
    let mut scale: Option<ExperimentScale> = None;
    let mut jobs: Option<Jobs> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, value) = match arg.as_str() {
            "--help" | "-h" => usage(""),
            "--scale" | "--jobs" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage(&format!("{arg} needs a value")));
                (arg.clone(), v)
            }
            _ if arg.starts_with("--scale=") || arg.starts_with("--jobs=") => {
                let (f, v) = arg.split_once('=').expect("checked above");
                (f.to_string(), v.to_string())
            }
            _ => usage(&format!("unknown argument `{arg}`")),
        };
        match flag.as_str() {
            "--scale" => {
                if scale.is_some() {
                    usage("--scale given twice");
                }
                scale = Some(
                    ExperimentScale::parse(&value)
                        .unwrap_or_else(|| usage(&format!("unknown scale `{value}`"))),
                );
            }
            "--jobs" => {
                if jobs.is_some() {
                    usage("--jobs given twice");
                }
                let n: usize = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid job count `{value}`")));
                // 0 means "auto", matching PROBRANCH_JOBS.
                jobs = Some(if n == 0 {
                    Jobs::available()
                } else {
                    Jobs::new(n)
                });
            }
            _ => unreachable!(),
        }
    }
    Options {
        scale: scale.unwrap_or_else(ExperimentScale::from_env),
        jobs: jobs.unwrap_or_else(Jobs::from_env),
    }
}

fn usage(error: &str) -> ! {
    let text = "usage: figures [--scale smoke|bench|paper] [--jobs N]\n       (or set PROBRANCH_SCALE / PROBRANCH_JOBS; default: bench scale,\n        all cores; --jobs 0 also means all cores)";
    if error.is_empty() {
        println!("{text}");
        std::process::exit(0);
    }
    eprintln!("error: {error}\n\n{text}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let (scale, jobs) = (opts.scale, opts.jobs);
    let t0 = std::time::Instant::now();
    // The job count goes to stderr: stdout must stay byte-identical
    // across worker counts (the determinism guarantee CI diffs on).
    println!("probranch — regenerating all tables & figures at {scale:?} scale\n");
    eprintln!("running with {jobs} jobs");

    println!("{}", render::table2(&experiments::table2(scale, jobs)));
    println!("{}", render::table1(&experiments::table1(jobs)));
    println!("{}", render::fig1(&experiments::fig1(scale, jobs)));
    println!("{}", render::fig6(&experiments::fig6(scale, jobs)));
    println!(
        "{}",
        render::ipc(
            &experiments::fig7(scale, jobs),
            "FIG 7 — normalized IPC, 4-wide / 168-entry ROB"
        )
    );
    println!(
        "{}",
        render::ipc(
            &experiments::fig8(scale, jobs),
            "FIG 8 — normalized IPC, 8-wide / 256-entry ROB"
        )
    );
    println!("{}", render::fig9(&experiments::fig9(scale, jobs)));
    println!("{}", render::table3(&experiments::table3(scale, jobs)));
    println!("{}", render::accuracy(&experiments::accuracy(scale, jobs)));
    println!("{}", render::cost(&experiments::hardware_cost()));

    // Stderr, so stdout stays byte-identical across worker counts.
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
