//! CI gate for the `sim-throughput` benchmark.
//!
//! ```text
//! check_throughput BASELINE.json FRESH.json [--tolerance 0.30]
//! ```
//!
//! Compares the fused-engine MIPS of every cell in `FRESH` against the
//! committed `BASELINE` and exits nonzero if any cell regressed by more
//! than the tolerance (default 30%, absorbing runner-to-runner noise).
//! Skips — exit 0 with a notice — when the baseline file is missing, the
//! schemas differ, or the two reports were measured at different scales.
//!
//! Both files use the line-oriented layout of
//! `probranch_bench::throughput::ThroughputReport::to_json` (one cell
//! object per line), which this checker parses with plain string
//! scanning so it needs no JSON dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts the raw text of `"key":<value>` from a single line, value
/// ending at `,` or `}`.
fn raw_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// `"key": "value"` on a whole-report line (schema/scale headers).
fn header_field(text: &str, key: &str) -> Option<String> {
    text.lines().find_map(|l| {
        let l = l.trim();
        l.strip_prefix(&format!("\"{key}\": \""))
            .and_then(|r| r.strip_suffix("\","))
            .map(str::to_string)
    })
}

/// Parses `(header scale, cell key → fused MIPS)` from a report.
fn parse(text: &str) -> (Option<String>, BTreeMap<String, f64>) {
    let mut cells = BTreeMap::new();
    for line in text.lines().filter(|l| l.contains("\"workload\"")) {
        let (Some(w), Some(p), Some(pbs), Some(mips)) = (
            raw_field(line, "workload"),
            raw_field(line, "predictor"),
            raw_field(line, "pbs"),
            raw_field(line, "fused_mips"),
        ) else {
            continue;
        };
        if let Ok(mips) = mips.parse::<f64>() {
            cells.insert(format!("{w}|{p}|{pbs}"), mips);
        }
    }
    (header_field(text, "scale"), cells)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(f)) => (b.clone(), f.clone()),
        _ => {
            eprintln!("usage: check_throughput BASELINE.json FRESH.json [--tolerance 0.30]");
            return ExitCode::from(2);
        }
    };
    let tolerance: f64 = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(t) => t,
            None => {
                eprintln!("--tolerance needs a fractional value, e.g. 0.30");
                return ExitCode::from(2);
            }
        },
        None => 0.30,
    };

    let Ok(baseline_text) = std::fs::read_to_string(&baseline_path) else {
        println!("check_throughput: no baseline at {baseline_path}; skipping regression check");
        return ExitCode::SUCCESS;
    };
    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_throughput: cannot read fresh report {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (name, text) in [("baseline", &baseline_text), ("fresh", &fresh_text)] {
        match header_field(text, "schema").as_deref() {
            Some("probranch-throughput/1") => {}
            other => {
                println!(
                    "check_throughput: {name} schema {other:?} is not probranch-throughput/1; skipping"
                );
                return ExitCode::SUCCESS;
            }
        }
    }

    let (base_scale, baseline) = parse(&baseline_text);
    let (fresh_scale, fresh) = parse(&fresh_text);
    if base_scale != fresh_scale {
        println!("check_throughput: scale mismatch ({base_scale:?} vs {fresh_scale:?}); skipping");
        return ExitCode::SUCCESS;
    }
    if baseline.is_empty() {
        println!("check_throughput: baseline has no cells; skipping");
        return ExitCode::SUCCESS;
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (key, base_mips) in &baseline {
        let Some(fresh_mips) = fresh.get(key) else {
            eprintln!("REGRESSION {key}: cell missing from fresh report");
            failures += 1;
            continue;
        };
        compared += 1;
        let floor = base_mips * (1.0 - tolerance);
        if *fresh_mips < floor {
            eprintln!(
                "REGRESSION {key}: {fresh_mips:.2} MIPS < {floor:.2} (baseline {base_mips:.2}, tolerance {:.0}%)",
                tolerance * 100.0
            );
            failures += 1;
        }
    }
    println!(
        "check_throughput: {compared} cells compared, {failures} regressions (tolerance {:.0}%)",
        tolerance * 100.0
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
