//! CI gate for the `sim-throughput` benchmark.
//!
//! ```text
//! check_throughput BASELINE.json FRESH.json [--tolerance 0.30]
//! ```
//!
//! Compares the fused-engine MIPS of every cell in `FRESH` against the
//! committed `BASELINE` — and, when both reports carry them, the
//! replay-engine (`probranch-throughput/2`+), fused-convoy
//! (`probranch-throughput/3`+) and batched-drain
//! (`probranch-throughput/4`+) MIPS too — exiting nonzero if any
//! compared number regressed by more than the tolerance (default 30%,
//! absorbing runner-to-runner noise). Older baselines are still
//! accepted: a v1 (no replay fields), v2 (no convoy fields) or v3 (no
//! batched fields) report gates the fields it carries and the rest is
//! skipped per cell, never failed. (Across v2→v3 the replay semantics
//! changed from a convoy consumer share to a materialized-trace
//! replay; both measure the same drain loop, so the cross-schema
//! comparison stays meaningful within the gate's tolerance. v5 adds
//! only store accounting — hits/demotions/evictions/peak bytes in the
//! sweep section — and v6 only the self-healing counters
//! (stale_rejected/quarantined), so v4 through v7 cells compare
//! directly. v8 additionally gates per-key trace-capture MIPS: when
//! both reports carry `capture_mips` lines, each key's capture
//! throughput is compared under the same tolerance, so a capture-tier
//! regression — block-compiled keys silently degrading to the
//! interpreter — fails CI even though the figures themselves stay
//! byte-identical.) Skips
//! entirely — exit 0 with a notice — when the baseline file is
//! missing, a schema is unknown, or the two reports were measured at
//! different scales.
//!
//! Both files use the line-oriented layout of
//! `probranch_bench::throughput::ThroughputReport::to_json` (one cell
//! object per line), which this checker parses with plain string
//! scanning so it needs no JSON dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

const KNOWN_SCHEMAS: [&str; 8] = [
    "probranch-throughput/1",
    "probranch-throughput/2",
    "probranch-throughput/3",
    "probranch-throughput/4",
    "probranch-throughput/5",
    "probranch-throughput/6",
    "probranch-throughput/7",
    "probranch-throughput/8",
];

/// Extracts the raw text of `"key":<value>` from a single line, value
/// ending at `,` or `}`.
fn raw_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// `"key": "value"` on a whole-report line (schema/scale headers).
fn header_field(text: &str, key: &str) -> Option<String> {
    text.lines().find_map(|l| {
        let l = l.trim();
        l.strip_prefix(&format!("\"{key}\": \""))
            .and_then(|r| r.strip_suffix("\","))
            .map(str::to_string)
    })
}

/// Per-cell measurements: fused MIPS always, replay/convoy/batched
/// MIPS when the report's schema carries them.
struct CellMips {
    fused: f64,
    replay: Option<f64>,
    convoy: Option<f64>,
    batched: Option<f64>,
}

/// One emulation key's capture throughput, with the tier tag (v8+)
/// kept for the regression message.
struct CaptureMips {
    mips: f64,
    tier: Option<String>,
}

/// Parses `(header scale, cell key → MIPS)` from a report. Capture-
/// overhead lines (no `predictor` field) land in the second map,
/// keyed `workload|pbs`, when they carry a `capture_mips` field.
#[allow(clippy::type_complexity)]
fn parse(
    text: &str,
) -> (
    Option<String>,
    BTreeMap<String, CellMips>,
    BTreeMap<String, CaptureMips>,
) {
    let mut cells = BTreeMap::new();
    let mut captures = BTreeMap::new();
    for line in text.lines().filter(|l| l.contains("\"workload\"")) {
        let (Some(w), Some(p), Some(pbs), Some(mips)) = (
            raw_field(line, "workload"),
            raw_field(line, "predictor"),
            raw_field(line, "pbs"),
            raw_field(line, "fused_mips"),
        ) else {
            if let (Some(w), Some(pbs), Some(mips)) = (
                raw_field(line, "workload"),
                raw_field(line, "pbs"),
                raw_field(line, "capture_mips"),
            ) {
                if let Ok(mips) = mips.parse::<f64>() {
                    captures.insert(
                        format!("{w}|{pbs}"),
                        CaptureMips {
                            mips,
                            tier: raw_field(line, "capture_tier"),
                        },
                    );
                }
            }
            continue;
        };
        if let Ok(fused) = mips.parse::<f64>() {
            let replay = raw_field(line, "replay_mips").and_then(|v| v.parse::<f64>().ok());
            let convoy = raw_field(line, "convoy_mips").and_then(|v| v.parse::<f64>().ok());
            let batched = raw_field(line, "batched_mips").and_then(|v| v.parse::<f64>().ok());
            cells.insert(
                format!("{w}|{p}|{pbs}"),
                CellMips {
                    fused,
                    replay,
                    convoy,
                    batched,
                },
            );
        }
    }
    (header_field(text, "scale"), cells, captures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(f)) => (b.clone(), f.clone()),
        _ => {
            eprintln!("usage: check_throughput BASELINE.json FRESH.json [--tolerance 0.30]");
            return ExitCode::from(2);
        }
    };
    let tolerance: f64 = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(t) => t,
            None => {
                eprintln!("--tolerance needs a fractional value, e.g. 0.30");
                return ExitCode::from(2);
            }
        },
        None => 0.30,
    };

    let Ok(baseline_text) = std::fs::read_to_string(&baseline_path) else {
        println!("check_throughput: no baseline at {baseline_path}; skipping regression check");
        return ExitCode::SUCCESS;
    };
    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_throughput: cannot read fresh report {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (name, text) in [("baseline", &baseline_text), ("fresh", &fresh_text)] {
        match header_field(text, "schema").as_deref() {
            Some(s) if KNOWN_SCHEMAS.contains(&s) => {}
            other => {
                println!(
                    "check_throughput: {name} schema {other:?} is not one of {KNOWN_SCHEMAS:?}; skipping"
                );
                return ExitCode::SUCCESS;
            }
        }
    }

    let (base_scale, baseline, base_captures) = parse(&baseline_text);
    let (fresh_scale, fresh, fresh_captures) = parse(&fresh_text);
    if base_scale != fresh_scale {
        println!("check_throughput: scale mismatch ({base_scale:?} vs {fresh_scale:?}); skipping");
        return ExitCode::SUCCESS;
    }
    if baseline.is_empty() {
        println!("check_throughput: baseline has no cells; skipping");
        return ExitCode::SUCCESS;
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    let mut replay_compared = 0usize;
    for (key, base) in &baseline {
        let Some(fresh_cell) = fresh.get(key) else {
            eprintln!("REGRESSION {key}: cell missing from fresh report");
            failures += 1;
            continue;
        };
        compared += 1;
        let floor = base.fused * (1.0 - tolerance);
        if fresh_cell.fused < floor {
            eprintln!(
                "REGRESSION {key} (fused): {:.2} MIPS < {floor:.2} (baseline {:.2}, tolerance {:.0}%)",
                fresh_cell.fused,
                base.fused,
                tolerance * 100.0
            );
            failures += 1;
        }
        // Replay/convoy/batched cells gate only when both reports carry
        // them — an older baseline simply has no such numbers to
        // regress against.
        for (what, base_v, fresh_v) in [
            ("replay", base.replay, fresh_cell.replay),
            ("convoy", base.convoy, fresh_cell.convoy),
            ("batched", base.batched, fresh_cell.batched),
        ] {
            let (Some(base_v), Some(fresh_v)) = (base_v, fresh_v) else {
                continue;
            };
            replay_compared += 1;
            let floor = base_v * (1.0 - tolerance);
            if fresh_v < floor {
                eprintln!(
                    "REGRESSION {key} ({what}): {fresh_v:.2} MIPS < {floor:.2} (baseline {base_v:.2}, tolerance {:.0}%)",
                    tolerance * 100.0
                );
                failures += 1;
            }
        }
    }
    // Per-key capture cells gate only when both reports carry them —
    // pre-v8 baselines have no capture numbers to regress against.
    let mut capture_compared = 0usize;
    for (key, base) in &base_captures {
        let Some(fresh_cap) = fresh_captures.get(key) else {
            continue;
        };
        capture_compared += 1;
        let floor = base.mips * (1.0 - tolerance);
        if fresh_cap.mips < floor {
            let tier = |t: &Option<String>| t.clone().unwrap_or_else(|| "?".into());
            eprintln!(
                "REGRESSION {key} (capture, tier {} vs baseline {}): {:.2} MIPS < {floor:.2} (baseline {:.2}, tolerance {:.0}%)",
                tier(&fresh_cap.tier),
                tier(&base.tier),
                fresh_cap.mips,
                base.mips,
                tolerance * 100.0
            );
            failures += 1;
        }
    }
    println!(
        "check_throughput: {compared} cells compared (+{replay_compared} replay/convoy/batched, +{capture_compared} capture comparisons), {failures} regressions (tolerance {:.0}%)",
        tolerance * 100.0
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
