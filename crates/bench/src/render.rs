//! Plain-text rendering of the experiment rows, in the layout of the
//! paper's tables and figures.

use crate::experiments::{
    AccuracyRow, CostRow, Fig1Row, Fig6Row, Fig9Row, IpcRow, Table1Row, Table2Row, Table3Row,
};
use probranch_stats::summary::Summary;

fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Renders Figure 1.
pub fn fig1(rows: &[Fig1Row]) -> String {
    let mut s = String::new();
    s.push_str("FIG 1 — probabilistic vs regular branches\n");
    s.push_str(&format!(
        "{:<12} {:>12} {:>18} {:>18}\n",
        "benchmark", "% dyn branch", "% tour mispredict", "% tage mispredict"
    ));
    s.push_str(&rule(64));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>12.1} {:>18.1} {:>18.1}\n",
            r.name, r.prob_branch_share, r.tournament_mispredict_share, r.tage_mispredict_share
        ));
    }
    let n = rows.len() as f64;
    s.push_str(&format!(
        "{:<12} {:>12.1} {:>18.1} {:>18.1}\n",
        "average",
        rows.iter().map(|r| r.prob_branch_share).sum::<f64>() / n,
        rows.iter()
            .map(|r| r.tournament_mispredict_share)
            .sum::<f64>()
            / n,
        rows.iter().map(|r| r.tage_mispredict_share).sum::<f64>() / n,
    ));
    s
}

/// Renders Table I.
pub fn table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("TABLE I — applicability of predication and CFD\n");
    s.push_str(&format!(
        "{:<12} {:>11} {:>6}   notes\n",
        "benchmark", "predication", "cfd"
    ));
    s.push_str(&rule(70));
    s.push('\n');
    for r in rows {
        let mark = |b: bool| if b { "yes" } else { "x" };
        let note = r
            .predication_reason
            .as_deref()
            .or(r.cfd_reason.as_deref())
            .unwrap_or("");
        s.push_str(&format!(
            "{:<12} {:>11} {:>6}   {}\n",
            r.name,
            mark(r.predication),
            mark(r.cfd),
            note
        ));
    }
    s
}

/// Renders Table II.
pub fn table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    s.push_str("TABLE II — benchmark characteristics\n");
    s.push_str(&format!(
        "{:<12} {:>16} {:>9} {:>16}\n",
        "benchmark", "prob/total branch", "category", "simulated insns"
    ));
    s.push_str(&rule(58));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>13}/{:<3} {:>8} {:>16}\n",
            r.name, r.prob_branches, r.total_branches, r.category, r.dynamic_insts
        ));
    }
    s
}

/// Renders Figure 6.
pub fn fig6(rows: &[Fig6Row]) -> String {
    let mut s = String::new();
    s.push_str("FIG 6 — MPKI reduction through PBS\n");
    s.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}\n",
        "benchmark", "tour-base", "tour-pbs", "red %", "tage-base", "tage-pbs", "red %"
    ));
    s.push_str(&rule(78));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>10.3} {:>10.3} {:>8.1} | {:>10.3} {:>10.3} {:>8.1}\n",
            r.name,
            r.tournament_base,
            r.tournament_pbs,
            r.tournament_reduction(),
            r.tage_base,
            r.tage_pbs,
            r.tage_reduction()
        ));
    }
    let n = rows.len() as f64;
    s.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>8.1} | {:>10} {:>10} {:>8.1}\n",
        "average",
        "",
        "",
        rows.iter().map(Fig6Row::tournament_reduction).sum::<f64>() / n,
        "",
        "",
        rows.iter().map(Fig6Row::tage_reduction).sum::<f64>() / n,
    ));
    s
}

/// Renders Figure 7 or 8.
pub fn ipc(rows: &[IpcRow], title: &str) -> String {
    let mut s = String::new();
    s.push_str(title);
    s.push('\n');
    s.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "benchmark", "tour", "tage", "tour+pbs", "tage+pbs"
    ));
    s.push_str(&rule(56));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            r.name, 1.0, r.tage, r.tournament_pbs, r.tage_pbs
        ));
    }
    let n = rows.len() as f64;
    s.push_str(&format!(
        "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
        "average",
        1.0,
        rows.iter().map(|r| r.tage).sum::<f64>() / n,
        rows.iter().map(|r| r.tournament_pbs).sum::<f64>() / n,
        rows.iter().map(|r| r.tage_pbs).sum::<f64>() / n,
    ));
    s
}

/// Renders Figure 9.
pub fn fig9(rows: &[Fig9Row]) -> String {
    let mut s = String::new();
    s.push_str("FIG 9 — regular-branch MPKI increase from prob-branch interference (tournament)\n");
    s.push_str(&format!("{:<12} {:>16}\n", "benchmark", "max increase %"));
    s.push_str(&rule(30));
    s.push('\n');
    for r in rows {
        s.push_str(&format!("{:<12} {:>16.2}\n", r.name, r.max_increase_pct));
    }
    s
}

fn interval(s: &Summary) -> String {
    format!("{:.0}-{:.0}", s.hi.round(), s.lo.round())
}

/// Renders Table III.
pub fn table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    s.push_str("TABLE III — randomness battery (95% CI across seeds, hi-lo)\n");
    s.push_str(&format!(
        "{:<12} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}\n",
        "benchmark", "o-PASS", "o-WEAK", "o-FAIL", "p-PASS", "p-WEAK", "p-FAIL"
    ));
    s.push_str(&rule(66));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}\n",
            r.name,
            interval(&r.orig_pass),
            interval(&r.orig_weak),
            interval(&r.orig_fail),
            interval(&r.pbs_pass),
            interval(&r.pbs_weak),
            interval(&r.pbs_fail),
        ));
    }
    s
}

/// Renders the accuracy table.
pub fn accuracy(rows: &[AccuracyRow]) -> String {
    let mut s = String::new();
    s.push_str("§VII-D — output accuracy under PBS\n");
    s.push_str(&format!(
        "{:<12} {:<26} {:>12} {:>8}\n",
        "benchmark", "metric", "value", "ok"
    ));
    s.push_str(&rule(62));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:<26} {:>12.5} {:>8}\n",
            r.name,
            r.metric,
            r.value,
            if r.acceptable { "yes" } else { "NO" }
        ));
    }
    s
}

/// Renders the hardware-cost table.
pub fn cost(rows: &[CostRow]) -> String {
    let mut s = String::new();
    s.push_str("§V-C2 — PBS hardware cost\n");
    for r in rows {
        s.push_str(&format!("{:<55} {:>5} bytes\n", r.config, r.bytes));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_nonempty_and_contains_names() {
        let rows = vec![Fig1Row {
            name: "DOP",
            prob_branch_share: 2.0,
            tournament_mispredict_share: 19.0,
            tage_mispredict_share: 23.0,
        }];
        let out = fig1(&rows);
        assert!(out.contains("DOP") && out.contains("19.0") && out.contains("average"));
    }

    #[test]
    fn table3_interval_format() {
        let s = Summary {
            mean: 44.0,
            lo: 40.2,
            hi: 48.4,
            n: 7,
        };
        assert_eq!(interval(&s), "48-40");
    }
}
