//! The `sim-throughput` benchmark: simulator speed (MIPS — millions of
//! simulated instructions per wall-clock second) per
//! workload × predictor × PBS cell, for the fused engine, the unfused
//! reference engine, and the shared-trace **replay** engine.
//!
//! This is the perf trajectory of the project: `figures
//! --emit-bench-json BENCH_throughput.json` serializes a report whose
//! committed copy at the repo root is the baseline CI's
//! `check_throughput` gate compares fresh measurements against.
//!
//! Replay cells are measured in **convoy** mode, the way the sweeps
//! consume them: per emulation key `(workload, PBS)` one capture stream
//! fills a single chunk-sized buffer, and each chunk is drained by
//! every predictor's timing consumer while still cache-hot. The capture
//! wall time is recorded per key (`captures` in the JSON) and *included*
//! in the aggregate replay MIPS — `replay_mips` is honest end-to-end
//! throughput, not just the re-timing half. Peak trace memory (the
//! bounded chunk buffer) and chunk count are reported per cell so
//! memory regressions are visible alongside MIPS.
//!
//! Measurements are wall-clock and therefore machine-dependent; the
//! *results* of every timed run are still checked for engine agreement
//! (each cell asserts the fused, reference and replay reports are
//! identical), so a throughput run doubles as an equivalence sweep.

use std::time::{Duration, Instant};

use probranch_harness::{run_cells_timed, workload_seed, Cell, Jobs};
use probranch_pipeline::{
    simulate, simulate_reference, PredictorChoice, ReplayConsumer, SimConfig, SimReport,
    TraceChunk, TraceStream,
};
use probranch_workloads::BenchmarkId;

use crate::experiments::ExperimentScale;

/// Schema tag written into the JSON (bump on layout changes so the CI
/// gate skips rather than misparses). `check_throughput` accepts the
/// `/1` baseline (which lacks replay fields) without failing.
pub const SCHEMA: &str = "probranch-throughput/2";

/// The v1 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V1: &str = "probranch-throughput/1";

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Predictor name.
    pub predictor: &'static str,
    /// Whether PBS was enabled.
    pub pbs: bool,
    /// Simulated (committed) instructions.
    pub instructions: u64,
    /// Wall time of the fused engine.
    pub fused: Duration,
    /// Wall time of the unfused reference engine.
    pub reference: Duration,
    /// Wall time of this cell's replay consumer in the convoy (capture
    /// excluded — that is accounted once per key in
    /// [`ThroughputReport::captures`]).
    pub replay: Duration,
    /// Peak trace memory backing this cell's replay: the convoy's
    /// bounded chunk buffer.
    pub trace_peak_bytes: usize,
    /// Chunks streamed through this cell's consumer.
    pub trace_chunks: usize,
}

impl ThroughputCell {
    /// Millions of simulated instructions per second, fused engine.
    pub fn fused_mips(&self) -> f64 {
        mips(self.instructions, self.fused)
    }

    /// Millions of simulated instructions per second, reference engine.
    pub fn reference_mips(&self) -> f64 {
        mips(self.instructions, self.reference)
    }

    /// Millions of simulated instructions per second through this
    /// cell's replay consumer (capture excluded).
    pub fn replay_mips(&self) -> f64 {
        mips(self.instructions, self.replay)
    }

    /// Stable identity for baseline comparison.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.workload, self.predictor, self.pbs)
    }
}

/// One emulation key's capture overhead in the replay sweep.
#[derive(Debug, Clone)]
pub struct CaptureCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Whether PBS was enabled.
    pub pbs: bool,
    /// Dynamic instructions emulated (shared by every cell of the key).
    pub instructions: u64,
    /// Wall time of the capture stream (emulation, cache pre-simulation
    /// and record packing).
    pub capture: Duration,
}

impl CaptureCell {
    /// Millions of emulated instructions per second of capture.
    pub fn capture_mips(&self) -> f64 {
        mips(self.instructions, self.capture)
    }
}

fn mips(instructions: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        instructions as f64 / s / 1e6
    }
}

/// A full throughput sweep over the Figure 6 grid.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The experiment scale the sweep ran at.
    pub scale: ExperimentScale,
    /// Per-cell measurements, in grid order.
    pub cells: Vec<ThroughputCell>,
    /// Per-key capture overhead of the replay sweep, in key order.
    pub captures: Vec<CaptureCell>,
}

impl ThroughputReport {
    /// Total simulated instructions across cells (fused == reference ==
    /// replay by the per-cell equivalence assertion).
    pub fn total_instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate fused MIPS (total instructions over total wall time).
    pub fn fused_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.fused).sum(),
        )
    }

    /// Aggregate reference MIPS.
    pub fn reference_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.reference).sum(),
        )
    }

    /// Total capture wall time across keys.
    pub fn capture_seconds(&self) -> Duration {
        self.captures.iter().map(|c| c.capture).sum()
    }

    /// Aggregate replay MIPS: total simulated instructions over the
    /// *end-to-end* replay-sweep wall time — every key's capture plus
    /// every cell's replay.
    pub fn replay_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.capture_seconds() + self.cells.iter().map(|c| c.replay).sum::<Duration>(),
        )
    }

    /// Aggregate fused-over-reference speedup.
    pub fn speedup(&self) -> f64 {
        let r = self.reference_mips();
        if r <= 0.0 {
            0.0
        } else {
            self.fused_mips() / r
        }
    }

    /// Aggregate replay-over-fused speedup (capture included).
    pub fn replay_speedup(&self) -> f64 {
        let f = self.fused_mips();
        if f <= 0.0 {
            0.0
        } else {
            self.replay_mips() / f
        }
    }

    /// Serializes the report as JSON, one cell object per line (the
    /// line-oriented layout `check_throughput` parses without a JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"predictor\":\"{}\",\"pbs\":{},\"instructions\":{},\"fused_seconds\":{:.6},\"fused_mips\":{:.3},\"reference_seconds\":{:.6},\"reference_mips\":{:.3},\"replay_seconds\":{:.6},\"replay_mips\":{:.3},\"trace_peak_bytes\":{},\"trace_chunks\":{}}}{comma}\n",
                c.workload,
                c.predictor,
                c.pbs,
                c.instructions,
                c.fused.as_secs_f64(),
                c.fused_mips(),
                c.reference.as_secs_f64(),
                c.reference_mips(),
                c.replay.as_secs_f64(),
                c.replay_mips(),
                c.trace_peak_bytes,
                c.trace_chunks,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"captures\": [\n");
        for (i, c) in self.captures.iter().enumerate() {
            let comma = if i + 1 < self.captures.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"pbs\":{},\"instructions\":{},\"capture_seconds\":{:.6},\"capture_mips\":{:.3}}}{comma}\n",
                c.workload,
                c.pbs,
                c.instructions,
                c.capture.as_secs_f64(),
                c.capture_mips(),
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"aggregate\": {{\"instructions\":{},\"fused_mips\":{:.3},\"reference_mips\":{:.3},\"speedup\":{:.3},\"capture_seconds\":{:.6},\"replay_mips\":{:.3},\"replay_speedup\":{:.3}}}\n",
            self.total_instructions(),
            self.fused_mips(),
            self.reference_mips(),
            self.speedup(),
            self.capture_seconds().as_secs_f64(),
            self.replay_mips(),
            self.replay_speedup(),
        ));
        out.push_str("}\n");
        out
    }

    /// A human-readable per-cell summary (for stderr).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sim-throughput ({} scale, fig6 grid): {} cells, {} simulated instructions\n",
            self.scale.name(),
            self.cells.len(),
            self.total_instructions()
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "  {:<10} {:<15} pbs={:<5} {:>10} insts  fused {:>8.2} MIPS  reference {:>8.2} MIPS  replay {:>8.2} MIPS  ({} chunks, peak {} KiB)\n",
                c.workload,
                c.predictor,
                c.pbs,
                c.instructions,
                c.fused_mips(),
                c.reference_mips(),
                c.replay_mips(),
                c.trace_chunks,
                c.trace_peak_bytes / 1024,
            ));
        }
        out.push_str(&format!(
            "aggregate: fused {:.2} MIPS vs reference {:.2} MIPS ({:.2}x); replay {:.2} MIPS incl. {:.3}s capture ({:.2}x over fused)\n",
            self.fused_mips(),
            self.reference_mips(),
            self.speedup(),
            self.replay_mips(),
            self.capture_seconds().as_secs_f64(),
            self.replay_speedup(),
        ));
        out
    }
}

/// The two predictors of every fig6 key, in grid order.
const PREDICTORS: [PredictorChoice; 2] = [PredictorChoice::Tournament, PredictorChoice::TageScL];

/// The Figure 6 measurement grid: every benchmark under each
/// [`PREDICTORS`] entry, without and with PBS — derived from the same
/// predictor list the replay convoy consumes, so the two orderings
/// cannot drift.
pub fn grid() -> Vec<Cell> {
    BenchmarkId::ALL
        .iter()
        .flat_map(|&w| {
            PREDICTORS
                .iter()
                .flat_map(move |&p| [false, true].map(move |pbs| Cell::new(w, p, pbs, 0)))
        })
        .collect()
}

/// The emulation keys of the fig6 grid, in grid order: every benchmark
/// without and with PBS.
fn keys() -> Vec<(BenchmarkId, bool)> {
    BenchmarkId::ALL
        .iter()
        .flat_map(|&w| [(w, false), (w, true)])
        .collect()
}

/// One key's timed convoy run: capture streamed once through one
/// reusable chunk buffer, each chunk drained by every predictor's
/// consumer in lockstep, per-consumer wall time accumulated across
/// chunks.
struct ConvoyMeasurement {
    name: &'static str,
    capture: Duration,
    instructions: u64,
    chunk_bytes: usize,
    chunks: usize,
    /// Per predictor (in [`PREDICTORS`] order): the report and the
    /// accumulated consume time.
    cells: Vec<(SimReport, Duration)>,
}

fn run_convoy_key(workload: BenchmarkId, pbs: bool, scale: ExperimentScale) -> ConvoyMeasurement {
    let bench = workload.build(scale.workload(), workload_seed(workload, 0));
    let program = bench.program();
    let configs: Vec<SimConfig> = PREDICTORS
        .iter()
        .map(|&p| {
            let mut cfg = SimConfig::default().predictor(p);
            if pbs {
                cfg.pbs = Some(probranch_core::PbsConfig::default());
            }
            cfg
        })
        .collect();
    let mut stream = TraceStream::new(&program, &configs[0]);
    let mut consumers: Vec<ReplayConsumer> = configs.iter().map(ReplayConsumer::new).collect();
    let mut chunk = TraceChunk::with_chunk_capacity();
    let mut capture = Duration::ZERO;
    let mut per_consumer = vec![Duration::ZERO; consumers.len()];
    let mut chunks = 0usize;
    loop {
        let t0 = Instant::now();
        let more = stream
            .fill(&mut chunk)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        capture += t0.elapsed();
        if !more {
            break;
        }
        chunks += 1;
        for (consumer, slot) in consumers.iter_mut().zip(&mut per_consumer) {
            let t1 = Instant::now();
            consumer.consume_chunk(stream.timings(), &chunk);
            *slot += t1.elapsed();
        }
    }
    let chunk_bytes = chunk.bytes();
    let functional = stream.finish();
    ConvoyMeasurement {
        name: bench.name(),
        capture,
        instructions: functional.instructions,
        chunk_bytes,
        chunks,
        cells: consumers
            .into_iter()
            .zip(per_consumer)
            .map(|(c, d)| (c.into_report(&functional), d))
            .collect(),
    }
}

/// Measures the fig6 grid at `scale`: per cell, wall time of one fused
/// and one reference full-timing simulation of the same workload
/// instance, plus a per-key convoy replay — asserting that all three
/// engines return identical reports.
///
/// Fused/reference cells run through [`run_cells_timed`]; pass
/// [`Jobs::serial`] (the `figures --emit-bench-json` default) for
/// uncontended numbers. The replay convoy is measured serially per key
/// regardless (its per-chunk consumer timings interleave on one
/// thread).
///
/// # Panics
///
/// Panics if a workload faults, or if any two engines disagree — a
/// correctness bug this benchmark refuses to time.
pub fn measure(scale: ExperimentScale, jobs: Jobs) -> ThroughputReport {
    let cells = grid();
    // Fused timings first (one pass), then reference timings, so neither
    // engine systematically runs on a warmer allocator.
    let fused = run_cells_timed(&cells, jobs, |cell| run_engine(cell, scale, false));
    let reference = run_cells_timed(&cells, jobs, |cell| run_engine(cell, scale, true));
    // Replay pass: one convoy per emulation key, two cells each.
    let mut captures = Vec::new();
    let mut replay_cells = Vec::new();
    for (workload, pbs) in keys() {
        let m = run_convoy_key(workload, pbs, scale);
        captures.push(CaptureCell {
            workload: m.name,
            pbs,
            instructions: m.instructions,
            capture: m.capture,
        });
        for (i, (report, duration)) in m.cells.into_iter().enumerate() {
            replay_cells.push((
                Cell::new(workload, PREDICTORS[i], pbs, 0),
                report,
                duration,
                m.chunk_bytes,
                m.chunks,
            ));
        }
    }
    // Merge: fused/reference are in grid order; replay cells are in
    // key-major order. Match by cell identity.
    let cell_rows = cells
        .iter()
        .zip(fused)
        .zip(reference)
        .map(|((cell, ((name, fr), ft)), ((_, rr), rt))| {
            assert_eq!(fr, rr, "fused and reference engines disagree on {cell:?}");
            let (_, replay_report, replay_dur, peak, chunks) = replay_cells
                .iter()
                .find(|(c, ..)| c == cell)
                .unwrap_or_else(|| panic!("replay sweep missing cell {cell:?}"));
            assert_eq!(
                &fr, replay_report,
                "fused and replay engines disagree on {cell:?}"
            );
            ThroughputCell {
                workload: name,
                predictor: cell.predictor.name(),
                pbs: cell.pbs,
                instructions: fr.timing.instructions,
                fused: ft,
                reference: rt,
                replay: *replay_dur,
                trace_peak_bytes: *peak,
                trace_chunks: *chunks,
            }
        })
        .collect();
    ThroughputReport {
        scale,
        cells: cell_rows,
        captures,
    }
}

fn run_engine(cell: &Cell, scale: ExperimentScale, reference: bool) -> (&'static str, SimReport) {
    let bench = cell
        .workload
        .build(scale.workload(), workload_seed(cell.workload, cell.seed));
    let mut cfg = SimConfig {
        predictor: cell.predictor,
        ..SimConfig::default()
    };
    if cell.pbs {
        cfg.pbs = Some(probranch_core::PbsConfig::default());
    }
    let program = bench.program();
    let run = if reference {
        simulate_reference
    } else {
        simulate
    };
    let report = run(&program, &cfg).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    (bench.name(), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_fig6() {
        let g = grid();
        assert_eq!(g.len(), BenchmarkId::ALL.len() * 4);
        assert_eq!(keys().len(), BenchmarkId::ALL.len() * 2);
    }

    #[test]
    fn measure_produces_consistent_json_at_smoke_scale() {
        // Restrict to a sub-grid-sized smoke run: the full measure() is
        // exercised by the figures binary and CI; here one pass checks
        // shape, equivalence assertions, and JSON layout.
        let report = measure(ExperimentScale::Smoke, Jobs::serial());
        assert_eq!(report.cells.len(), 32);
        assert_eq!(report.captures.len(), 16);
        assert!(report.total_instructions() > 0);
        assert!(report.capture_seconds() > Duration::ZERO);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"probranch-throughput/2\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"fused_mips\""));
        assert!(json.contains("\"replay_mips\""));
        assert!(json.contains("\"capture_seconds\""));
        assert!(json.contains("\"trace_peak_bytes\""));
        assert_eq!(
            json.lines().filter(|l| l.contains("\"workload\"")).count(),
            32 + 16
        );
    }
}
