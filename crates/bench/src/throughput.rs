//! The `sim-throughput` benchmark: simulator speed (MIPS — millions of
//! simulated instructions per wall-clock second) per
//! workload × predictor × PBS cell, for the fused engine and for the
//! unfused reference engine.
//!
//! This is the perf trajectory of the project: `figures
//! --emit-bench-json BENCH_throughput.json` serializes a report whose
//! committed copy at the repo root is the baseline CI's
//! `check_throughput` gate compares fresh measurements against.
//!
//! Measurements are wall-clock and therefore machine-dependent; the
//! *results* of every timed run are still checked for engine agreement
//! (each cell asserts the fused and reference reports are identical), so
//! a throughput run doubles as an equivalence sweep.

use std::time::Duration;

use probranch_harness::{run_cells_timed, workload_seed, Cell, Jobs};
use probranch_pipeline::{simulate, simulate_reference, PredictorChoice, SimConfig, SimReport};
use probranch_workloads::BenchmarkId;

use crate::experiments::ExperimentScale;

/// Schema tag written into the JSON (bump on layout changes so the CI
/// gate skips rather than misparses).
pub const SCHEMA: &str = "probranch-throughput/1";

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Predictor name.
    pub predictor: &'static str,
    /// Whether PBS was enabled.
    pub pbs: bool,
    /// Simulated (committed) instructions.
    pub instructions: u64,
    /// Wall time of the fused engine.
    pub fused: Duration,
    /// Wall time of the unfused reference engine.
    pub reference: Duration,
}

impl ThroughputCell {
    /// Millions of simulated instructions per second, fused engine.
    pub fn fused_mips(&self) -> f64 {
        mips(self.instructions, self.fused)
    }

    /// Millions of simulated instructions per second, reference engine.
    pub fn reference_mips(&self) -> f64 {
        mips(self.instructions, self.reference)
    }

    /// Stable identity for baseline comparison.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.workload, self.predictor, self.pbs)
    }
}

fn mips(instructions: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        instructions as f64 / s / 1e6
    }
}

/// A full throughput sweep over the Figure 6 grid.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The experiment scale the sweep ran at.
    pub scale: ExperimentScale,
    /// Per-cell measurements, in grid order.
    pub cells: Vec<ThroughputCell>,
}

impl ThroughputReport {
    /// Total simulated instructions across cells (fused == reference by
    /// the per-cell equivalence assertion).
    pub fn total_instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate fused MIPS (total instructions over total wall time).
    pub fn fused_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.fused).sum(),
        )
    }

    /// Aggregate reference MIPS.
    pub fn reference_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.reference).sum(),
        )
    }

    /// Aggregate fused-over-reference speedup.
    pub fn speedup(&self) -> f64 {
        let r = self.reference_mips();
        if r <= 0.0 {
            0.0
        } else {
            self.fused_mips() / r
        }
    }

    /// Serializes the report as JSON, one cell object per line (the
    /// line-oriented layout `check_throughput` parses without a JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"predictor\":\"{}\",\"pbs\":{},\"instructions\":{},\"fused_seconds\":{:.6},\"fused_mips\":{:.3},\"reference_seconds\":{:.6},\"reference_mips\":{:.3}}}{comma}\n",
                c.workload,
                c.predictor,
                c.pbs,
                c.instructions,
                c.fused.as_secs_f64(),
                c.fused_mips(),
                c.reference.as_secs_f64(),
                c.reference_mips(),
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"aggregate\": {{\"instructions\":{},\"fused_mips\":{:.3},\"reference_mips\":{:.3},\"speedup\":{:.3}}}\n",
            self.total_instructions(),
            self.fused_mips(),
            self.reference_mips(),
            self.speedup(),
        ));
        out.push_str("}\n");
        out
    }

    /// A human-readable per-cell summary (for stderr).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sim-throughput ({} scale, fig6 grid): {} cells, {} simulated instructions\n",
            self.scale.name(),
            self.cells.len(),
            self.total_instructions()
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "  {:<10} {:<15} pbs={:<5} {:>10} insts  fused {:>8.2} MIPS  reference {:>8.2} MIPS\n",
                c.workload,
                c.predictor,
                c.pbs,
                c.instructions,
                c.fused_mips(),
                c.reference_mips()
            ));
        }
        out.push_str(&format!(
            "aggregate: fused {:.2} MIPS vs reference {:.2} MIPS ({:.2}x)\n",
            self.fused_mips(),
            self.reference_mips(),
            self.speedup()
        ));
        out
    }
}

/// The Figure 6 measurement grid: every benchmark under tournament and
/// TAGE-SC-L, each without and with PBS.
pub fn grid() -> Vec<Cell> {
    BenchmarkId::ALL
        .iter()
        .flat_map(|&w| {
            [
                (PredictorChoice::Tournament, false),
                (PredictorChoice::Tournament, true),
                (PredictorChoice::TageScL, false),
                (PredictorChoice::TageScL, true),
            ]
            .map(|(p, pbs)| Cell::new(w, p, pbs, 0))
        })
        .collect()
}

/// Measures the fig6 grid at `scale`: per cell, wall time of one fused
/// and one reference full-timing simulation of the same workload
/// instance — asserting the two engines return identical reports.
///
/// Cells run through [`run_cells_timed`]; pass [`Jobs::serial`] (the
/// `figures --emit-bench-json` default) for uncontended numbers.
///
/// # Panics
///
/// Panics if a workload faults, or if the fused and reference engines
/// disagree — a correctness bug this benchmark refuses to time.
pub fn measure(scale: ExperimentScale, jobs: Jobs) -> ThroughputReport {
    let cells = grid();
    // Fused timings first (one pass), then reference timings, so neither
    // engine systematically runs on a warmer allocator.
    let fused = run_cells_timed(&cells, jobs, |cell| run_engine(cell, scale, false));
    let reference = run_cells_timed(&cells, jobs, |cell| run_engine(cell, scale, true));
    let cell_rows = cells
        .iter()
        .zip(fused)
        .zip(reference)
        .map(|((cell, ((name, fr), ft)), ((_, rr), rt))| {
            assert_eq!(fr, rr, "fused and reference engines disagree on {cell:?}");
            ThroughputCell {
                workload: name,
                predictor: cell.predictor.name(),
                pbs: cell.pbs,
                instructions: fr.timing.instructions,
                fused: ft,
                reference: rt,
            }
        })
        .collect();
    ThroughputReport {
        scale,
        cells: cell_rows,
    }
}

fn run_engine(cell: &Cell, scale: ExperimentScale, reference: bool) -> (&'static str, SimReport) {
    let bench = cell
        .workload
        .build(scale.workload(), workload_seed(cell.workload, cell.seed));
    let mut cfg = SimConfig {
        predictor: cell.predictor,
        ..SimConfig::default()
    };
    if cell.pbs {
        cfg.pbs = Some(probranch_core::PbsConfig::default());
    }
    let program = bench.program();
    let run = if reference {
        simulate_reference
    } else {
        simulate
    };
    let report = run(&program, &cfg).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    (bench.name(), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_fig6() {
        let g = grid();
        assert_eq!(g.len(), BenchmarkId::ALL.len() * 4);
    }

    #[test]
    fn measure_produces_consistent_json_at_smoke_scale() {
        // Restrict to a sub-grid-sized smoke run: the full measure() is
        // exercised by the figures binary and CI; here one pass checks
        // shape, equivalence assertion, and JSON layout.
        let report = measure(ExperimentScale::Smoke, Jobs::serial());
        assert_eq!(report.cells.len(), 32);
        assert!(report.total_instructions() > 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"probranch-throughput/1\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"fused_mips\""));
        assert_eq!(
            json.lines().filter(|l| l.contains("\"workload\"")).count(),
            32
        );
    }
}
