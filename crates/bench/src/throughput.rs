//! The `sim-throughput` benchmark: simulator speed (MIPS — millions of
//! simulated instructions per wall-clock second) per
//! workload × predictor × PBS cell, for the fused engine, the unfused
//! reference engine, the shared-trace **replay** engine and the fused
//! **convoy** engine.
//!
//! This is the perf trajectory of the project: `figures
//! --emit-bench-json BENCH_throughput.json` serializes a report whose
//! committed copy at the repo root is the baseline CI's
//! `check_throughput` gate compares fresh measurements against.
//!
//! Per cell the report carries five engine measurements:
//!
//! * `fused` / `reference` — one full simulation each, as before;
//! * `replay` — the cell re-timed from a **materialized** trace
//!   (`Simulation` under `EngineKind::Replay`), the way the figure
//!   sweeps consume pooled traces; the one capture per emulation key is
//!   timed separately (`captures` in the JSON) and *included* in the
//!   aggregate replay MIPS, which therefore stays honest end-to-end
//!   throughput;
//! * `batched` — a second, cache-warm replay of the same cell: the
//!   batched-prediction chunk drain in isolation, without the first
//!   replay's cold-trace effects. This is the per-cell batched-TAGE
//!   MIPS figure the throughput gate tracks across PRs;
//! * `convoy` — the cell's equal share of its key's **streamed fused
//!   convoy** (`EngineKind::Convoy`: capture and all consumers in
//!   lockstep, capture time included), the bounded-memory execution
//!   shape. A fused convoy advances all k consumers per record, so
//!   per-consumer time is not separable — the share is the key's wall
//!   time over k.
//!
//! The report also carries the **sweep** section: the fig6 + fig7
//! grids run back to back through one shared
//! [`EngineContext`](probranch_harness::EngineContext) trace pool —
//! the paper's actual figures workload — with the pool's global
//! capture count, which must equal the number of distinct emulation
//! keys (each key emulated exactly once for the whole run).
//!
//! Measurements are wall-clock and therefore machine-dependent; the
//! *results* of every timed run are still checked for engine agreement
//! (each cell asserts the fused, reference, replay and convoy reports
//! are identical), so a throughput run doubles as an equivalence sweep.

use std::time::{Duration, Instant};

use probranch_harness::{run_cells_timed, workload_seed, Cell, Jobs};
use probranch_pipeline::{DynTrace, PredictorChoice, SimConfig, SimReport, Simulation};
use probranch_workloads::BenchmarkId;

use crate::experiments::{self, Engine, ExperimentScale};

/// Schema tag written into the JSON (bump on layout changes so the CI
/// gate skips rather than misparses). `check_throughput` accepts the
/// older `/1` (fused/reference only), `/2` (adds replay), `/3` (adds
/// convoy), `/4` (adds the batched drain), `/5` (adds store
/// accounting), `/6` (adds robustness accounting) and `/7` (adds
/// service accounting) baselines without failing; fields both reports
/// carry are gated — from `/8` on that includes the per-key capture
/// cells (`capture_mips`, tagged with the capture tier that ran).
pub const SCHEMA: &str = "probranch-throughput/8";

/// The v1 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V1: &str = "probranch-throughput/1";

/// The v2 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V2: &str = "probranch-throughput/2";

/// The v3 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V3: &str = "probranch-throughput/3";

/// The v4 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V4: &str = "probranch-throughput/4";

/// The v5 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V5: &str = "probranch-throughput/5";

/// The v6 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V6: &str = "probranch-throughput/6";

/// The v7 schema tag, still accepted as a comparison baseline.
pub const SCHEMA_V7: &str = "probranch-throughput/7";

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Predictor name.
    pub predictor: &'static str,
    /// Whether PBS was enabled.
    pub pbs: bool,
    /// Simulated (committed) instructions.
    pub instructions: u64,
    /// Wall time of the fused engine.
    pub fused: Duration,
    /// Wall time of the unfused reference engine.
    pub reference: Duration,
    /// Wall time of this cell's replay over the key's materialized
    /// trace (capture excluded — that is accounted once per key in
    /// [`ThroughputReport::captures`]).
    pub replay: Duration,
    /// Wall time of a second, cache-warm replay of the same cell: the
    /// batched-prediction chunk drain in isolation.
    pub batched: Duration,
    /// This cell's equal share of its key's streamed fused convoy
    /// (capture *included*; a fused loop has no per-consumer split).
    pub convoy: Duration,
    /// Heap bytes of the key's materialized trace backing this cell's
    /// replay.
    pub trace_peak_bytes: usize,
    /// Chunks in the key's materialized trace.
    pub trace_chunks: usize,
}

impl ThroughputCell {
    /// Millions of simulated instructions per second, fused engine.
    pub fn fused_mips(&self) -> f64 {
        mips(self.instructions, self.fused)
    }

    /// Millions of simulated instructions per second, reference engine.
    pub fn reference_mips(&self) -> f64 {
        mips(self.instructions, self.reference)
    }

    /// Millions of simulated instructions per second re-timing the
    /// materialized trace (capture excluded).
    pub fn replay_mips(&self) -> f64 {
        mips(self.instructions, self.replay)
    }

    /// Millions of simulated instructions per second of the cache-warm
    /// second replay — the batched chunk drain in isolation.
    pub fn batched_mips(&self) -> f64 {
        mips(self.instructions, self.batched)
    }

    /// Millions of simulated instructions per second through this
    /// cell's share of the fused convoy (capture included).
    pub fn convoy_mips(&self) -> f64 {
        mips(self.instructions, self.convoy)
    }

    /// Stable identity for baseline comparison.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.workload, self.predictor, self.pbs)
    }
}

/// One emulation key's capture overhead in the replay sweep.
#[derive(Debug, Clone)]
pub struct CaptureCell {
    /// Benchmark name.
    pub workload: &'static str,
    /// Whether PBS was enabled.
    pub pbs: bool,
    /// Dynamic instructions emulated (shared by every cell of the key).
    pub instructions: u64,
    /// Wall time of the trace capture (emulation, cache pre-simulation
    /// and SoA packing).
    pub capture: Duration,
    /// Which capture tier executed the key: `"generated"` (native
    /// fragments + block bodies), `"block"` (block-compiled only) or
    /// `"interp"` (the decoded interpreter) — see
    /// [`probranch_pipeline::capture_tier`].
    pub capture_tier: &'static str,
}

impl CaptureCell {
    /// Millions of emulated instructions per second of capture.
    pub fn capture_mips(&self) -> f64 {
        mips(self.instructions, self.capture)
    }
}

/// The shared-pool figures measurement: fig6 + fig7 run back to back
/// through one [`EngineContext`](probranch_harness::EngineContext).
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Timing cells retired across the two sweeps.
    pub cells: usize,
    /// Distinct emulation keys the pool ended up holding.
    pub keys: usize,
    /// Emulations actually performed — **exactly once per key** is the
    /// invariant this field verifies globally.
    pub captures: usize,
    /// Traces served from a trace directory (0 without `--trace-dir`).
    pub disk_loads: usize,
    /// Report grids served from the run-wide grid memo instead of
    /// re-timed — fig7 re-serves fig6's grid (identical cells, same
    /// core), so this is 1 for the sweep.
    pub grid_hits: usize,
    /// Simulated instructions' worth of figure cells *served* across
    /// both sweeps (a memo-served grid counts its cells' instructions:
    /// the sweep delivers the same figures the unpooled engine computed
    /// twice).
    pub instructions: u64,
    /// End-to-end wall time of both sweeps.
    pub wall: Duration,
    /// Peak bytes held by the trace pool.
    pub trace_bytes: usize,
    /// Pool hits — cells served from an already-resident trace.
    pub store_hits: usize,
    /// Traces demoted from owned heap to their mmap-backed persisted
    /// form under a memory budget (0 without `--trace-mem-budget` +
    /// `--trace-dir`).
    pub demotions: usize,
    /// Traces evicted outright under a memory budget (0 when
    /// unbounded).
    pub evictions: usize,
    /// Peak owned heap bytes the bounded pool ever held at once.
    pub peak_bytes: usize,
    /// Persisted traces rejected as stale (valid file, old version or
    /// foreign content hash) and silently re-captured — 0 in a healthy
    /// sweep.
    pub stale_rejected: usize,
    /// Corrupt persisted traces quarantined (renamed aside, never
    /// re-read) — 0 in a healthy sweep.
    pub quarantined: usize,
    /// Sweep-service requests admitted (0 in bench mode — the bench
    /// sweep runs in-process; `figures --serve` fills these four from
    /// its [`probranch_serve::StatsSnapshot`] at drain).
    pub service_requests: u64,
    /// Service requests that shared an in-flight leader's computation.
    pub service_coalesced: u64,
    /// Service requests load-shed with an `overloaded` response.
    pub service_shed: u64,
    /// Service requests cooperatively cancelled (deadline or injected
    /// spurious cancel).
    pub service_cancelled: u64,
}

impl SweepStats {
    /// Aggregate MIPS of the shared-pool fig6+fig7 run (all captures
    /// and replays included).
    pub fn mips(&self) -> f64 {
        mips(self.instructions, self.wall)
    }
}

fn mips(instructions: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        instructions as f64 / s / 1e6
    }
}

/// A full throughput sweep over the Figure 6 grid.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The experiment scale the sweep ran at.
    pub scale: ExperimentScale,
    /// Per-cell measurements, in grid order.
    pub cells: Vec<ThroughputCell>,
    /// Per-key capture overhead of the replay sweep, in key order.
    pub captures: Vec<CaptureCell>,
    /// The shared-pool fig6+fig7 sweep measurement.
    pub sweep: SweepStats,
}

impl ThroughputReport {
    /// Total simulated instructions across cells (all four engines
    /// simulate identical streams by the per-cell equivalence
    /// assertion).
    pub fn total_instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate fused MIPS (total instructions over total wall time).
    pub fn fused_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.fused).sum(),
        )
    }

    /// Aggregate reference MIPS.
    pub fn reference_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.reference).sum(),
        )
    }

    /// Total capture wall time across keys.
    pub fn capture_seconds(&self) -> Duration {
        self.captures.iter().map(|c| c.capture).sum()
    }

    /// Aggregate replay MIPS: total simulated instructions over the
    /// *end-to-end* replay-sweep wall time — every key's capture plus
    /// every cell's replay.
    pub fn replay_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.capture_seconds() + self.cells.iter().map(|c| c.replay).sum::<Duration>(),
        )
    }

    /// Aggregate batched-drain MIPS: total simulated instructions over
    /// the warm second-replay wall time only (no capture — the trace is
    /// already materialized and hot, which is exactly the steady-state
    /// sweep regime the batched predictor path accelerates).
    pub fn batched_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.batched).sum(),
        )
    }

    /// Aggregate fused-convoy MIPS (capture shares included — convoy
    /// cell times already carry their key's capture).
    pub fn convoy_mips(&self) -> f64 {
        mips(
            self.total_instructions(),
            self.cells.iter().map(|c| c.convoy).sum(),
        )
    }

    /// Aggregate fused-over-reference speedup.
    pub fn speedup(&self) -> f64 {
        let r = self.reference_mips();
        if r <= 0.0 {
            0.0
        } else {
            self.fused_mips() / r
        }
    }

    /// Aggregate replay-over-fused speedup (capture included).
    pub fn replay_speedup(&self) -> f64 {
        let f = self.fused_mips();
        if f <= 0.0 {
            0.0
        } else {
            self.replay_mips() / f
        }
    }

    /// Serializes the report as JSON, one cell object per line (the
    /// line-oriented layout `check_throughput` parses without a JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"predictor\":\"{}\",\"pbs\":{},\"instructions\":{},\"fused_seconds\":{:.6},\"fused_mips\":{:.3},\"reference_seconds\":{:.6},\"reference_mips\":{:.3},\"replay_seconds\":{:.6},\"replay_mips\":{:.3},\"batched_seconds\":{:.6},\"batched_mips\":{:.3},\"convoy_seconds\":{:.6},\"convoy_mips\":{:.3},\"trace_peak_bytes\":{},\"trace_chunks\":{}}}{comma}\n",
                c.workload,
                c.predictor,
                c.pbs,
                c.instructions,
                c.fused.as_secs_f64(),
                c.fused_mips(),
                c.reference.as_secs_f64(),
                c.reference_mips(),
                c.replay.as_secs_f64(),
                c.replay_mips(),
                c.batched.as_secs_f64(),
                c.batched_mips(),
                c.convoy.as_secs_f64(),
                c.convoy_mips(),
                c.trace_peak_bytes,
                c.trace_chunks,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"captures\": [\n");
        for (i, c) in self.captures.iter().enumerate() {
            let comma = if i + 1 < self.captures.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"pbs\":{},\"instructions\":{},\"capture_seconds\":{:.6},\"capture_mips\":{:.3},\"capture_tier\":\"{}\"}}{comma}\n",
                c.workload,
                c.pbs,
                c.instructions,
                c.capture.as_secs_f64(),
                c.capture_mips(),
                c.capture_tier,
            ));
        }
        out.push_str("  ],\n");
        let s = &self.sweep;
        out.push_str(&format!(
            "  \"sweep\": {{\"grids\":\"fig6+fig7\",\"cells\":{},\"keys\":{},\"captures\":{},\"disk_loads\":{},\"grid_hits\":{},\"instructions\":{},\"seconds\":{:.6},\"mips\":{:.3},\"trace_bytes\":{},\"store_hits\":{},\"demotions\":{},\"evictions\":{},\"peak_bytes\":{},\"stale_rejected\":{},\"quarantined\":{},\"service_requests\":{},\"service_coalesced\":{},\"service_shed\":{},\"service_cancelled\":{}}},\n",
            s.cells,
            s.keys,
            s.captures,
            s.disk_loads,
            s.grid_hits,
            s.instructions,
            s.wall.as_secs_f64(),
            s.mips(),
            s.trace_bytes,
            s.store_hits,
            s.demotions,
            s.evictions,
            s.peak_bytes,
            s.stale_rejected,
            s.quarantined,
            s.service_requests,
            s.service_coalesced,
            s.service_shed,
            s.service_cancelled,
        ));
        out.push_str(&format!(
            "  \"aggregate\": {{\"instructions\":{},\"fused_mips\":{:.3},\"reference_mips\":{:.3},\"speedup\":{:.3},\"capture_seconds\":{:.6},\"replay_mips\":{:.3},\"replay_speedup\":{:.3},\"batched_mips\":{:.3},\"convoy_mips\":{:.3}}}\n",
            self.total_instructions(),
            self.fused_mips(),
            self.reference_mips(),
            self.speedup(),
            self.capture_seconds().as_secs_f64(),
            self.replay_mips(),
            self.replay_speedup(),
            self.batched_mips(),
            self.convoy_mips(),
        ));
        out.push_str("}\n");
        out
    }

    /// A human-readable per-cell summary (for stderr).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sim-throughput ({} scale, fig6 grid): {} cells, {} simulated instructions\n",
            self.scale.name(),
            self.cells.len(),
            self.total_instructions()
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "  {:<10} {:<15} pbs={:<5} {:>10} insts  fused {:>8.2}  reference {:>8.2}  replay {:>8.2}  batched {:>8.2}  convoy {:>8.2} MIPS  ({} chunks, trace {} KiB)\n",
                c.workload,
                c.predictor,
                c.pbs,
                c.instructions,
                c.fused_mips(),
                c.reference_mips(),
                c.replay_mips(),
                c.batched_mips(),
                c.convoy_mips(),
                c.trace_chunks,
                c.trace_peak_bytes / 1024,
            ));
        }
        out.push_str(&format!(
            "aggregate: fused {:.2} MIPS vs reference {:.2} MIPS ({:.2}x); replay {:.2} MIPS incl. {:.3}s capture ({:.2}x over fused); batched drain {:.2} MIPS; convoy {:.2} MIPS\n",
            self.fused_mips(),
            self.reference_mips(),
            self.speedup(),
            self.replay_mips(),
            self.capture_seconds().as_secs_f64(),
            self.replay_speedup(),
            self.batched_mips(),
            self.convoy_mips(),
        ));
        let mut tiers: Vec<(&str, usize)> = Vec::new();
        for c in &self.captures {
            match tiers.iter_mut().find(|(t, _)| *t == c.capture_tier) {
                Some((_, n)) => *n += 1,
                None => tiers.push((c.capture_tier, 1)),
            }
        }
        let cap_insts: u64 = self.captures.iter().map(|c| c.instructions).sum();
        out.push_str(&format!(
            "capture: {} keys at {:.2} MIPS aggregate [{}]\n",
            self.captures.len(),
            mips(cap_insts, self.capture_seconds()),
            tiers
                .iter()
                .map(|(t, n)| format!("{t}\u{d7}{n}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        let s = &self.sweep;
        out.push_str(&format!(
            "sweep (fig6+fig7, shared pool): {} cells over {} keys, {} captures + {} disk loads + {} grid hits, {:.3}s = {:.2} MIPS, pool {} KiB\n",
            s.cells,
            s.keys,
            s.captures,
            s.disk_loads,
            s.grid_hits,
            s.wall.as_secs_f64(),
            s.mips(),
            s.trace_bytes / 1024,
        ));
        out.push_str(&format!(
            "store (shared pool): {} hits, {} demotions, {} evictions, peak {} KiB, {} stale rejected, {} quarantined\n",
            s.store_hits,
            s.demotions,
            s.evictions,
            s.peak_bytes / 1024,
            s.stale_rejected,
            s.quarantined,
        ));
        out
    }
}

/// The two predictors of every fig6 key, in grid order.
const PREDICTORS: [PredictorChoice; 2] = [PredictorChoice::Tournament, PredictorChoice::TageScL];

/// The Figure 6 measurement grid: every benchmark under each
/// [`PREDICTORS`] entry, without and with PBS — derived from the same
/// predictor list the replay convoy consumes, so the two orderings
/// cannot drift.
pub fn grid() -> Vec<Cell> {
    BenchmarkId::ALL
        .iter()
        .flat_map(|&w| {
            PREDICTORS
                .iter()
                .flat_map(move |&p| [false, true].map(move |pbs| Cell::new(w, p, pbs, 0)))
        })
        .collect()
}

/// The emulation keys of the fig6 grid, in grid order: every benchmark
/// without and with PBS.
fn keys() -> Vec<(BenchmarkId, bool)> {
    BenchmarkId::ALL
        .iter()
        .flat_map(|&w| [(w, false), (w, true)])
        .collect()
}

/// One key's timed replay + convoy measurements: one timed capture
/// into a materialized trace, one timed replay plus one timed
/// cache-warm second replay per predictor over it, and one timed
/// streamed fused convoy of both predictors.
struct KeyMeasurement {
    name: &'static str,
    capture: Duration,
    capture_tier: &'static str,
    convoy: Duration,
    instructions: u64,
    trace_bytes: usize,
    chunks: usize,
    /// Per predictor (in [`PREDICTORS`] order): the replay report, its
    /// replay wall time, and the warm second replay's wall time.
    cells: Vec<(SimReport, Duration, Duration)>,
    /// The convoy's reports, in the same order.
    convoy_reports: Vec<SimReport>,
}

fn run_key(workload: BenchmarkId, pbs: bool, scale: ExperimentScale) -> KeyMeasurement {
    let bench = workload.build(scale.workload(), workload_seed(workload, 0));
    let program = bench.program();
    let configs: Vec<SimConfig> = PREDICTORS
        .iter()
        .map(|&p| {
            let mut cfg = SimConfig::default().predictor(p);
            if pbs {
                cfg.pbs = Some(probranch_core::PbsConfig::default());
            }
            cfg
        })
        .collect();
    // Materialized-trace path: capture once, re-time per predictor.
    let capture_tier = probranch_pipeline::capture_tier(&program, &configs[0]);
    let t0 = Instant::now();
    let trace = DynTrace::capture(&program, &configs[0])
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    let capture = t0.elapsed();
    let replay = Simulation::new(Engine::Replay);
    let cells: Vec<(SimReport, Duration, Duration)> = configs
        .iter()
        .map(|cfg| {
            let t1 = Instant::now();
            let report = replay
                .replay(&trace, cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            let replay_dur = t1.elapsed();
            // A second, cache-warm replay isolates the batched chunk
            // drain (the steady-state sweep regime).
            let t2 = Instant::now();
            let warm = replay
                .replay(&trace, cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            let batched_dur = t2.elapsed();
            assert_eq!(
                report,
                warm,
                "{}: replay is not deterministic",
                bench.name()
            );
            (report, replay_dur, batched_dur)
        })
        .collect();
    // Streamed fused convoy of the same cells.
    let t3 = Instant::now();
    let convoy_reports = Simulation::new(Engine::Convoy)
        .run_many(&program, &configs)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    let convoy = t3.elapsed();
    KeyMeasurement {
        name: bench.name(),
        capture,
        capture_tier,
        convoy,
        instructions: trace.instructions(),
        trace_bytes: trace.bytes(),
        chunks: trace.chunk_count(),
        cells,
        convoy_reports,
    }
}

/// Runs the fig6 + fig7 sweeps back to back through one shared trace
/// pool and reports the pool's global accounting — the figures run's
/// actual execution shape.
fn run_sweep(scale: ExperimentScale, per_cell_instructions: u64) -> SweepStats {
    let ctx = experiments::Context::new();
    let jobs = Jobs::serial();
    let t0 = Instant::now();
    let f6 = experiments::fig6_with_ctx(scale, jobs, Engine::Replay, &ctx);
    let f7 = experiments::fig7_with_ctx(scale, jobs, Engine::Replay, &ctx);
    let wall = t0.elapsed();
    // fig6 and fig7 each serve the full 4-config grid per benchmark.
    let cells = (f6.len() + f7.len()) * 4;
    SweepStats {
        cells,
        keys: ctx.keys(),
        captures: ctx.captures(),
        disk_loads: ctx.disk_loads(),
        grid_hits: ctx.grid_hits(),
        // Both sweeps serve the same grid the per-cell phase measured.
        instructions: 2 * per_cell_instructions,
        wall,
        trace_bytes: ctx.bytes(),
        store_hits: ctx.store_hits(),
        demotions: ctx.demotions(),
        evictions: ctx.evictions(),
        peak_bytes: ctx.peak_bytes(),
        stale_rejected: ctx.traces().stale_rejected(),
        quarantined: ctx.traces().quarantined(),
        service_requests: 0,
        service_coalesced: 0,
        service_shed: 0,
        service_cancelled: 0,
    }
}

/// Measures the fig6 grid at `scale`: per cell, wall time of one fused
/// and one reference full-timing simulation of the same workload
/// instance, a per-key timed capture with per-cell timed replays, and a
/// per-key streamed fused convoy — asserting that all four engines
/// return identical reports — plus the shared-pool fig6+fig7 sweep.
///
/// Fused/reference cells run through [`run_cells_timed`]; pass
/// [`Jobs::serial`] (the `figures --emit-bench-json` default) for
/// uncontended numbers. The replay/convoy measurements and the sweep
/// run serially regardless.
///
/// # Panics
///
/// Panics if a workload faults, or if any two engines disagree — a
/// correctness bug this benchmark refuses to time.
pub fn measure(scale: ExperimentScale, jobs: Jobs) -> ThroughputReport {
    let cells = grid();
    // Fused timings first (one pass), then reference timings, so neither
    // engine systematically runs on a warmer allocator.
    let fused = run_cells_timed(&cells, jobs, |cell| run_engine(cell, scale, false));
    let reference = run_cells_timed(&cells, jobs, |cell| run_engine(cell, scale, true));
    // Replay + convoy pass: one measurement per emulation key.
    let mut captures = Vec::new();
    let mut replay_cells = Vec::new();
    for (workload, pbs) in keys() {
        let m = run_key(workload, pbs, scale);
        captures.push(CaptureCell {
            workload: m.name,
            pbs,
            instructions: m.instructions,
            capture: m.capture,
            capture_tier: m.capture_tier,
        });
        let share = m.convoy / m.cells.len() as u32;
        for (i, ((report, duration, batched), convoy_report)) in
            m.cells.into_iter().zip(m.convoy_reports).enumerate()
        {
            assert_eq!(
                report, convoy_report,
                "replay and convoy engines disagree on {workload:?} pbs={pbs} {:?}",
                PREDICTORS[i]
            );
            replay_cells.push((
                Cell::new(workload, PREDICTORS[i], pbs, 0),
                report,
                duration,
                batched,
                share,
                m.trace_bytes,
                m.chunks,
            ));
        }
    }
    // Merge: fused/reference are in grid order; replay cells are in
    // key-major order. Match by cell identity.
    let cell_rows: Vec<ThroughputCell> = cells
        .iter()
        .zip(fused)
        .zip(reference)
        .map(|((cell, ((name, fr), ft)), ((_, rr), rt))| {
            assert_eq!(fr, rr, "fused and reference engines disagree on {cell:?}");
            let (_, replay_report, replay_dur, batched_dur, convoy_share, trace_bytes, chunks) =
                replay_cells
                    .iter()
                    .find(|(c, ..)| c == cell)
                    .unwrap_or_else(|| panic!("replay sweep missing cell {cell:?}"));
            assert_eq!(
                &fr, replay_report,
                "fused and replay engines disagree on {cell:?}"
            );
            ThroughputCell {
                workload: name,
                predictor: cell.predictor.name(),
                pbs: cell.pbs,
                instructions: fr.timing.instructions,
                fused: ft,
                reference: rt,
                replay: *replay_dur,
                batched: *batched_dur,
                convoy: *convoy_share,
                trace_peak_bytes: *trace_bytes,
                trace_chunks: *chunks,
            }
        })
        .collect();
    let per_cell_instructions = cell_rows.iter().map(|c| c.instructions).sum();
    let sweep = run_sweep(scale, per_cell_instructions);
    assert_eq!(
        sweep.captures + sweep.disk_loads,
        sweep.keys,
        "shared pool must emulate (or load) each key exactly once"
    );
    ThroughputReport {
        scale,
        cells: cell_rows,
        captures,
        sweep,
    }
}

fn run_engine(cell: &Cell, scale: ExperimentScale, reference: bool) -> (&'static str, SimReport) {
    let bench = cell
        .workload
        .build(scale.workload(), workload_seed(cell.workload, cell.seed));
    let mut cfg = SimConfig {
        predictor: cell.predictor,
        ..SimConfig::default()
    };
    if cell.pbs {
        cfg.pbs = Some(probranch_core::PbsConfig::default());
    }
    let program = bench.program();
    let engine = if reference {
        Engine::Reference
    } else {
        Engine::Fused
    };
    let report = Simulation::new(engine)
        .run(&program, &cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    (bench.name(), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_fig6() {
        let g = grid();
        assert_eq!(g.len(), BenchmarkId::ALL.len() * 4);
        assert_eq!(keys().len(), BenchmarkId::ALL.len() * 2);
    }

    #[test]
    fn measure_produces_consistent_json_at_smoke_scale() {
        // Restrict to a sub-grid-sized smoke run: the full measure() is
        // exercised by the figures binary and CI; here one pass checks
        // shape, equivalence assertions, and JSON layout.
        let report = measure(ExperimentScale::Smoke, Jobs::serial());
        assert_eq!(report.cells.len(), 32);
        assert_eq!(report.captures.len(), 16);
        assert!(report.total_instructions() > 0);
        assert!(report.capture_seconds() > Duration::ZERO);
        // The shared pool's headline invariant: one emulation per key.
        assert_eq!(report.sweep.keys, 16);
        assert_eq!(report.sweep.captures, 16);
        assert_eq!(report.sweep.disk_loads, 0);
        assert_eq!(report.sweep.grid_hits, 1, "fig7 must re-serve fig6's grid");
        assert_eq!(report.sweep.cells, 64);
        assert_eq!(report.sweep.instructions, 2 * report.total_instructions());
        // Unbounded pool: nothing is demoted or evicted, but the peak
        // accounting still registers the resident traces.
        assert_eq!(report.sweep.demotions, 0);
        assert_eq!(report.sweep.evictions, 0);
        assert!(report.sweep.peak_bytes > 0);
        // A healthy sweep heals nothing.
        assert_eq!(report.sweep.stale_rejected, 0);
        assert_eq!(report.sweep.quarantined, 0);
        // Bench mode serves no requests; the service counters exist in
        // the schema so `figures --serve` reports land in the same gate.
        assert_eq!(report.sweep.service_requests, 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"probranch-throughput/8\""));
        // Every capture cell carries its tier tag; the paper kernels
        // all hit a compiled tier at smoke scale (no interp cells).
        assert_eq!(
            json.lines()
                .filter(|l| l.contains("\"capture_tier\":\""))
                .count(),
            16
        );
        assert!(report
            .captures
            .iter()
            .all(|c| matches!(c.capture_tier, "generated" | "block" | "interp")));
        assert!(json.contains("\"service_requests\""));
        assert!(json.contains("\"service_coalesced\""));
        assert!(json.contains("\"service_shed\""));
        assert!(json.contains("\"service_cancelled\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"fused_mips\""));
        assert!(json.contains("\"replay_mips\""));
        assert!(json.contains("\"batched_mips\""));
        assert!(json.contains("\"convoy_mips\""));
        assert!(json.contains("\"capture_seconds\""));
        assert!(json.contains("\"trace_peak_bytes\""));
        assert!(json.contains("\"store_hits\""));
        assert!(json.contains("\"demotions\""));
        assert!(json.contains("\"evictions\""));
        assert!(json.contains("\"peak_bytes\""));
        assert!(json.contains("\"stale_rejected\""));
        assert!(json.contains("\"quarantined\""));
        assert!(json.contains("\"sweep\": {\"grids\":\"fig6+fig7\""));
        assert_eq!(
            json.lines().filter(|l| l.contains("\"workload\"")).count(),
            32 + 16
        );
    }
}
