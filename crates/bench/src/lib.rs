//! # probranch-bench
//!
//! The experiment harness regenerating **every table and figure** of
//! *Architectural Support for Probabilistic Branches* (MICRO 2018):
//!
//! | Paper artifact | Runner | Criterion bench |
//! |----------------|--------|-----------------|
//! | Figure 1 (branch/misprediction breakdown) | [`experiments::fig1`] | `fig1_breakdown` |
//! | Table I (predication/CFD applicability) | [`experiments::table1`] | `table1_applicability` |
//! | Table II (benchmark characteristics) | [`experiments::table2`] | `table2_characteristics` |
//! | Figure 6 (MPKI reduction) | [`experiments::fig6`] | `fig6_mpki` |
//! | Figure 7 (IPC, 4-wide) | [`experiments::fig7`] | `fig7_ipc_4wide` |
//! | Figure 8 (IPC, 8-wide) | [`experiments::fig8`] | `fig8_ipc_8wide` |
//! | Figure 9 (predictor interference) | [`experiments::fig9`] | `fig9_interference` |
//! | Table III (randomness battery) | [`experiments::table3`] | `table3_randomness` |
//! | §VII-D (output accuracy) | [`experiments::accuracy`] | `accuracy_outputs` |
//! | §V-C2 (hardware cost) | [`experiments::hardware_cost`] | — (unit tested) |
//!
//! The `figures` binary prints all of them; set `PROBRANCH_SCALE` to
//! `smoke`, `bench` (default) or `paper` to choose run sizes.
//!
//! Every sweep runs on the deterministic parallel engine of
//! [`probranch_harness`]: pass a [`Jobs`] (worker count) to any runner —
//! the rows are byte-identical whether it computes serially or across
//! all cores. `figures --jobs N` and the `PROBRANCH_JOBS` environment
//! variable control the default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod render;
pub mod service;
pub mod throughput;

pub use experiments::ExperimentScale;
pub use probranch_harness::{run_cells, Cell, Jobs};
