#![allow(unused_imports)]
//! Ablation study beyond the paper's figures: sweeps the PBS design
//! parameters (Prob-BTB entries, in-flight depth, context tracking) and
//! reports MPKI on a representative workload, quantifying each
//! mechanism's contribution.
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn run(prog: &probranch_isa::Program, pbs: PbsConfig) -> f64 {
    let cfg = SimConfig {
        pbs: Some(pbs),
        ..SimConfig::default()
    };
    simulate(prog, &cfg).unwrap().timing.mpki()
}

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::from_env();
    let w = scale.workload();
    println!("ABLATION — PBS design-parameter sweep (MPKI, TAGE-SC-L)");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "base", "pbs", "1-entry", "infl=1", "infl=16", "no-ctx"
    );
    for id in [
        BenchmarkId::Swaptions,
        BenchmarkId::Genetic,
        BenchmarkId::Photon,
        BenchmarkId::Pi,
    ] {
        let b = id.build(w, 12345);
        let prog = b.program();
        let base = simulate(&prog, &SimConfig::default())
            .unwrap()
            .timing
            .mpki();
        let dflt = run(&prog, PbsConfig::default());
        let one = run(
            &prog,
            PbsConfig {
                num_branches: 1,
                ..PbsConfig::default()
            },
        );
        let if1 = run(
            &prog,
            PbsConfig {
                in_flight: 1,
                ..PbsConfig::default()
            },
        );
        let if16 = run(
            &prog,
            PbsConfig {
                in_flight: 16,
                ..PbsConfig::default()
            },
        );
        let noctx = run(
            &prog,
            PbsConfig {
                context_tracking: false,
                ..PbsConfig::default()
            },
        );
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            b.name(),
            base,
            dflt,
            one,
            if1,
            if16,
            noctx
        );
    }
    let prog = BenchmarkId::Pi.build(Scale::Smoke, 1).program();
    c.bench_function("ablation/pi_pbs_1_entry", |b| {
        b.iter(|| {
            run(
                &prog,
                PbsConfig {
                    num_branches: 1,
                    ..PbsConfig::default()
                },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
