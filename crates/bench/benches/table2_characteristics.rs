#![allow(unused_imports)]
//! Regenerates paper Table II (benchmark characteristics) and times a
//! functional workload run.
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

use probranch_pipeline::run_functional;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::table2(&experiments::table2(
            ExperimentScale::from_env(),
            Jobs::from_env()
        ))
    );
    let prog = BenchmarkId::Genetic.build(Scale::Smoke, 1).program();
    c.bench_function("table2/genetic_functional_run", |b| {
        b.iter(|| {
            run_functional(&prog, None, 100_000_000)
                .unwrap()
                .timing
                .instructions
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
