#![allow(unused_imports)]
//! Regenerates the paper's §VII-D output-accuracy results.
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

use probranch_pipeline::run_functional;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::accuracy(&experiments::accuracy(
            ExperimentScale::from_env(),
            Jobs::from_env()
        ))
    );
    println!("{}", render::cost(&experiments::hardware_cost()));
    let prog = BenchmarkId::Photon.build(Scale::Smoke, 1).program();
    c.bench_function("accuracy/photon_pbs_functional", |b| {
        b.iter(|| {
            run_functional(&prog, Some(PbsConfig::default()), 100_000_000)
                .unwrap()
                .timing
                .instructions
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
