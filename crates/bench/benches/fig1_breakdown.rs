#![allow(unused_imports)]
//! Regenerates paper Figure 1 (probabilistic vs regular branch and
//! misprediction breakdown) and times the underlying baseline
//! simulation.
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::fig1(&experiments::fig1(
            ExperimentScale::from_env(),
            Jobs::from_env()
        ))
    );
    let prog = BenchmarkId::Dop.build(Scale::Smoke, 1).program();
    c.bench_function("fig1/dop_tournament_baseline_sim", |b| {
        let cfg = SimConfig {
            predictor: PredictorChoice::Tournament,
            ..SimConfig::default()
        };
        b.iter(|| simulate(&prog, &cfg).unwrap().timing.mpki())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
