#![allow(unused_imports)]
//! Regenerates paper Table I (predication / CFD applicability) and
//! times the static analyses.
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn bench(c: &mut Criterion) {
    println!("{}", render::table1(&experiments::table1(Jobs::from_env())));
    let prog = BenchmarkId::Photon.build(Scale::Smoke, 1).program();
    c.bench_function("table1/photon_predication_and_cfd_analysis", |b| {
        b.iter(|| {
            let p = probranch_compiler::predication::analyze_program(&prog);
            let f = probranch_compiler::cfd::analyze_program(&prog);
            (p.len(), f.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
