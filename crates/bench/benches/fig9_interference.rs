#![allow(unused_imports)]
//! Regenerates paper Figure 9 (branch-predictor interference from
//! probabilistic branches).
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::fig9(&experiments::fig9(
            ExperimentScale::from_env(),
            Jobs::from_env()
        ))
    );
    let prog = BenchmarkId::Bandit.build(Scale::Smoke, 1).program();
    c.bench_function("fig9/bandit_filtered_predictor_sim", |b| {
        let cfg = SimConfig {
            predictor: PredictorChoice::Tournament,
            filter_prob_from_predictor: true,
            ..SimConfig::default()
        };
        b.iter(|| simulate(&prog, &cfg).unwrap().timing.mpki_regular())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
