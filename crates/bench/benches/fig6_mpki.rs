#![allow(unused_imports)]
//! Regenerates paper Figure 6 (MPKI reduction through PBS) and times
//! the PBS-enabled simulation.
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::fig6(&experiments::fig6(
            ExperimentScale::from_env(),
            Jobs::from_env()
        ))
    );
    let prog = BenchmarkId::Pi.build(Scale::Smoke, 1).program();
    c.bench_function("fig6/pi_tage_pbs_sim", |b| {
        let cfg = SimConfig {
            pbs: Some(PbsConfig::default()),
            ..SimConfig::default()
        };
        b.iter(|| simulate(&prog, &cfg).unwrap().timing.mpki())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
