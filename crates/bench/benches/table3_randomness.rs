#![allow(unused_imports)]
//! Regenerates paper Table III (randomness battery over original vs
//! PBS-processed value streams).
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::table3(&experiments::table3(
            ExperimentScale::from_env(),
            Jobs::from_env()
        ))
    );
    let (orig, _) = experiments::uniform_stream_pair(BenchmarkId::Pi, Scale::Bench, 7).unwrap();
    c.bench_function("table3/battery_20k_values", |b| {
        b.iter(|| probranch_stats::run_battery(&orig).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
