//! `sim-throughput`: engine-speed microbenchmarks — the fused engine
//! against the unfused reference on one representative cell from each
//! side of the PBS split, plus the predecode pass itself.
//!
//! For the full measured-MIPS grid (and the committed
//! `BENCH_throughput.json` baseline), use:
//!
//! ```text
//! cargo run --release -p probranch-bench --bin figures -- --emit-bench-json BENCH_throughput.json
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probranch_pipeline::{
    simulate, simulate_reference, DecodedProgram, PredictorChoice, SimConfig,
};
use probranch_workloads::{BenchmarkId, Scale};

fn config(pbs: bool) -> SimConfig {
    let cfg = SimConfig::default().predictor(PredictorChoice::TageScL);
    if pbs {
        cfg.with_pbs()
    } else {
        cfg
    }
}

fn bench_engines(c: &mut Criterion) {
    let pi = BenchmarkId::Pi.build(Scale::Smoke, 7).program();
    let bandit = BenchmarkId::Bandit.build(Scale::Smoke, 7).program();

    c.bench_function("sim-throughput/fused/pi+pbs", |b| {
        b.iter(|| {
            simulate(black_box(&pi), &config(true))
                .unwrap()
                .timing
                .cycles
        })
    });
    c.bench_function("sim-throughput/reference/pi+pbs", |b| {
        b.iter(|| {
            simulate_reference(black_box(&pi), &config(true))
                .unwrap()
                .timing
                .cycles
        })
    });
    c.bench_function("sim-throughput/fused/bandit", |b| {
        b.iter(|| {
            simulate(black_box(&bandit), &config(false))
                .unwrap()
                .timing
                .cycles
        })
    });
    c.bench_function("sim-throughput/reference/bandit", |b| {
        b.iter(|| {
            simulate_reference(black_box(&bandit), &config(false))
                .unwrap()
                .timing
                .cycles
        })
    });
    c.bench_function("sim-throughput/predecode/pi", |b| {
        b.iter(|| DecodedProgram::of(black_box(&pi)).len())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
);
criterion_main!(benches);
