#![allow(unused_imports)]
//! Regenerates paper Figure 8 (normalized IPC, 8-wide core).
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

use probranch_pipeline::OooConfig;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::ipc(
            &experiments::fig8(ExperimentScale::from_env(), Jobs::from_env()),
            "FIG 8 — normalized IPC, 8-wide / 256-entry ROB"
        )
    );
    let prog = BenchmarkId::Greeks.build(Scale::Smoke, 1).program();
    c.bench_function("fig8/greeks_8wide_pbs_sim", |b| {
        let cfg = SimConfig {
            core: OooConfig::wide(),
            pbs: Some(PbsConfig::default()),
            ..SimConfig::default()
        };
        b.iter(|| simulate(&prog, &cfg).unwrap().timing.ipc())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
