#![allow(unused_imports)]
//! Regenerates paper Figure 7 (normalized IPC, 4-wide core).
use criterion::{criterion_group, criterion_main, Criterion};
use probranch_bench::{experiments, render, ExperimentScale, Jobs};
use probranch_core::PbsConfig;
use probranch_pipeline::{simulate, PredictorChoice, SimConfig};
use probranch_workloads::{Benchmark, BenchmarkId, Scale};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render::ipc(
            &experiments::fig7(ExperimentScale::from_env(), Jobs::from_env()),
            "FIG 7 — normalized IPC, 4-wide / 168-entry ROB"
        )
    );
    let prog = BenchmarkId::Greeks.build(Scale::Smoke, 1).program();
    c.bench_function("fig7/greeks_4wide_pbs_sim", |b| {
        let cfg = SimConfig {
            pbs: Some(PbsConfig::default()),
            ..SimConfig::default()
        };
        b.iter(|| simulate(&prog, &cfg).unwrap().timing.ipc())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
