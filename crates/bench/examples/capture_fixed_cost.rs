//! Per-capture fixed-cost probe: a near-empty program isolates setup
//! (stream construction, block compile, chunk sizing) from per-record
//! work. Diagnostic only.
use std::time::Instant;

use probranch_isa::{CmpOp, ProgramBuilder, Reg};
use probranch_pipeline::{
    with_capture_tier, CaptureTier, DynTrace, SimConfig, TraceChunk, TraceStream,
};

fn main() {
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(Reg::R1, 0);
    b.bind(top);
    b.add(Reg::R1, Reg::R1, 1);
    b.br(CmpOp::Lt, Reg::R1, 50, top);
    b.halt();
    let program = b.build().unwrap();
    let cfg = SimConfig::default();
    for (name, tier) in [
        ("interp", CaptureTier::Interp),
        ("block", CaptureTier::Block),
        ("gen", CaptureTier::Generated),
    ] {
        let mut best = f64::INFINITY;
        let mut best_new = f64::INFINITY;
        let mut best_fill = f64::INFINITY;
        for _ in 0..2000 {
            let t0 = Instant::now();
            let tr = with_capture_tier(tier, || DynTrace::capture(&program, &cfg)).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(tr.instructions(), 102);
            if dt < best {
                best = dt;
            }
            // phase split: construction vs fill
            let t1 = Instant::now();
            let mut stream = with_capture_tier(tier, || TraceStream::new(&program, &cfg));
            let d_new = t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let mut chunk = TraceChunk::with_chunk_capacity();
            while stream.fill(&mut chunk).unwrap() {}
            let d_fill = t2.elapsed().as_secs_f64();
            if d_new < best_new {
                best_new = d_new;
            }
            if d_fill < best_fill {
                best_fill = d_fill;
            }
        }
        println!(
            "{name:<8} fixed cost ~{:6.1} us  (new ~{:6.1} us, fill ~{:6.1} us)",
            best * 1e6,
            best_new * 1e6,
            best_fill * 1e6
        );
    }
}
