//! In-process capture-tier A/B: alternates tiers per iteration inside one
//! process so CPU frequency drift between runs cancels out. Diagnostic only.

use std::time::Instant;

use probranch_pipeline::{with_capture_tier, CaptureTier, DynTrace, SimConfig};
use probranch_workloads::{BenchmarkId, Scale};

const REPS: usize = 7;

fn main() {
    let ids = [
        BenchmarkId::Pi,
        BenchmarkId::McInteg,
        BenchmarkId::Photon,
        BenchmarkId::Swaptions,
        BenchmarkId::Genetic,
        BenchmarkId::Bandit,
        BenchmarkId::Greeks,
        BenchmarkId::Dop,
    ];
    let tiers = [
        ("interp", CaptureTier::Interp),
        ("block", CaptureTier::Block),
        ("gen", CaptureTier::Generated),
    ];
    for id in ids {
        for pbs in [false, true] {
            let bench = id.build(Scale::Bench, 7);
            let program = bench.program();
            let mut cfg = SimConfig::default();
            if pbs {
                cfg.pbs = Some(probranch_core::PbsConfig::default());
            }
            // warm up once per tier
            for (_, t) in tiers {
                with_capture_tier(t, || DynTrace::capture(&program, &cfg)).unwrap();
            }
            let mut best = [f64::INFINITY; 3];
            let mut insts = 0u64;
            for _ in 0..REPS {
                for (i, (_, t)) in tiers.iter().enumerate() {
                    let t0 = Instant::now();
                    let tr = with_capture_tier(*t, || DynTrace::capture(&program, &cfg)).unwrap();
                    let dt = t0.elapsed().as_secs_f64();
                    insts = tr.instructions();
                    if dt < best[i] {
                        best[i] = dt;
                    }
                }
            }
            let mips = |s: f64| insts as f64 / s / 1e6;
            println!(
                "{:<18} pbs={:<5} insts {:>10} interp {:7.1}  block {:7.1} ({:4.2}x)  gen {:7.1} ({:4.2}x)",
                bench.name(),
                pbs,
                insts,
                mips(best[0]),
                mips(best[1]),
                best[0] / best[1],
                mips(best[2]),
                best[0] / best[2],
            );
        }
    }
}
