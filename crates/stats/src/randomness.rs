//! A DieHarder-style randomness battery (the paper's Table III
//! instrument). The paper ran DieHarder 3.31.1's 114 test cases over
//! the random-value streams "in the order as they get processed under
//! PBS" versus the original program order; we run a bespoke 14-case
//! battery over the same two streams, with DieHarder's PASS / WEAK /
//! FAIL classification conventions (FAIL below 10⁻⁶, WEAK below 0.005).
//!
//! The input is the stream of uniform `[0,1)` values as consumed by the
//! algorithm. Bit-level tests use the top 32 bits of each value.

use crate::numerics::{chi2_sf, ks_sf, normal_p2};

/// DieHarder-style classification of one test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// p-value in the unremarkable range.
    Pass,
    /// Suspicious p-value (`p < 0.005`), as DieHarder flags WEAK.
    Weak,
    /// Overwhelming rejection (`p < 10⁻⁶`).
    Fail,
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Pass => write!(f, "PASS"),
            Outcome::Weak => write!(f, "WEAK"),
            Outcome::Fail => write!(f, "FAIL"),
        }
    }
}

/// One battery test result.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test case name.
    pub name: &'static str,
    /// The p-value.
    pub p_value: f64,
    /// Its classification.
    pub outcome: Outcome,
}

fn classify(p: f64) -> Outcome {
    if p < 1e-6 {
        Outcome::Fail
    } else if p < 0.005 {
        Outcome::Weak
    } else {
        Outcome::Pass
    }
}

fn result(name: &'static str, p: f64) -> TestResult {
    TestResult {
        name,
        p_value: p,
        outcome: classify(p),
    }
}

/// Aggregate PASS/WEAK/FAIL counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatteryCounts {
    /// Tests classified PASS.
    pub pass: usize,
    /// Tests classified WEAK.
    pub weak: usize,
    /// Tests classified FAIL.
    pub fail: usize,
}

impl BatteryCounts {
    /// Tallies a result list.
    pub fn of(results: &[TestResult]) -> BatteryCounts {
        let mut c = BatteryCounts::default();
        for r in results {
            match r.outcome {
                Outcome::Pass => c.pass += 1,
                Outcome::Weak => c.weak += 1,
                Outcome::Fail => c.fail += 1,
            }
        }
        c
    }

    /// Total cases.
    pub fn total(&self) -> usize {
        self.pass + self.weak + self.fail
    }
}

fn to_bits(values: &[f64]) -> Vec<u32> {
    values
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0 - 1e-12) * 4294967296.0) as u32)
        .collect()
}

fn bit_iter(words: &[u32]) -> impl Iterator<Item = bool> + '_ {
    words
        .iter()
        .flat_map(|w| (0..32).map(move |b| (w >> b) & 1 == 1))
}

fn monobit(words: &[u32]) -> TestResult {
    let n = words.len() * 32;
    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
    let z = (2.0 * ones as f64 - n as f64) / (n as f64).sqrt();
    result("monobit-frequency", normal_p2(z))
}

fn block_frequency(words: &[u32], block_bits: usize) -> TestResult {
    let bits: Vec<bool> = bit_iter(words).collect();
    let blocks = bits.len() / block_bits;
    if blocks < 4 {
        return result("block-frequency", 1.0);
    }
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = bits[b * block_bits..(b + 1) * block_bits]
            .iter()
            .filter(|&&x| x)
            .count();
        let pi = ones as f64 / block_bits as f64;
        chi2 += 4.0 * block_bits as f64 * (pi - 0.5) * (pi - 0.5);
    }
    result("block-frequency", chi2_sf(chi2, blocks as f64))
}

fn runs(words: &[u32]) -> TestResult {
    let bits: Vec<bool> = bit_iter(words).collect();
    let n = bits.len() as f64;
    let n1 = bits.iter().filter(|&&b| b).count() as f64;
    let n0 = n - n1;
    if n1 == 0.0 || n0 == 0.0 {
        return result("runs", 0.0);
    }
    let r = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let mu = 2.0 * n1 * n0 / n + 1.0;
    let var = (mu - 1.0) * (mu - 2.0) / (n - 1.0);
    let z = (r as f64 - mu) / var.sqrt();
    result("runs", normal_p2(z))
}

fn serial_pairs(words: &[u32]) -> TestResult {
    let bits: Vec<bool> = bit_iter(words).collect();
    let mut counts = [0u64; 4];
    for pair in bits.chunks_exact(2) {
        counts[(pair[0] as usize) << 1 | pair[1] as usize] += 1;
    }
    let n: u64 = counts.iter().sum();
    let expect = n as f64 / 4.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expect) * (c as f64 - expect) / expect)
        .sum();
    result("serial-2bit", chi2_sf(chi2, 3.0))
}

fn poker4(words: &[u32]) -> TestResult {
    let mut counts = [0u64; 16];
    for w in words {
        for shift in (0..32).step_by(4) {
            counts[((w >> shift) & 0xf) as usize] += 1;
        }
    }
    let n: u64 = counts.iter().sum();
    let expect = n as f64 / 16.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expect) * (c as f64 - expect) / expect)
        .sum();
    result("poker-4bit", chi2_sf(chi2, 15.0))
}

fn gap_test(values: &[f64]) -> TestResult {
    // Gaps between successive visits to [0, 0.5): geometric(1/2).
    const CATS: usize = 10;
    let mut counts = [0u64; CATS + 1];
    let mut gap = 0usize;
    let mut total = 0u64;
    for &v in values {
        if v < 0.5 {
            counts[gap.min(CATS)] += 1;
            total += 1;
            gap = 0;
        } else {
            gap += 1;
        }
    }
    if total < 50 {
        return result("gap", 1.0);
    }
    let mut chi2 = 0.0;
    for (k, &c) in counts.iter().enumerate() {
        let p = if k < CATS {
            0.5f64.powi(k as i32 + 1)
        } else {
            0.5f64.powi(CATS as i32)
        };
        let e = total as f64 * p;
        chi2 += (c as f64 - e) * (c as f64 - e) / e;
    }
    result("gap", chi2_sf(chi2, CATS as f64))
}

fn ks_uniform(values: &[f64]) -> TestResult {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in value streams"));
    let n = sorted.len();
    let mut d: f64 = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((v - lo).abs()).max((hi - v).abs());
    }
    result("ks-uniformity", ks_sf(d, n))
}

fn autocorrelation(values: &[f64], lag: usize, name: &'static str) -> TestResult {
    if values.len() <= lag + 1 {
        return result(name, 1.0);
    }
    let n = values.len() - lag;
    let mut acc = 0.0;
    for i in 0..n {
        acc += (values[i] - 0.5) * (values[i + lag] - 0.5);
    }
    // Var[(U-1/2)(V-1/2)] = 1/144 for independent uniforms.
    let z = acc / ((n as f64).sqrt() / 12.0);
    result(name, normal_p2(z))
}

fn extreme_of_5(values: &[f64], max: bool) -> TestResult {
    let transformed: Vec<f64> = values
        .chunks_exact(5)
        .map(|c| {
            if max {
                let m = c.iter().cloned().fold(0.0f64, f64::max);
                m.powi(5)
            } else {
                let m = c.iter().cloned().fold(1.0f64, f64::min);
                1.0 - (1.0 - m).powi(5)
            }
        })
        .collect();
    if transformed.len() < 50 {
        return result(if max { "max-of-5" } else { "min-of-5" }, 1.0);
    }
    let inner = ks_uniform(&transformed);
    result(if max { "max-of-5" } else { "min-of-5" }, inner.p_value)
}

fn permutation_triples(values: &[f64]) -> TestResult {
    let mut counts = [0u64; 6];
    for t in values.chunks_exact(3) {
        let (a, b, c) = (t[0], t[1], t[2]);
        let idx = match (a < b, b < c, a < c) {
            (true, true, _) => 0,      // a<b<c
            (true, false, true) => 1,  // a<c<=b
            (true, false, false) => 2, // c<=a<b
            (false, true, true) => 3,  // b<=a<c
            (false, true, false) => 4, // b<c<=a
            (false, false, _) => 5,    // c<=b<=a
        };
        counts[idx] += 1;
    }
    let n: u64 = counts.iter().sum();
    if n < 60 {
        return result("permutation-triples", 1.0);
    }
    let e = n as f64 / 6.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - e) * (c as f64 - e) / e)
        .sum();
    result("permutation-triples", chi2_sf(chi2, 5.0))
}

fn mean_test(values: &[f64]) -> TestResult {
    let n = values.len() as f64;
    let m = values.iter().sum::<f64>() / n;
    let z = (m - 0.5) * (12.0 * n).sqrt();
    result("sample-mean", normal_p2(z))
}

/// Runs the full battery over a stream of `[0,1)` values, returning 14
/// test cases.
///
/// # Panics
///
/// Panics if the stream is shorter than 100 values (the battery needs a
/// minimal sample).
pub fn run_battery(values: &[f64]) -> Vec<TestResult> {
    assert!(
        values.len() >= 100,
        "battery needs at least 100 values, got {}",
        values.len()
    );
    let words = to_bits(values);
    vec![
        monobit(&words),
        block_frequency(&words, 128),
        runs(&words),
        serial_pairs(&words),
        poker4(&words),
        gap_test(values),
        ks_uniform(values),
        autocorrelation(values, 1, "autocorrelation-lag1"),
        autocorrelation(values, 2, "autocorrelation-lag2"),
        autocorrelation(values, 7, "autocorrelation-lag7"),
        extreme_of_5(values, true),
        extreme_of_5(values, false),
        permutation_triples(values),
        mean_test(values),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_rng::{SplitMix64, UniformSource};

    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut r = SplitMix64::seed(seed);
        (0..n).map(|_| r.next_f64()).collect()
    }

    #[test]
    fn good_generator_passes() {
        let values = uniform_stream(42, 20_000);
        let results = run_battery(&values);
        assert_eq!(results.len(), 14);
        let counts = BatteryCounts::of(&results);
        assert_eq!(counts.fail, 0, "{results:?}");
        assert!(counts.weak <= 1, "{results:?}");
    }

    #[test]
    fn several_seeds_pass() {
        for seed in 1..=5 {
            let counts = BatteryCounts::of(&run_battery(&uniform_stream(seed, 10_000)));
            assert_eq!(counts.fail, 0, "seed {seed}");
        }
    }

    #[test]
    fn constant_stream_fails_hard() {
        let values = vec![0.25; 10_000];
        let counts = BatteryCounts::of(&run_battery(&values));
        assert!(counts.fail >= 8, "{counts:?}");
    }

    #[test]
    fn biased_stream_fails_frequency_family() {
        let values: Vec<f64> = uniform_stream(7, 10_000).iter().map(|v| v * 0.5).collect();
        let results = run_battery(&values);
        let failing: Vec<&str> = results
            .iter()
            .filter(|r| r.outcome == Outcome::Fail)
            .map(|r| r.name)
            .collect();
        assert!(failing.contains(&"ks-uniformity"), "{failing:?}");
        assert!(failing.contains(&"sample-mean"), "{failing:?}");
    }

    #[test]
    fn alternating_stream_fails_correlation_family() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 0.1 } else { 0.9 })
            .collect();
        let results = run_battery(&values);
        let failing: Vec<&str> = results
            .iter()
            .filter(|r| r.outcome == Outcome::Fail)
            .map(|r| r.name)
            .collect();
        assert!(failing.contains(&"autocorrelation-lag1"), "{failing:?}");
    }

    #[test]
    fn battery_is_deterministic() {
        let values = uniform_stream(3, 5_000);
        assert_eq!(run_battery(&values), run_battery(&values));
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify(0.5), Outcome::Pass);
        assert_eq!(classify(0.004), Outcome::Weak);
        assert_eq!(classify(1e-7), Outcome::Fail);
        assert_eq!(Outcome::Pass.to_string(), "PASS");
    }

    #[test]
    #[should_panic(expected = "at least 100")]
    fn short_stream_rejected() {
        run_battery(&[0.5; 10]);
    }

    #[test]
    fn counts_tally() {
        let values = uniform_stream(9, 5_000);
        let results = run_battery(&values);
        let counts = BatteryCounts::of(&results);
        assert_eq!(counts.total(), results.len());
    }
}
