//! Special functions needed by the randomness battery: log-gamma,
//! regularized incomplete gamma, chi-square and Kolmogorov–Smirnov tail
//! probabilities, and the normal survival function. Implemented from
//! the classic series/continued-fraction forms (Numerical Recipes
//! style), accurate to ~1e-10 over the battery's ranges.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument");
    const COEFFS: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's continued fraction.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Chi-square survival function: `P(X ≥ x)` for `k` degrees of freedom.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0);
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// Complementary error function via the incomplete gamma relation
/// `erfc(x) = Q(1/2, x²)` for `x ≥ 0` (reflected for negative `x`).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard-normal survival function `P(Z ≥ z)`.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a standard-normal statistic.
pub fn normal_p2(z: f64) -> f64 {
    (2.0 * normal_sf(z.abs())).min(1.0)
}

/// Kolmogorov–Smirnov p-value for statistic `d` with `n` samples
/// (Stephens' asymptotic form).
pub fn ks_sf(d: f64, n: usize) -> f64 {
    if d <= 0.0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
    let mut p = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * t * t).exp();
        p += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * p).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3628800.0f64.ln()).abs() < 1e-9);
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for a in [0.5, 1.0, 3.0, 10.0] {
            for x in [0.1, 1.0, 5.0, 20.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-10, "a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn chi2_critical_values() {
        // Textbook 5% critical values.
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(5.991, 2.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(16.919, 9.0) - 0.05).abs() < 1e-3);
        assert_eq!(chi2_sf(0.0, 4.0), 1.0);
    }

    #[test]
    fn erfc_and_normal() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        assert!((erfc(1.0) - 0.15729920705).abs() < 1e-9);
        assert!((normal_sf(1.959964) - 0.025).abs() < 1e-5);
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_p2(-1.959964) - 0.05).abs() < 1e-5);
        assert!((erfc(-1.0) - (2.0 - 0.15729920705)).abs() < 1e-9);
    }

    #[test]
    fn ks_tail_behaviour() {
        assert_eq!(ks_sf(0.0, 100), 1.0);
        // Large d -> tiny p.
        assert!(ks_sf(0.5, 1000) < 1e-6);
        // The 5% critical value for large n is ~1.358/sqrt(n).
        let n = 10_000;
        let d = 1.358 / (n as f64).sqrt();
        let p = ks_sf(d, n);
        assert!((p - 0.05).abs() < 0.01, "p {p}");
    }

    #[test]
    fn monotonicity() {
        assert!(chi2_sf(1.0, 4.0) > chi2_sf(2.0, 4.0));
        assert!(gamma_p(2.0, 1.0) < gamma_p(2.0, 2.0));
        assert!(ks_sf(0.01, 1000) > ks_sf(0.02, 1000));
    }
}
