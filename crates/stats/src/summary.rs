//! Summary statistics: means, standard deviations, 95% confidence
//! intervals and geometric means.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator). Returns 0 for fewer
/// than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// 95% confidence half-width of the mean (normal approximation), as the
/// paper uses for its Genetic and Table III intervals.
pub fn ci95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

/// Geometric mean (for speedup/IPC aggregation).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean needs positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A mean with its 95% interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Lower 95% bound.
    pub lo: f64,
    /// Upper 95% bound.
    pub hi: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(xs: &[f64]) -> Summary {
        let m = mean(xs);
        let h = ci95(xs);
        Summary {
            mean: m,
            lo: m - h,
            hi: m + h,
            n: xs.len(),
        }
    }

    /// Whether two intervals overlap (the paper's statistical-equality
    /// criterion).
    pub fn overlaps(&self, other: &Summary) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] (n={})",
            self.mean, self.lo, self.hi, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(ci95(&large) < ci95(&small));
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn summary_overlap() {
        let a = Summary::of(&[1.0, 1.1, 0.9, 1.05]);
        let b = Summary::of(&[1.02, 1.08, 0.95, 1.0]);
        assert!(a.overlaps(&b));
        let c = Summary::of(&[9.0, 9.1, 8.9, 9.05]);
        assert!(!a.overlaps(&c));
        assert!(a.to_string().contains("n=4"));
    }
}
