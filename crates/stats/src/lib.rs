//! # probranch-stats
//!
//! Statistics substrate for the `probranch` reproduction of
//! *Architectural Support for Probabilistic Branches* (MICRO 2018):
//!
//! * [`summary`] — means, confidence intervals, geometric means (for the
//!   IPC/MPKI aggregation in Figures 6–9);
//! * [`numerics`] — the special functions behind the tests (log-gamma,
//!   regularized incomplete gamma, chi-square and Kolmogorov–Smirnov
//!   tail probabilities);
//! * [`randomness`] — a DieHarder-style battery classifying test results
//!   as PASS / WEAK / FAIL (the Table III substitute; the paper used
//!   DieHarder 3.31.1's 114 cases, we run a bespoke 16-case battery at
//!   the same p-value conventions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod numerics;
pub mod randomness;
pub mod summary;

pub use randomness::{run_battery, BatteryCounts, Outcome, TestResult};
pub use summary::{ci95, geometric_mean, mean, stddev, Summary};
