//! # probranch-isa
//!
//! A compact 64-bit register instruction set used by the `probranch`
//! reproduction of *Architectural Support for Probabilistic Branches*
//! (Adileh, Lilja, Eeckhout — MICRO 2018).
//!
//! The ISA is deliberately minimal but complete enough to express the
//! paper's eight probabilistic workloads as real instruction streams:
//! integer and floating-point arithmetic (including the transcendental
//! operations needed by Box–Muller and photon transport), loads/stores,
//! compare-and-jump control flow, calls/returns, and the paper's two new
//! probabilistic instructions:
//!
//! * [`Inst::ProbCmp`] — `PROB_CMP optype, Prob_Reg1, Reg2`: compares a
//!   probabilistic value against a condition and registers the value for
//!   the PBS swap machinery;
//! * [`Inst::ProbJmp`] — `PROB_JMP Prob_Reg2, Immediate`: the matching
//!   probabilistic jump, optionally carrying one more probabilistic
//!   register (Category-2 codes) and the jump target.
//!
//! The crate provides:
//!
//! * typed instruction definitions ([`Inst`], [`Reg`], [`Operand`], ...);
//! * a [`ProgramBuilder`] DSL with labels and forward references;
//! * a text assembler/disassembler ([`parse_asm`], [`Inst`]'s `Display`);
//! * a fixed-width binary encoding ([`encode`]) that demonstrates the
//!   paper's "unused bit" ISA-extension alternative: probabilistic
//!   branches are regular `CMP`/`JMP` encodings with a reserved bit set,
//!   so a decoder without PBS support degrades them to regular branches.
//!
//! ## Example
//!
//! ```
//! use probranch_isa::{ProgramBuilder, Reg, CmpOp, Operand};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.label("loop");
//! let done = b.label("done");
//! b.li(Reg::R1, 0);               // i = 0
//! b.bind(loop_top);
//! b.add(Reg::R1, Reg::R1, 1);     // i += 1
//! b.br(CmpOp::Lt, Reg::R1, Operand::imm(10), loop_top);
//! b.bind(done);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert!(program.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod encode;
mod error;
mod inst;
mod op;
mod program;
mod reg;
mod text;

/// Version of the ISA's semantics and encodings, folded into the
/// content hash of persisted dynamic traces: bump it whenever an
/// instruction's meaning, operand encoding or execution class changes,
/// so stale on-disk traces captured under the old semantics are
/// rejected instead of silently replayed.
pub const ISA_VERSION: u32 = 1;

pub use builder::{Label, ProgramBuilder};
pub use encode::{decode, decode_compat, encode, encode_inst, PROB_BIT};
pub use error::IsaError;
pub use inst::{ExecClass, Inst, RegList};
pub use op::{AluOp, CmpOp, FpBinOp, FpUnOp, Operand};
pub use program::{BranchKind, Program, StaticBranch};
pub use reg::Reg;
pub use text::parse_asm;
