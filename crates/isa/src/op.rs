use std::fmt;

use crate::Reg;

/// Second source operand of an integer ALU instruction or comparison:
/// either a register or a sign-extended 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl Operand {
    /// Convenience constructor for an immediate operand.
    pub fn imm(v: i64) -> Operand {
        Operand::Imm(v)
    }

    /// The register, if this operand is a register.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Integer ALU operations (two-source, one-destination).
///
/// Division and remainder are signed; division by zero produces 0 (the
/// emulator's defined semantics, chosen so that simulation never traps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical (unsigned) right shift.
    Shr,
    /// Arithmetic (signed) right shift.
    Sar,
    /// Set-if-less-than, signed: `dst = (src1 < src2) as u64`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }

    /// All ALU operations, for exhaustive testing.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Slt,
        AluOp::Sltu,
    ];
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point two-source operations. Operands are f64 bit patterns in
/// general registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FpBinOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::Add => "fadd",
            FpBinOp::Sub => "fsub",
            FpBinOp::Mul => "fmul",
            FpBinOp::Div => "fdiv",
            FpBinOp::Min => "fmin",
            FpBinOp::Max => "fmax",
        }
    }

    /// All FP binary operations, for exhaustive testing.
    pub const ALL: [FpBinOp; 6] = [
        FpBinOp::Add,
        FpBinOp::Sub,
        FpBinOp::Mul,
        FpBinOp::Div,
        FpBinOp::Min,
        FpBinOp::Max,
    ];
}

impl fmt::Display for FpBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point one-source operations, including the transcendentals
/// needed by Box–Muller (`Ln`, `Sqrt`, `Sin`, `Cos`) and the exponentials
/// used by the financial workloads (`Exp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpUnOp {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Ln,
    Sin,
    Cos,
    Floor,
}

impl FpUnOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpUnOp::Neg => "fneg",
            FpUnOp::Abs => "fabs",
            FpUnOp::Sqrt => "fsqrt",
            FpUnOp::Exp => "fexp",
            FpUnOp::Ln => "fln",
            FpUnOp::Sin => "fsin",
            FpUnOp::Cos => "fcos",
            FpUnOp::Floor => "ffloor",
        }
    }

    /// All FP unary operations, for exhaustive testing.
    pub const ALL: [FpUnOp; 8] = [
        FpUnOp::Neg,
        FpUnOp::Abs,
        FpUnOp::Sqrt,
        FpUnOp::Exp,
        FpUnOp::Ln,
        FpUnOp::Sin,
        FpUnOp::Cos,
        FpUnOp::Floor,
    ];
}

impl fmt::Display for FpUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicates used by `cmp`, fused branches and `PROB_CMP`.
///
/// Integer comparisons are signed; floating-point comparisons follow IEEE
/// semantics (any comparison with NaN is false except `Ne`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Assembler mnemonic fragment (`eq`, `ne`, `lt`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The predicate with operands swapped: `a op b == b op.swap() a`.
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the predicate.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the predicate on signed integers.
    #[inline]
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the predicate on IEEE doubles.
    #[inline]
    pub fn eval_fp(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// All predicates, for exhaustive testing.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg::R3.into();
        assert_eq!(o.as_reg(), Some(Reg::R3));
        let o: Operand = 42i64.into();
        assert_eq!(o.as_reg(), None);
        assert_eq!(o, Operand::imm(42));
    }

    #[test]
    fn cmp_negation_is_involutive() {
        for op in CmpOp::ALL {
            assert_eq!(op.negated().negated(), op);
        }
    }

    #[test]
    fn cmp_swap_is_involutive() {
        for op in CmpOp::ALL {
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn cmp_negation_flips_every_int_outcome() {
        let pairs = [(0i64, 0i64), (1, 2), (2, 1), (-5, 5), (i64::MAX, i64::MIN)];
        for op in CmpOp::ALL {
            for (a, b) in pairs {
                assert_eq!(op.eval_int(a, b), !op.negated().eval_int(a, b));
            }
        }
    }

    #[test]
    fn cmp_swap_matches_swapped_operands() {
        let pairs = [(0i64, 0i64), (1, 2), (2, 1), (-5, 5)];
        for op in CmpOp::ALL {
            for (a, b) in pairs {
                assert_eq!(op.eval_int(a, b), op.swapped().eval_int(b, a));
            }
        }
    }

    #[test]
    fn fp_nan_comparisons() {
        assert!(!CmpOp::Eq.eval_fp(f64::NAN, f64::NAN));
        assert!(CmpOp::Ne.eval_fp(f64::NAN, 1.0));
        assert!(!CmpOp::Lt.eval_fp(f64::NAN, 1.0));
        assert!(!CmpOp::Ge.eval_fp(f64::NAN, 1.0));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in AluOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in FpBinOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in FpUnOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
    }
}
