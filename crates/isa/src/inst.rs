use crate::{AluOp, CmpOp, FpBinOp, FpUnOp, Operand, Reg};

/// A small inline list of registers, as returned by [`Inst::defs`] and
/// [`Inst::uses`]. Holds at most four registers without heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegList {
    regs: [Option<Reg>; 4],
    len: u8,
}

impl RegList {
    /// An empty list.
    pub fn new() -> RegList {
        RegList::default()
    }

    /// Appends a register.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds four registers (no instruction in
    /// this ISA names more than four).
    pub fn push(&mut self, r: Reg) {
        assert!(self.len < 4, "RegList overflow");
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of registers in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the list contains `r`.
    pub fn contains(&self, r: Reg) -> bool {
        self.iter().any(|x| x == r)
    }

    /// Iterates over the registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().take(self.len as usize).filter_map(|r| *r)
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegList {
        let mut l = RegList::new();
        for r in iter {
            l.push(r);
        }
        l
    }
}

/// Execution-resource class of an instruction, used by the out-of-order
/// timing model to assign functional-unit latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExecClass {
    /// Single-cycle integer operations (add, logic, moves, compares).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// FP add/sub/min/max and conversions.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide and square root.
    FpDiv,
    /// Transcendental FP (exp, ln, sin, cos).
    FpLong,
    Load,
    Store,
    /// Control transfer (branches, jumps, calls, returns).
    Branch,
    /// No functional unit (nop, halt, out).
    Other,
}

impl ExecClass {
    /// Number of execution classes (the size of a latency table indexed
    /// by [`ExecClass::index`]).
    pub const COUNT: usize = 11;

    /// A dense index in `0..COUNT`, stable across runs — timing models
    /// resolve per-class latencies into a flat table once and index it
    /// per dynamic instruction instead of re-matching the enum.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// One `probranch` instruction.
///
/// Control-transfer targets are absolute instruction indices within the
/// program (the machine has a Harvard organization; the program counter is
/// an instruction index).
///
/// The two probabilistic instructions mirror the paper's ISA extension:
///
/// * [`Inst::ProbCmp`] compares the probabilistic value in `prob` against
///   `rhs` under predicate `op` and sets the condition flag, while
///   registering `prob` with the PBS hardware for value swapping.
/// * [`Inst::ProbJmp`] transfers control to `target` if the flag is set.
///   `prob` optionally names one more register carrying a probabilistic
///   value to swap (Category-2 codes). When more than two values need
///   replacement, additional `ProbJmp` instructions with `target: None`
///   precede the final jumping one, exactly as in the paper
///   ("with `Immediate` set to zero for all but the last `PROB_JMP`").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Integer ALU operation: `dst = src1 op src2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        src1: Reg,
        /// Second source operand.
        src2: Operand,
    },
    /// Load a 64-bit immediate: `dst = imm`.
    Li {
        /// Destination register.
        dst: Reg,
        /// The immediate bit pattern (may encode an `f64`).
        imm: u64,
    },
    /// Register move: `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Floating-point two-source operation.
    FpBin {
        /// Operation.
        op: FpBinOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        src1: Reg,
        /// Second source register.
        src2: Reg,
    },
    /// Floating-point one-source operation.
    FpUn {
        /// Operation.
        op: FpUnOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Signed integer to double conversion.
    IntToFp {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Double to signed integer conversion (truncating).
    FpToInt {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Conditional move (select), the predication primitive:
    /// `dst = if cond != 0 { if_true } else { if_false }`.
    CMov {
        /// Destination register.
        dst: Reg,
        /// Condition register (any nonzero value selects `if_true`).
        cond: Reg,
        /// Value selected when the condition holds.
        if_true: Reg,
        /// Value selected otherwise.
        if_false: Reg,
    },
    /// Load a 64-bit word: `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset (must keep the address 8-byte aligned).
        offset: i64,
    },
    /// Store a 64-bit word: `mem[base + offset] = src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset (must keep the address 8-byte aligned).
        offset: i64,
    },
    /// Compare and set the condition flag: `flag = lhs op rhs`.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Interpret operands as IEEE doubles.
        fp: bool,
        /// Left-hand register.
        lhs: Reg,
        /// Right-hand operand. For `fp` compares an immediate holds the
        /// raw `f64` bit pattern.
        rhs: Operand,
    },
    /// Jump to `target` if the condition flag is set.
    Jf {
        /// Absolute instruction index.
        target: u32,
    },
    /// Fused compare-and-branch: branch to `target` if `lhs op rhs`.
    Br {
        /// Predicate.
        op: CmpOp,
        /// Interpret operands as IEEE doubles.
        fp: bool,
        /// Left-hand register.
        lhs: Reg,
        /// Right-hand operand.
        rhs: Operand,
        /// Absolute instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jmp {
        /// Absolute instruction index.
        target: u32,
    },
    /// Call: pushes the return address on the machine's call stack.
    Call {
        /// Absolute instruction index of the callee entry.
        target: u32,
    },
    /// Return to the most recent call site.
    Ret,
    /// `PROB_CMP optype, Prob_Reg1, Reg2` — probabilistic compare.
    ProbCmp {
        /// Predicate.
        op: CmpOp,
        /// Interpret operands as IEEE doubles.
        fp: bool,
        /// Register holding the probabilistic value. Also a destination:
        /// PBS overwrites it with the value matching the fetched path.
        prob: Reg,
        /// The comparison condition (the paper's `Const-Val` safety field
        /// snapshots this operand's value).
        rhs: Operand,
    },
    /// `PROB_JMP Prob_Reg2, Immediate` — probabilistic jump.
    ProbJmp {
        /// Optional extra probabilistic register to swap. Also a
        /// destination (see [`Inst::ProbCmp`]).
        prob: Option<Reg>,
        /// Jump target; `None` marks an intermediate `PROB_JMP` that only
        /// registers a swap register (paper: `Immediate` = 0).
        target: Option<u32>,
    },
    /// Emit the value of `src` on output channel `port` (used for output
    /// accuracy checks and random-stream recording).
    Out {
        /// Source register.
        src: Reg,
        /// Output channel.
        port: u16,
    },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Registers written by this instruction.
    ///
    /// `ProbCmp`/`ProbJmp` list their probabilistic registers as
    /// destinations: the paper specifies them as destination operands "to
    /// preserve the read-after-write dependency" for instructions after
    /// the branch.
    #[inline]
    pub fn defs(&self) -> RegList {
        let mut l = RegList::new();
        match *self {
            Inst::Alu { dst, .. }
            | Inst::Li { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::FpBin { dst, .. }
            | Inst::FpUn { dst, .. }
            | Inst::IntToFp { dst, .. }
            | Inst::FpToInt { dst, .. }
            | Inst::CMov { dst, .. }
            | Inst::Load { dst, .. } => l.push(dst),
            Inst::ProbCmp { prob, .. } => l.push(prob),
            Inst::ProbJmp { prob: Some(p), .. } => l.push(p),
            _ => {}
        }
        l
    }

    /// Registers read by this instruction.
    #[inline]
    pub fn uses(&self) -> RegList {
        let mut l = RegList::new();
        fn op_use(l: &mut RegList, o: Operand) {
            if let Operand::Reg(r) = o {
                l.push(r);
            }
        }
        match *self {
            Inst::Alu { src1, src2, .. } => {
                l.push(src1);
                op_use(&mut l, src2);
            }
            Inst::Mov { src, .. }
            | Inst::FpUn { src, .. }
            | Inst::IntToFp { src, .. }
            | Inst::FpToInt { src, .. } => l.push(src),
            Inst::FpBin { src1, src2, .. } => {
                l.push(src1);
                l.push(src2);
            }
            Inst::CMov {
                cond,
                if_true,
                if_false,
                ..
            } => {
                l.push(cond);
                l.push(if_true);
                l.push(if_false);
            }
            Inst::Load { base, .. } => l.push(base),
            Inst::Store { src, base, .. } => {
                l.push(src);
                l.push(base);
            }
            Inst::Cmp { lhs, rhs, .. } | Inst::Br { lhs, rhs, .. } => {
                l.push(lhs);
                op_use(&mut l, rhs);
            }
            Inst::ProbCmp { prob, rhs, .. } => {
                l.push(prob);
                op_use(&mut l, rhs);
            }
            Inst::ProbJmp { prob: Some(p), .. } => l.push(p),
            Inst::Out { src, .. } => l.push(src),
            _ => {}
        }
        l
    }

    /// Whether this is a conditional branch (its direction is predicted or
    /// PBS-directed): `Br`, `Jf`, or a jumping `ProbJmp`.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. }
                | Inst::Jf { .. }
                | Inst::ProbJmp {
                    target: Some(_),
                    ..
                }
        )
    }

    /// Whether this is one of the probabilistic instructions.
    #[inline]
    pub fn is_prob(&self) -> bool {
        matches!(self, Inst::ProbCmp { .. } | Inst::ProbJmp { .. })
    }

    /// Whether this instruction can redirect control flow.
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jf { .. }
                | Inst::Br { .. }
                | Inst::Jmp { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::ProbJmp {
                    target: Some(_),
                    ..
                }
                | Inst::Halt
        )
    }

    /// The static target of a direct control transfer, if any.
    #[inline]
    pub fn target(&self) -> Option<u32> {
        match *self {
            Inst::Jf { target }
            | Inst::Br { target, .. }
            | Inst::Jmp { target }
            | Inst::Call { target } => Some(target),
            Inst::ProbJmp { target, .. } => target,
            _ => None,
        }
    }

    /// Rewrites the static target of a direct control transfer.
    ///
    /// Returns `false` (leaving the instruction unchanged) when the
    /// instruction has no target.
    pub fn set_target(&mut self, new: u32) -> bool {
        match self {
            Inst::Jf { target }
            | Inst::Br { target, .. }
            | Inst::Jmp { target }
            | Inst::Call { target } => {
                *target = new;
                true
            }
            Inst::ProbJmp {
                target: Some(t), ..
            } => {
                *t = new;
                true
            }
            _ => false,
        }
    }

    /// The functional-unit class used by the timing model.
    #[inline]
    pub fn exec_class(&self) -> ExecClass {
        match self {
            Inst::Alu { op, .. } => match op {
                AluOp::Mul => ExecClass::IntMul,
                AluOp::Div | AluOp::Rem => ExecClass::IntDiv,
                _ => ExecClass::IntAlu,
            },
            Inst::Li { .. } | Inst::Mov { .. } | Inst::CMov { .. } | Inst::Cmp { .. } => {
                ExecClass::IntAlu
            }
            Inst::FpBin { op, .. } => match op {
                FpBinOp::Mul => ExecClass::FpMul,
                FpBinOp::Div => ExecClass::FpDiv,
                _ => ExecClass::FpAdd,
            },
            Inst::FpUn { op, .. } => match op {
                FpUnOp::Sqrt => ExecClass::FpDiv,
                FpUnOp::Exp | FpUnOp::Ln | FpUnOp::Sin | FpUnOp::Cos => ExecClass::FpLong,
                _ => ExecClass::FpAdd,
            },
            Inst::IntToFp { .. } | Inst::FpToInt { .. } => ExecClass::FpAdd,
            Inst::Load { .. } => ExecClass::Load,
            Inst::Store { .. } => ExecClass::Store,
            Inst::Jf { .. }
            | Inst::Br { .. }
            | Inst::Jmp { .. }
            | Inst::Call { .. }
            | Inst::Ret
            | Inst::ProbCmp { .. }
            | Inst::ProbJmp { .. } => ExecClass::Branch,
            Inst::Out { .. } | Inst::Halt | Inst::Nop => ExecClass::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reglist_push_and_iter() {
        let mut l = RegList::new();
        assert!(l.is_empty());
        l.push(Reg::R1);
        l.push(Reg::R2);
        assert_eq!(l.len(), 2);
        assert!(l.contains(Reg::R1));
        assert!(!l.contains(Reg::R3));
        let v: Vec<Reg> = l.iter().collect();
        assert_eq!(v, vec![Reg::R1, Reg::R2]);
    }

    #[test]
    #[should_panic(expected = "RegList overflow")]
    fn reglist_overflow_panics() {
        let mut l = RegList::new();
        for _ in 0..5 {
            l.push(Reg::R0);
        }
    }

    #[test]
    fn defs_and_uses_alu() {
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Operand::Reg(Reg::R3),
        };
        assert!(i.defs().contains(Reg::R1));
        assert!(i.uses().contains(Reg::R2));
        assert!(i.uses().contains(Reg::R3));
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Operand::imm(5),
        };
        assert_eq!(i.uses().len(), 1);
    }

    #[test]
    fn prob_cmp_register_is_both_def_and_use() {
        // Paper Section V-A3: "Both PROB_CMP and PROB_JMP specify
        // probabilistic registers as destination registers to preserve the
        // read-after-write dependency."
        let i = Inst::ProbCmp {
            op: CmpOp::Lt,
            fp: true,
            prob: Reg::R4,
            rhs: Operand::Reg(Reg::R5),
        };
        assert!(i.defs().contains(Reg::R4));
        assert!(i.uses().contains(Reg::R4));
        let j = Inst::ProbJmp {
            prob: Some(Reg::R6),
            target: Some(10),
        };
        assert!(j.defs().contains(Reg::R6));
        assert!(j.uses().contains(Reg::R6));
        let j = Inst::ProbJmp {
            prob: None,
            target: Some(10),
        };
        assert!(j.defs().is_empty());
        assert!(j.uses().is_empty());
    }

    #[test]
    fn branch_classification() {
        assert!(Inst::Br {
            op: CmpOp::Lt,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(0),
            target: 3
        }
        .is_cond_branch());
        assert!(Inst::Jf { target: 3 }.is_cond_branch());
        assert!(Inst::ProbJmp {
            prob: None,
            target: Some(3)
        }
        .is_cond_branch());
        assert!(!Inst::ProbJmp {
            prob: Some(Reg::R1),
            target: None
        }
        .is_cond_branch());
        assert!(!Inst::Jmp { target: 3 }.is_cond_branch());
        assert!(Inst::Jmp { target: 3 }.is_control());
        assert!(Inst::Ret.is_control());
        assert!(!Inst::Nop.is_control());
    }

    #[test]
    fn prob_classification() {
        assert!(Inst::ProbCmp {
            op: CmpOp::Lt,
            fp: false,
            prob: Reg::R1,
            rhs: Operand::imm(0)
        }
        .is_prob());
        assert!(Inst::ProbJmp {
            prob: None,
            target: None
        }
        .is_prob());
        assert!(!Inst::Cmp {
            op: CmpOp::Lt,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(0)
        }
        .is_prob());
    }

    #[test]
    fn target_get_and_set() {
        let mut i = Inst::Br {
            op: CmpOp::Lt,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(0),
            target: 3,
        };
        assert_eq!(i.target(), Some(3));
        assert!(i.set_target(9));
        assert_eq!(i.target(), Some(9));
        let mut n = Inst::Nop;
        assert!(!n.set_target(1));
        assert_eq!(n.target(), None);
        assert_eq!(
            Inst::ProbJmp {
                prob: None,
                target: None
            }
            .target(),
            None
        );
    }

    #[test]
    fn exec_classes() {
        assert_eq!(
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg::R1,
                src1: Reg::R1,
                src2: Operand::imm(2)
            }
            .exec_class(),
            ExecClass::IntMul
        );
        assert_eq!(
            Inst::Alu {
                op: AluOp::Div,
                dst: Reg::R1,
                src1: Reg::R1,
                src2: Operand::imm(2)
            }
            .exec_class(),
            ExecClass::IntDiv
        );
        assert_eq!(
            Inst::FpUn {
                op: FpUnOp::Exp,
                dst: Reg::R1,
                src: Reg::R1
            }
            .exec_class(),
            ExecClass::FpLong
        );
        assert_eq!(
            Inst::FpUn {
                op: FpUnOp::Sqrt,
                dst: Reg::R1,
                src: Reg::R1
            }
            .exec_class(),
            ExecClass::FpDiv
        );
        assert_eq!(
            Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0
            }
            .exec_class(),
            ExecClass::Load
        );
        assert_eq!(Inst::Halt.exec_class(), ExecClass::Other);
        assert_eq!(Inst::Ret.exec_class(), ExecClass::Branch);
    }
}
