//! Text assembler and disassembler.
//!
//! The textual syntax is line oriented. `;` and `#` start comments,
//! `name:` binds a label, and branch targets may be written as label
//! names or absolute instruction indices. The [`std::fmt::Display`]
//! implementation for [`Inst`] produces exactly this syntax (with numeric
//! targets), so `parse_asm(program.to_string())` round-trips.

use std::collections::HashMap;
use std::fmt;

use crate::{AluOp, CmpOp, FpBinOp, FpUnOp, Inst, IsaError, Operand, Program, Reg};

fn fmt_operand(f: &mut fmt::Formatter<'_>, fp: bool, o: Operand) -> fmt::Result {
    match o {
        Operand::Reg(r) => write!(f, "{r}"),
        Operand::Imm(v) if fp => write!(f, "{:?}", f64::from_bits(v as u64)),
        Operand::Imm(v) => write!(f, "{v}"),
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                write!(f, "{op} {dst}, {src1}, ")?;
                fmt_operand(f, false, src2)
            }
            Inst::Li { dst, imm } => write!(f, "li {dst}, {}", imm as i64),
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::FpBin {
                op,
                dst,
                src1,
                src2,
            } => write!(f, "{op} {dst}, {src1}, {src2}"),
            Inst::FpUn { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Inst::IntToFp { dst, src } => write!(f, "itof {dst}, {src}"),
            Inst::FpToInt { dst, src } => write!(f, "ftoi {dst}, {src}"),
            Inst::CMov {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                write!(f, "cmov {dst}, {cond}, {if_true}, {if_false}")
            }
            Inst::Load { dst, base, offset } => write!(f, "ld {dst}, {offset}({base})"),
            Inst::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Inst::Cmp { op, fp, lhs, rhs } => {
                write!(f, "{} {op}, {lhs}, ", if fp { "fcmp" } else { "cmp" })?;
                fmt_operand(f, fp, rhs)
            }
            Inst::Jf { target } => write!(f, "jf {target}"),
            Inst::Br {
                op,
                fp,
                lhs,
                rhs,
                target,
            } => {
                write!(f, "{} {op}, {lhs}, ", if fp { "fbr" } else { "br" })?;
                fmt_operand(f, fp, rhs)?;
                write!(f, ", {target}")
            }
            Inst::Jmp { target } => write!(f, "jmp {target}"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::Ret => write!(f, "ret"),
            Inst::ProbCmp { op, fp, prob, rhs } => {
                write!(
                    f,
                    "{} {op}, {prob}, ",
                    if fp { "prob_fcmp" } else { "prob_cmp" }
                )?;
                fmt_operand(f, fp, rhs)
            }
            Inst::ProbJmp { prob, target } => match (prob, target) {
                (Some(p), Some(t)) => write!(f, "prob_jmp {p}, {t}"),
                (None, Some(t)) => write!(f, "prob_jmp -, {t}"),
                (Some(p), None) => write!(f, "prob_jmp {p}"),
                (None, None) => write!(f, "prob_jmp -"),
            },
            Inst::Out { src, port } => write!(f, "out {src}, {port}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

struct LineCtx<'a> {
    line_no: usize,
    labels: &'a HashMap<String, u32>,
}

impl LineCtx<'_> {
    fn err(&self, msg: impl Into<String>) -> IsaError {
        IsaError::Parse {
            line: self.line_no,
            msg: msg.into(),
        }
    }

    fn reg(&self, tok: &str) -> Result<Reg, IsaError> {
        let idx = tok
            .strip_prefix('r')
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| self.err(format!("expected register, found `{tok}`")))?;
        Reg::new(idx).map_err(|_| self.err(format!("register index out of range: `{tok}`")))
    }

    fn int(&self, tok: &str) -> Result<i64, IsaError> {
        let (neg, body) = match tok.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, tok),
        };
        // Parse the magnitude as u64 and wrap, so the full u64 range of
        // `li` immediates (printed as negative i64) round-trips,
        // including i64::MIN.
        let parsed = if let Some(hex) = body.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            body.parse::<u64>()
        };
        let v = parsed.map_err(|_| self.err(format!("invalid integer `{tok}`")))? as i64;
        Ok(if neg { v.wrapping_neg() } else { v })
    }

    fn operand(&self, tok: &str, fp: bool) -> Result<Operand, IsaError> {
        if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
            return Ok(Operand::Reg(self.reg(tok)?));
        }
        if fp {
            let v: f64 = tok
                .parse()
                .map_err(|_| self.err(format!("invalid float `{tok}`")))?;
            Ok(Operand::Imm(v.to_bits() as i64))
        } else {
            Ok(Operand::Imm(self.int(tok)?))
        }
    }

    fn target(&self, tok: &str) -> Result<u32, IsaError> {
        if let Some(&addr) = self.labels.get(tok) {
            return Ok(addr);
        }
        tok.parse::<u32>()
            .map_err(|_| self.err(format!("unknown label or invalid target `{tok}`")))
    }

    fn cmp_op(&self, tok: &str) -> Result<CmpOp, IsaError> {
        CmpOp::ALL
            .into_iter()
            .find(|c| c.mnemonic() == tok)
            .ok_or_else(|| self.err(format!("invalid comparison op `{tok}`")))
    }

    fn mem_operand(&self, tok: &str) -> Result<(Reg, i64), IsaError> {
        // `offset(base)`
        let open = tok
            .find('(')
            .ok_or_else(|| self.err(format!("expected `offset(base)`, found `{tok}`")))?;
        let close = tok.len() - 1;
        if !tok.ends_with(')') || close <= open {
            return Err(self.err(format!("expected `offset(base)`, found `{tok}`")));
        }
        let offset = if open == 0 {
            0
        } else {
            self.int(&tok[..open])?
        };
        let base = self.reg(&tok[open + 1..close])?;
        Ok((base, offset))
    }
}

fn strip_comment(line: &str) -> &str {
    let end = line.find([';', '#']).unwrap_or(line.len());
    line[..end].trim()
}

/// Splits an instruction body into mnemonic and comma-separated operands.
fn split_line(body: &str) -> (&str, Vec<&str>) {
    match body.split_once(char::is_whitespace) {
        None => (body, Vec::new()),
        Some((mnem, rest)) => {
            let ops = rest
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            (mnem, ops)
        }
    }
}

fn parse_inst(ctx: &LineCtx<'_>, body: &str) -> Result<Inst, IsaError> {
    let (mnem, ops) = split_line(body);
    let argc = |n: usize| -> Result<(), IsaError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(ctx.err(format!(
                "`{mnem}` expects {n} operand(s), found {}",
                ops.len()
            )))
        }
    };

    if let Some(op) = AluOp::ALL.into_iter().find(|o| o.mnemonic() == mnem) {
        argc(3)?;
        return Ok(Inst::Alu {
            op,
            dst: ctx.reg(ops[0])?,
            src1: ctx.reg(ops[1])?,
            src2: ctx.operand(ops[2], false)?,
        });
    }
    if let Some(op) = FpBinOp::ALL.into_iter().find(|o| o.mnemonic() == mnem) {
        argc(3)?;
        return Ok(Inst::FpBin {
            op,
            dst: ctx.reg(ops[0])?,
            src1: ctx.reg(ops[1])?,
            src2: ctx.reg(ops[2])?,
        });
    }
    if let Some(op) = FpUnOp::ALL.into_iter().find(|o| o.mnemonic() == mnem) {
        argc(2)?;
        return Ok(Inst::FpUn {
            op,
            dst: ctx.reg(ops[0])?,
            src: ctx.reg(ops[1])?,
        });
    }

    match mnem {
        "li" => {
            argc(2)?;
            Ok(Inst::Li {
                dst: ctx.reg(ops[0])?,
                imm: ctx.int(ops[1])? as u64,
            })
        }
        "mov" => {
            argc(2)?;
            Ok(Inst::Mov {
                dst: ctx.reg(ops[0])?,
                src: ctx.reg(ops[1])?,
            })
        }
        "itof" => {
            argc(2)?;
            Ok(Inst::IntToFp {
                dst: ctx.reg(ops[0])?,
                src: ctx.reg(ops[1])?,
            })
        }
        "ftoi" => {
            argc(2)?;
            Ok(Inst::FpToInt {
                dst: ctx.reg(ops[0])?,
                src: ctx.reg(ops[1])?,
            })
        }
        "cmov" => {
            argc(4)?;
            Ok(Inst::CMov {
                dst: ctx.reg(ops[0])?,
                cond: ctx.reg(ops[1])?,
                if_true: ctx.reg(ops[2])?,
                if_false: ctx.reg(ops[3])?,
            })
        }
        "ld" => {
            argc(2)?;
            let (base, offset) = ctx.mem_operand(ops[1])?;
            Ok(Inst::Load {
                dst: ctx.reg(ops[0])?,
                base,
                offset,
            })
        }
        "st" => {
            argc(2)?;
            let (base, offset) = ctx.mem_operand(ops[1])?;
            Ok(Inst::Store {
                src: ctx.reg(ops[0])?,
                base,
                offset,
            })
        }
        "cmp" | "fcmp" => {
            argc(3)?;
            let fp = mnem == "fcmp";
            Ok(Inst::Cmp {
                op: ctx.cmp_op(ops[0])?,
                fp,
                lhs: ctx.reg(ops[1])?,
                rhs: ctx.operand(ops[2], fp)?,
            })
        }
        "jf" => {
            argc(1)?;
            Ok(Inst::Jf {
                target: ctx.target(ops[0])?,
            })
        }
        "br" | "fbr" => {
            argc(4)?;
            let fp = mnem == "fbr";
            Ok(Inst::Br {
                op: ctx.cmp_op(ops[0])?,
                fp,
                lhs: ctx.reg(ops[1])?,
                rhs: ctx.operand(ops[2], fp)?,
                target: ctx.target(ops[3])?,
            })
        }
        "jmp" => {
            argc(1)?;
            Ok(Inst::Jmp {
                target: ctx.target(ops[0])?,
            })
        }
        "call" => {
            argc(1)?;
            Ok(Inst::Call {
                target: ctx.target(ops[0])?,
            })
        }
        "ret" => {
            argc(0)?;
            Ok(Inst::Ret)
        }
        "prob_cmp" | "prob_fcmp" => {
            argc(3)?;
            let fp = mnem == "prob_fcmp";
            Ok(Inst::ProbCmp {
                op: ctx.cmp_op(ops[0])?,
                fp,
                prob: ctx.reg(ops[1])?,
                rhs: ctx.operand(ops[2], fp)?,
            })
        }
        "prob_jmp" => {
            if ops.is_empty() || ops.len() > 2 {
                return Err(ctx.err(format!(
                    "`prob_jmp` expects 1 or 2 operands, found {}",
                    ops.len()
                )));
            }
            let prob = if ops[0] == "-" {
                None
            } else {
                Some(ctx.reg(ops[0])?)
            };
            let target = if ops.len() == 2 {
                Some(ctx.target(ops[1])?)
            } else {
                None
            };
            Ok(Inst::ProbJmp { prob, target })
        }
        "out" => {
            argc(2)?;
            let port = ctx.int(ops[1])?;
            let port =
                u16::try_from(port).map_err(|_| ctx.err(format!("port out of range: {port}")))?;
            Ok(Inst::Out {
                src: ctx.reg(ops[0])?,
                port,
            })
        }
        "halt" => {
            argc(0)?;
            Ok(Inst::Halt)
        }
        "nop" => {
            argc(0)?;
            Ok(Inst::Nop)
        }
        other => Err(ctx.err(format!("unknown mnemonic `{other}`"))),
    }
}

/// Assembles textual assembly into a validated [`Program`].
///
/// ```
/// use probranch_isa::parse_asm;
/// let p = parse_asm(r"
///     li r1, 0
/// top:
///     add r1, r1, 1       ; increment
///     br lt, r1, 10, top
///     halt
/// ")?;
/// assert_eq!(p.len(), 4);
/// # Ok::<(), probranch_isa::IsaError>(())
/// ```
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with a line number for syntax errors,
/// [`IsaError::DuplicateLabel`] for a label bound twice, and any
/// validation error from [`Program::new`].
pub fn parse_asm(source: &str) -> Result<Program, IsaError> {
    // Pass 1: collect labels at instruction indices.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pc: u32 = 0;
    for raw in source.lines() {
        let mut body = strip_comment(raw);
        while let Some(colon) = body.find(':') {
            let name = body[..colon].trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break; // not a label; leave for instruction parsing to reject
            }
            if labels.insert(name.to_owned(), pc).is_some() {
                return Err(IsaError::DuplicateLabel(name.to_owned()));
            }
            body = body[colon + 1..].trim();
        }
        if !body.is_empty() {
            pc += 1;
        }
    }

    // Pass 2: parse instructions.
    let mut insts = Vec::with_capacity(pc as usize);
    for (idx, raw) in source.lines().enumerate() {
        let mut body = strip_comment(raw);
        while let Some(colon) = body.find(':') {
            let name = body[..colon].trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            body = body[colon + 1..].trim();
        }
        if body.is_empty() {
            continue;
        }
        let ctx = LineCtx {
            line_no: idx + 1,
            labels: &labels,
        };
        insts.push(parse_inst(&ctx, body)?);
    }
    Program::new(insts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Inst) {
        let text = format!("{i}\nhalt");
        let p = parse_asm(&text).unwrap_or_else(|e| panic!("failed to parse `{i}`: {e}"));
        assert_eq!(*p.fetch(0), i, "round-trip failed for `{i}`");
    }

    #[test]
    fn round_trip_representatives() {
        round_trip(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Operand::imm(-7),
        });
        round_trip(Inst::Alu {
            op: AluOp::Sltu,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Operand::Reg(Reg::R3),
        });
        round_trip(Inst::Li {
            dst: Reg::R9,
            imm: u64::MAX,
        });
        round_trip(Inst::Mov {
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::FpBin {
            op: FpBinOp::Mul,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Reg::R3,
        });
        round_trip(Inst::FpUn {
            op: FpUnOp::Sqrt,
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::IntToFp {
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::FpToInt {
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::CMov {
            dst: Reg::R1,
            cond: Reg::R2,
            if_true: Reg::R3,
            if_false: Reg::R4,
        });
        round_trip(Inst::Load {
            dst: Reg::R1,
            base: Reg::R2,
            offset: -16,
        });
        round_trip(Inst::Store {
            src: Reg::R1,
            base: Reg::R2,
            offset: 8,
        });
        round_trip(Inst::Cmp {
            op: CmpOp::Le,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(3),
        });
        round_trip(Inst::Cmp {
            op: CmpOp::Lt,
            fp: true,
            lhs: Reg::R1,
            rhs: Operand::Imm(0.5f64.to_bits() as i64),
        });
        round_trip(Inst::Jf { target: 1 });
        round_trip(Inst::Br {
            op: CmpOp::Ge,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(0),
            target: 0,
        });
        round_trip(Inst::Br {
            op: CmpOp::Gt,
            fp: true,
            lhs: Reg::R1,
            rhs: Operand::Reg(Reg::R2),
            target: 1,
        });
        round_trip(Inst::Jmp { target: 1 });
        round_trip(Inst::Call { target: 0 });
        round_trip(Inst::Ret);
        round_trip(Inst::ProbCmp {
            op: CmpOp::Lt,
            fp: true,
            prob: Reg::R4,
            rhs: Operand::Imm(0.25f64.to_bits() as i64),
        });
        round_trip(Inst::ProbCmp {
            op: CmpOp::Gt,
            fp: false,
            prob: Reg::R4,
            rhs: Operand::imm(10),
        });
        round_trip(Inst::ProbJmp {
            prob: Some(Reg::R5),
            target: Some(1),
        });
        round_trip(Inst::ProbJmp {
            prob: None,
            target: Some(1),
        });
        round_trip(Inst::ProbJmp {
            prob: Some(Reg::R5),
            target: None,
        });
        round_trip(Inst::Out {
            src: Reg::R1,
            port: 3,
        });
        round_trip(Inst::Nop);
    }

    #[test]
    fn labels_and_comments() {
        let p = parse_asm(
            r"
            ; leading comment
            li r1, 5
        loop: sub r1, r1, 1     # trailing comment
            br gt, r1, 0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.fetch(2).target(), Some(1));
    }

    #[test]
    fn label_on_own_line() {
        let p = parse_asm("top:\n  jmp top\n  halt").unwrap();
        assert_eq!(p.fetch(0).target(), Some(0));
    }

    #[test]
    fn multiple_labels_same_line() {
        let p = parse_asm("a: b: nop\n jmp a\n jmp b\n halt").unwrap();
        assert_eq!(p.fetch(1).target(), Some(0));
        assert_eq!(p.fetch(2).target(), Some(0));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse_asm("x: nop\nx: halt").unwrap_err();
        assert_eq!(e, IsaError::DuplicateLabel("x".into()));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = parse_asm("nop\nfrobnicate r1\nhalt").unwrap_err();
        match e {
            IsaError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("frobnicate"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn wrong_operand_count() {
        let e = parse_asm("add r1, r2\nhalt").unwrap_err();
        assert!(matches!(e, IsaError::Parse { line: 1, .. }));
    }

    #[test]
    fn hex_immediates() {
        let p = parse_asm("li r1, 0xff\nhalt").unwrap();
        assert_eq!(
            *p.fetch(0),
            Inst::Li {
                dst: Reg::R1,
                imm: 0xff
            }
        );
    }

    #[test]
    fn mem_operand_without_offset() {
        let p = parse_asm("ld r1, (r2)\nhalt").unwrap();
        assert_eq!(
            *p.fetch(0),
            Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0
            }
        );
    }

    #[test]
    fn fp_immediate_round_trip_special_values() {
        for v in [0.0, -0.0, 1.5e-300, f64::INFINITY, f64::NEG_INFINITY, 1e18] {
            round_trip(Inst::Cmp {
                op: CmpOp::Lt,
                fp: true,
                lhs: Reg::R1,
                rhs: Operand::Imm(v.to_bits() as i64),
            });
        }
    }

    #[test]
    fn whole_program_display_parses_back() {
        let src = r"
            li r1, 0
            lif_placeholder: li r2, 100
        top:
            add r1, r1, 1
            fadd r3, r3, r4
            br lt, r1, r2, top
            out r1, 0
            halt
        ";
        let p1 = parse_asm(src).unwrap();
        let p2 = parse_asm(&p1.to_string()).unwrap();
        assert_eq!(p1, p2);
    }
}
