use std::fmt;

use crate::{Inst, IsaError};

/// Classification of a static branch site, as reported by
/// [`Program::static_branches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A regular conditional branch (`br` or `cmp`/`jf`).
    Conditional,
    /// A probabilistic jump (`prob_jmp` with a target).
    Probabilistic,
    /// An unconditional direct jump.
    Unconditional,
    /// A call.
    Call,
    /// A return.
    Return,
}

/// A static branch site within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticBranch {
    /// Instruction index of the branch.
    pub pc: u32,
    /// The branch's classification.
    pub kind: BranchKind,
    /// Direct target, if statically known (`None` for returns).
    pub target: Option<u32>,
}

/// A validated `probranch` program: a sequence of instructions executed
/// starting at index 0.
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder), the
/// text assembler [`parse_asm`](crate::parse_asm), or [`Program::new`]
/// from raw instructions.
///
/// ```
/// use probranch_isa::{Inst, Program, Reg};
/// let p = Program::new(vec![Inst::Li { dst: Reg::R1, imm: 7 }, Inst::Halt])?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), probranch_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// * [`IsaError::EmptyProgram`] if `insts` is empty;
    /// * [`IsaError::MissingHalt`] if no `halt` instruction exists;
    /// * [`IsaError::TargetOutOfRange`] if any direct control transfer
    ///   targets an index outside the program.
    pub fn new(insts: Vec<Inst>) -> Result<Program, IsaError> {
        if insts.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        if !insts.iter().any(|i| matches!(i, Inst::Halt)) {
            return Err(IsaError::MissingHalt);
        }
        let len = insts.len() as u32;
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(target) = inst.target() {
                if target >= len {
                    return Err(IsaError::TargetOutOfRange {
                        pc: pc as u32,
                        target,
                        len,
                    });
                }
            }
        }
        Ok(Program { insts })
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range; the emulator guarantees in-range
    /// program counters for validated programs.
    #[inline]
    pub fn fetch(&self, pc: u32) -> &Inst {
        &self.insts[pc as usize]
    }

    /// The instruction at `pc`, or `None` when out of range.
    pub fn get(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The underlying instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Consumes the program, returning its instructions.
    pub fn into_insts(self) -> Vec<Inst> {
        self.insts
    }

    /// Enumerates all static branch sites (conditional, probabilistic,
    /// unconditional, calls and returns).
    pub fn static_branches(&self) -> Vec<StaticBranch> {
        let mut out = Vec::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            let pc = pc as u32;
            let kind = match inst {
                Inst::Br { .. } | Inst::Jf { .. } => BranchKind::Conditional,
                Inst::ProbJmp {
                    target: Some(_), ..
                } => BranchKind::Probabilistic,
                Inst::Jmp { .. } => BranchKind::Unconditional,
                Inst::Call { .. } => BranchKind::Call,
                Inst::Ret => BranchKind::Return,
                _ => continue,
            };
            out.push(StaticBranch {
                pc,
                kind,
                target: inst.target(),
            });
        }
        out
    }

    /// Counts static conditional branch sites, probabilistic and regular,
    /// in the spirit of the paper's Table II ("No. prob. branch" column,
    /// e.g. `2/47`).
    pub fn branch_counts(&self) -> (usize, usize) {
        let mut prob = 0;
        let mut total = 0;
        for b in self.static_branches() {
            match b.kind {
                BranchKind::Probabilistic => {
                    prob += 1;
                    total += 1;
                }
                BranchKind::Conditional => total += 1,
                _ => {}
            }
        }
        (prob, total)
    }

    /// Iterates over `(pc, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Inst)> {
        self.insts.iter().enumerate().map(|(pc, i)| (pc as u32, i))
    }
}

impl fmt::Display for Program {
    /// Disassembles the whole program, one instruction per line, prefixed
    /// with the instruction index.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.iter() {
            writeln!(f, "{pc:6}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Operand, Reg};

    fn halt_only() -> Vec<Inst> {
        vec![Inst::Halt]
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new(vec![]), Err(IsaError::EmptyProgram));
    }

    #[test]
    fn rejects_missing_halt() {
        assert_eq!(Program::new(vec![Inst::Nop]), Err(IsaError::MissingHalt));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let p = Program::new(vec![Inst::Jmp { target: 5 }, Inst::Halt]);
        assert_eq!(
            p,
            Err(IsaError::TargetOutOfRange {
                pc: 0,
                target: 5,
                len: 2
            })
        );
    }

    #[test]
    fn accepts_valid() {
        let p = Program::new(halt_only()).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(*p.fetch(0), Inst::Halt);
        assert_eq!(p.get(1), None);
    }

    #[test]
    fn static_branches_classification() {
        let insts = vec![
            Inst::Br {
                op: CmpOp::Lt,
                fp: false,
                lhs: Reg::R1,
                rhs: Operand::imm(0),
                target: 0,
            },
            Inst::ProbJmp {
                prob: None,
                target: Some(0),
            },
            Inst::ProbJmp {
                prob: Some(Reg::R1),
                target: None,
            }, // intermediate: not a branch site
            Inst::Jmp { target: 0 },
            Inst::Call { target: 0 },
            Inst::Ret,
            Inst::Jf { target: 0 },
            Inst::Halt,
        ];
        let p = Program::new(insts).unwrap();
        let b = p.static_branches();
        assert_eq!(b.len(), 6);
        assert_eq!(b[0].kind, BranchKind::Conditional);
        assert_eq!(b[1].kind, BranchKind::Probabilistic);
        assert_eq!(b[2].kind, BranchKind::Unconditional);
        assert_eq!(b[3].kind, BranchKind::Call);
        assert_eq!(b[4].kind, BranchKind::Return);
        assert_eq!(b[4].target, None);
        assert_eq!(b[5].kind, BranchKind::Conditional);
        assert_eq!(p.branch_counts(), (1, 3));
    }

    #[test]
    fn display_contains_every_pc() {
        let p = Program::new(vec![Inst::Nop, Inst::Halt]).unwrap();
        let s = p.to_string();
        assert!(s.contains("0:"));
        assert!(s.contains("1:"));
        assert!(s.contains("halt"));
    }
}
