use crate::{AluOp, CmpOp, FpBinOp, FpUnOp, Inst, IsaError, Operand, Program, Reg};

/// A forward-referenceable code label created by
/// [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An incremental builder for [`Program`]s with labels and forward
/// references — the crate's primary program-authoring API.
///
/// All emitting methods return `&mut Self` so simple sequences can be
/// chained; label binding naturally interleaves:
///
/// ```
/// use probranch_isa::{ProgramBuilder, Reg, CmpOp};
/// let mut b = ProgramBuilder::new();
/// let top = b.label("top");
/// b.li(Reg::R1, 0);
/// b.bind(top);
/// b.add(Reg::R1, Reg::R1, 1)
///  .br(CmpOp::Lt, Reg::R1, 100, top)
///  .halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), probranch_isa::IsaError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: Vec<(String, Option<u32>)>,
    /// (instruction index, label) pairs awaiting patching.
    fixups: Vec<(usize, Label)>,
}

macro_rules! alu_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " dst, src1, src2`.")]
            pub fn $name(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
                self.emit(Inst::Alu { op: AluOp::$op, dst, src1, src2: src2.into() })
            }
        )*
    };
}

macro_rules! fpbin_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " dst, src1, src2` (f64 semantics).")]
            pub fn $name(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
                self.emit(Inst::FpBin { op: FpBinOp::$op, dst, src1, src2 })
            }
        )*
    };
}

macro_rules! fpun_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " dst, src` (f64 semantics).")]
            pub fn $name(&mut self, dst: Reg, src: Reg) -> &mut Self {
                self.emit(Inst::FpUn { op: FpUnOp::$op, dst, src })
            }
        )*
    };
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Creates a new, initially unbound label. The name is used only in
    /// error messages.
    pub fn label(&mut self, name: &str) -> Label {
        self.labels.push((name.to_owned(), None));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position (the next emitted
    /// instruction).
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a builder bug at the call
    /// site, caught eagerly).
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.1.is_none(), "label `{}` bound twice", slot.0);
        slot.1 = Some(self.insts.len() as u32);
        self
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// The index of the next emitted instruction.
    pub fn pc(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn emit_fixup(&mut self, inst: Inst, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.insts.push(inst);
        self
    }

    // ---- data movement -------------------------------------------------

    /// Emits `li dst, imm` (64-bit integer immediate).
    pub fn li(&mut self, dst: Reg, imm: impl Into<i64>) -> &mut Self {
        self.emit(Inst::Li {
            dst,
            imm: imm.into() as u64,
        })
    }

    /// Emits `li dst, value` with an `f64` immediate stored as its bit
    /// pattern.
    pub fn lif(&mut self, dst: Reg, value: f64) -> &mut Self {
        self.emit(Inst::Li {
            dst,
            imm: value.to_bits(),
        })
    }

    /// Emits `mov dst, src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Inst::Mov { dst, src })
    }

    alu_methods! {
        add => Add, sub => Sub, mul => Mul, div => Div, rem => Rem,
        and => And, or => Or, xor => Xor, shl => Shl, shr => Shr,
        sar => Sar, slt => Slt, sltu => Sltu,
    }

    fpbin_methods! {
        fadd => Add, fsub => Sub, fmul => Mul, fdiv => Div,
        fmin => Min, fmax => Max,
    }

    fpun_methods! {
        fneg => Neg, fabs => Abs, fsqrt => Sqrt, fexp => Exp,
        fln => Ln, fsin => Sin, fcos => Cos, ffloor => Floor,
    }

    /// Emits `itof dst, src` (signed int → double).
    pub fn itof(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Inst::IntToFp { dst, src })
    }

    /// Emits `ftoi dst, src` (double → signed int, truncating).
    pub fn ftoi(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Inst::FpToInt { dst, src })
    }

    /// Emits `cmov dst, cond, if_true, if_false`.
    pub fn cmov(&mut self, dst: Reg, cond: Reg, if_true: Reg, if_false: Reg) -> &mut Self {
        self.emit(Inst::CMov {
            dst,
            cond,
            if_true,
            if_false,
        })
    }

    // ---- memory ---------------------------------------------------------

    /// Emits `ld dst, offset(base)`.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Inst::Load { dst, base, offset })
    }

    /// Emits `st src, offset(base)`.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Inst::Store { src, base, offset })
    }

    // ---- control flow ---------------------------------------------------

    /// Emits `cmp op, lhs, rhs` (integer compare, sets the flag).
    pub fn cmp(&mut self, op: CmpOp, lhs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::Cmp {
            op,
            fp: false,
            lhs,
            rhs: rhs.into(),
        })
    }

    /// Emits `fcmp op, lhs, rhs` (floating-point compare).
    pub fn fcmp(&mut self, op: CmpOp, lhs: Reg, rhs: Reg) -> &mut Self {
        self.emit(Inst::Cmp {
            op,
            fp: true,
            lhs,
            rhs: Operand::Reg(rhs),
        })
    }

    /// Emits `jf label` (jump if the flag is set).
    pub fn jf(&mut self, label: Label) -> &mut Self {
        self.emit_fixup(Inst::Jf { target: 0 }, label)
    }

    /// Emits a fused integer compare-and-branch to `label`.
    pub fn br(&mut self, op: CmpOp, lhs: Reg, rhs: impl Into<Operand>, label: Label) -> &mut Self {
        self.emit_fixup(
            Inst::Br {
                op,
                fp: false,
                lhs,
                rhs: rhs.into(),
                target: 0,
            },
            label,
        )
    }

    /// Emits a fused floating-point compare-and-branch to `label`.
    pub fn fbr(&mut self, op: CmpOp, lhs: Reg, rhs: Reg, label: Label) -> &mut Self {
        self.emit_fixup(
            Inst::Br {
                op,
                fp: true,
                lhs,
                rhs: Operand::Reg(rhs),
                target: 0,
            },
            label,
        )
    }

    /// Emits `jmp label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.emit_fixup(Inst::Jmp { target: 0 }, label)
    }

    /// Emits `call label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.emit_fixup(Inst::Call { target: 0 }, label)
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Inst::Ret)
    }

    // ---- probabilistic instructions --------------------------------------

    /// Emits `prob_cmp op, prob, rhs` (integer).
    pub fn prob_cmp(&mut self, op: CmpOp, prob: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::ProbCmp {
            op,
            fp: false,
            prob,
            rhs: rhs.into(),
        })
    }

    /// Emits `prob_fcmp op, prob, rhs` (floating point).
    pub fn prob_fcmp(&mut self, op: CmpOp, prob: Reg, rhs: Reg) -> &mut Self {
        self.emit(Inst::ProbCmp {
            op,
            fp: true,
            prob,
            rhs: Operand::Reg(rhs),
        })
    }

    /// Emits the final, jumping `prob_jmp [prob,] label`.
    pub fn prob_jmp(&mut self, prob: Option<Reg>, label: Label) -> &mut Self {
        self.emit_fixup(
            Inst::ProbJmp {
                prob,
                target: Some(0),
            },
            label,
        )
    }

    /// Emits an intermediate `prob_jmp prob` that registers one more
    /// probabilistic register but does not jump (paper: `Immediate` = 0).
    pub fn prob_jmp_mid(&mut self, prob: Reg) -> &mut Self {
        self.emit(Inst::ProbJmp {
            prob: Some(prob),
            target: None,
        })
    }

    // ---- misc ------------------------------------------------------------

    /// Emits `out src, port`.
    pub fn out(&mut self, src: Reg, port: u16) -> &mut Self {
        self.emit(Inst::Out { src, port })
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }

    /// Resolves all labels and validates the program.
    ///
    /// # Errors
    ///
    /// * [`IsaError::UnboundLabel`] if any referenced label was never
    ///   bound;
    /// * any error from [`Program::new`] validation.
    pub fn build(mut self) -> Result<Program, IsaError> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let (name, addr) = &self.labels[label.0];
            let addr = addr.ok_or_else(|| IsaError::UnboundLabel(name.clone()))?;
            let patched = self.insts[idx].set_target(addr);
            debug_assert!(patched, "fixup recorded for a target-less instruction");
        }
        Program::new(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reference_is_patched() {
        let mut b = ProgramBuilder::new();
        let end = b.label("end");
        b.jmp(end);
        b.nop();
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).target(), Some(2));
    }

    #[test]
    fn backward_reference_is_patched() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        b.add(Reg::R1, Reg::R1, 1);
        b.br(CmpOp::Lt, Reg::R1, 10, top);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(1).target(), Some(0));
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.label("nowhere");
        b.jmp(l);
        b.halt();
        assert_eq!(b.build(), Err(IsaError::UnboundLabel("nowhere".into())));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label("x");
        b.bind(l);
        b.nop();
        b.bind(l);
    }

    #[test]
    fn lif_stores_bits() {
        let mut b = ProgramBuilder::new();
        b.lif(Reg::R1, 0.5);
        b.halt();
        let p = b.build().unwrap();
        match p.fetch(0) {
            Inst::Li { imm, .. } => assert_eq!(*imm, 0.5f64.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prob_sequence() {
        let mut b = ProgramBuilder::new();
        let taken = b.label("taken");
        b.prob_fcmp(CmpOp::Lt, Reg::R1, Reg::R2);
        b.prob_jmp_mid(Reg::R3);
        b.prob_jmp(Some(Reg::R4), taken);
        b.nop();
        b.bind(taken);
        b.halt();
        let p = b.build().unwrap();
        assert!(p.fetch(0).is_prob());
        assert_eq!(p.fetch(1).target(), None);
        assert_eq!(p.fetch(2).target(), Some(4));
        assert_eq!(p.branch_counts(), (1, 1));
    }

    #[test]
    fn pc_and_len_track_emission() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.pc(), 0);
        b.nop().nop();
        assert_eq!(b.pc(), 2);
        assert_eq!(b.len(), 2);
    }
}
