//! Fixed-width binary encoding.
//!
//! Each instruction encodes into one 64-bit word, optionally followed by
//! one 64-bit extension word carrying a large immediate. The encoding
//! demonstrates the paper's second ISA-extension alternative (Section
//! V-A2): rather than new opcodes, probabilistic compare and jump reuse
//! the `cmp`/`jf` opcodes with an otherwise-unused bit — [`PROB_BIT`] —
//! set. A decoder without PBS support ([`decode_compat`]) ignores that
//! bit and degrades probabilistic branches to regular ones, preserving
//! backward compatibility exactly as the paper requires.
//!
//! Word layout (least-significant bit first):
//!
//! ```text
//! bits  0..8   opcode
//! bits  8..13  register A (dst / src / prob)
//! bits 13..18  register B
//! bits 18..23  register C
//! bits 23..26  comparison predicate
//! bit  26      fp flag
//! bit  27      PROB bit (paper's unused-bit marker)
//! bit  28      extension word follows (64-bit immediate)
//! bit  29      operand-B is a register (not an immediate)
//! bit  30      auxiliary flag (prob_jmp: has prob register;
//!              prob_jmp intermediate: no target)
//! bits 32..64  inline 32-bit immediate / target / port
//! ```

use crate::{AluOp, CmpOp, FpBinOp, FpUnOp, Inst, IsaError, Operand, Program, Reg};

/// The "unused bit" that marks a probabilistic instruction in the binary
/// encoding (paper Section V-A2).
pub const PROB_BIT: u64 = 1 << 27;

const EXT_BIT: u64 = 1 << 28;
const OPB_REG_BIT: u64 = 1 << 29;
const AUX_BIT: u64 = 1 << 30;

// Opcode assignments. Alu ops occupy 0..13, FP binary 16..22, FP unary
// 24..32, the rest from 40.
const OP_ALU_BASE: u8 = 0;
const OP_FPBIN_BASE: u8 = 16;
const OP_FPUN_BASE: u8 = 24;
const OP_LI: u8 = 40;
const OP_MOV: u8 = 41;
const OP_ITOF: u8 = 42;
const OP_FTOI: u8 = 43;
const OP_CMOV: u8 = 44;
const OP_LD: u8 = 45;
const OP_ST: u8 = 46;
const OP_CMP: u8 = 47;
const OP_JF: u8 = 48;
const OP_BR: u8 = 49;
const OP_JMP: u8 = 50;
const OP_CALL: u8 = 51;
const OP_RET: u8 = 52;
const OP_OUT: u8 = 53;
const OP_HALT: u8 = 54;
const OP_NOP: u8 = 55;

fn cmp_code(op: CmpOp) -> u64 {
    op as u64 & 0x7
}

fn cmp_from_code(code: u64) -> CmpOp {
    CmpOp::ALL[(code as usize).min(5)]
}

struct Fields {
    opcode: u8,
    ra: u8,
    rb: u8,
    rc: u8,
    cmp: u64,
    flags: u64,
    imm32: u32,
    ext: Option<u64>,
}

impl Fields {
    fn new(opcode: u8) -> Fields {
        Fields {
            opcode,
            ra: 0,
            rb: 0,
            rc: 0,
            cmp: 0,
            flags: 0,
            imm32: 0,
            ext: None,
        }
    }

    fn word(&self) -> u64 {
        (self.opcode as u64)
            | ((self.ra as u64 & 0x1f) << 8)
            | ((self.rb as u64 & 0x1f) << 13)
            | ((self.rc as u64 & 0x1f) << 18)
            | (self.cmp << 23)
            | self.flags
            | (if self.ext.is_some() { EXT_BIT } else { 0 })
            | ((self.imm32 as u64) << 32)
    }
}

fn encode_operand(f: &mut Fields, o: Operand) {
    match o {
        Operand::Reg(r) => {
            f.flags |= OPB_REG_BIT;
            f.rb = r.index() as u8;
        }
        Operand::Imm(v) => {
            if v as i32 as i64 == v {
                f.imm32 = v as i32 as u32;
            } else {
                f.ext = Some(v as u64);
            }
        }
    }
}

fn encode_offset(f: &mut Fields, v: i64) {
    if v as i32 as i64 == v {
        f.imm32 = v as i32 as u32;
    } else {
        f.ext = Some(v as u64);
    }
}

/// Encodes one instruction, appending one or two words to `out`.
pub fn encode_inst(inst: &Inst, out: &mut Vec<u64>) {
    let mut f = match *inst {
        Inst::Alu {
            op,
            dst,
            src1,
            src2,
        } => {
            let mut f = Fields::new(OP_ALU_BASE + op as u8);
            f.ra = dst.index() as u8;
            f.rc = src1.index() as u8;
            encode_operand(&mut f, src2);
            f
        }
        Inst::Li { dst, imm } => {
            let mut f = Fields::new(OP_LI);
            f.ra = dst.index() as u8;
            if imm as i32 as i64 as u64 == imm {
                f.imm32 = imm as u32;
            } else {
                f.ext = Some(imm);
            }
            f
        }
        Inst::Mov { dst, src } => {
            let mut f = Fields::new(OP_MOV);
            f.ra = dst.index() as u8;
            f.rb = src.index() as u8;
            f
        }
        Inst::FpBin {
            op,
            dst,
            src1,
            src2,
        } => {
            let mut f = Fields::new(OP_FPBIN_BASE + op as u8);
            f.ra = dst.index() as u8;
            f.rb = src2.index() as u8;
            f.rc = src1.index() as u8;
            f
        }
        Inst::FpUn { op, dst, src } => {
            let mut f = Fields::new(OP_FPUN_BASE + op as u8);
            f.ra = dst.index() as u8;
            f.rb = src.index() as u8;
            f
        }
        Inst::IntToFp { dst, src } => {
            let mut f = Fields::new(OP_ITOF);
            f.ra = dst.index() as u8;
            f.rb = src.index() as u8;
            f
        }
        Inst::FpToInt { dst, src } => {
            let mut f = Fields::new(OP_FTOI);
            f.ra = dst.index() as u8;
            f.rb = src.index() as u8;
            f
        }
        Inst::CMov {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            let mut f = Fields::new(OP_CMOV);
            f.ra = dst.index() as u8;
            f.rb = cond.index() as u8;
            f.rc = if_true.index() as u8;
            // The fourth register reuses the inline immediate field.
            f.imm32 = if_false.index() as u32;
            f
        }
        Inst::Load { dst, base, offset } => {
            let mut f = Fields::new(OP_LD);
            f.ra = dst.index() as u8;
            f.rb = base.index() as u8;
            encode_offset(&mut f, offset);
            f
        }
        Inst::Store { src, base, offset } => {
            let mut f = Fields::new(OP_ST);
            f.ra = src.index() as u8;
            f.rb = base.index() as u8;
            encode_offset(&mut f, offset);
            f
        }
        Inst::Cmp { op, fp, lhs, rhs } => {
            let mut f = Fields::new(OP_CMP);
            f.ra = lhs.index() as u8;
            f.cmp = cmp_code(op);
            if fp {
                f.flags |= 1 << 26;
            }
            encode_operand(&mut f, rhs);
            f
        }
        Inst::Jf { target } => {
            let mut f = Fields::new(OP_JF);
            f.imm32 = target;
            f
        }
        Inst::Br {
            op,
            fp,
            lhs,
            rhs,
            target,
        } => {
            // Branch targets always use the extension word because the
            // inline field may be occupied by the immediate operand.
            let mut f = Fields::new(OP_BR);
            f.ra = lhs.index() as u8;
            f.cmp = cmp_code(op);
            if fp {
                f.flags |= 1 << 26;
            }
            match rhs {
                Operand::Reg(r) => {
                    f.flags |= OPB_REG_BIT;
                    f.rb = r.index() as u8;
                    f.imm32 = target;
                }
                Operand::Imm(v) => {
                    f.imm32 = target;
                    f.ext = Some(v as u64);
                }
            }
            f
        }
        Inst::Jmp { target } => {
            let mut f = Fields::new(OP_JMP);
            f.imm32 = target;
            f
        }
        Inst::Call { target } => {
            let mut f = Fields::new(OP_CALL);
            f.imm32 = target;
            f
        }
        Inst::Ret => Fields::new(OP_RET),
        Inst::ProbCmp { op, fp, prob, rhs } => {
            let mut f = Fields::new(OP_CMP);
            f.flags |= PROB_BIT;
            f.ra = prob.index() as u8;
            f.cmp = cmp_code(op);
            if fp {
                f.flags |= 1 << 26;
            }
            encode_operand(&mut f, rhs);
            f
        }
        Inst::ProbJmp { prob, target } => {
            let mut f = Fields::new(OP_JF);
            f.flags |= PROB_BIT;
            if let Some(p) = prob {
                f.flags |= OPB_REG_BIT;
                f.rb = p.index() as u8;
            }
            match target {
                Some(t) => f.imm32 = t,
                None => f.flags |= AUX_BIT,
            }
            f
        }
        Inst::Out { src, port } => {
            let mut f = Fields::new(OP_OUT);
            f.ra = src.index() as u8;
            f.imm32 = port as u32;
            f
        }
        Inst::Halt => Fields::new(OP_HALT),
        Inst::Nop => Fields::new(OP_NOP),
    };
    let ext = f.ext.take();
    let has_ext = ext.is_some();
    let mut w = f.word();
    if has_ext {
        w |= EXT_BIT;
    }
    out.push(w);
    if let Some(e) = ext {
        out.push(e);
    }
}

/// Encodes a whole program into its binary image.
pub fn encode(program: &Program) -> Vec<u64> {
    let mut out = Vec::with_capacity(program.len());
    for (_, inst) in program.iter() {
        encode_inst(inst, &mut out);
    }
    out
}

fn reg_a(w: u64) -> Reg {
    Reg::new(((w >> 8) & 0x1f) as u32).expect("5-bit field")
}

fn reg_b(w: u64) -> Reg {
    Reg::new(((w >> 13) & 0x1f) as u32).expect("5-bit field")
}

fn reg_c(w: u64) -> Reg {
    Reg::new(((w >> 18) & 0x1f) as u32).expect("5-bit field")
}

fn imm32(w: u64) -> u32 {
    (w >> 32) as u32
}

struct Decoder<'a> {
    words: &'a [u64],
    pos: usize,
    /// When false, the PROB bit is ignored (legacy machine).
    prob_support: bool,
}

impl Decoder<'_> {
    fn err(&self, msg: impl Into<String>) -> IsaError {
        IsaError::Decode {
            word: self.pos,
            msg: msg.into(),
        }
    }

    fn next_inst(&mut self) -> Result<Inst, IsaError> {
        let w = self.words[self.pos];
        let start = self.pos;
        self.pos += 1;
        let ext = if w & EXT_BIT != 0 {
            let e = *self.words.get(self.pos).ok_or(IsaError::Decode {
                word: start,
                msg: "missing extension word".into(),
            })?;
            self.pos += 1;
            Some(e)
        } else {
            None
        };
        let opcode = (w & 0xff) as u8;
        let fp = w & (1 << 26) != 0;
        let prob = self.prob_support && (w & PROB_BIT != 0);
        let operand_b = || -> Operand {
            if w & OPB_REG_BIT != 0 {
                Operand::Reg(reg_b(w))
            } else if let Some(e) = ext {
                Operand::Imm(e as i64)
            } else {
                Operand::Imm(imm32(w) as i32 as i64)
            }
        };
        let offset = || -> i64 {
            if let Some(e) = ext {
                e as i64
            } else {
                imm32(w) as i32 as i64
            }
        };

        let inst = match opcode {
            op if (OP_ALU_BASE..OP_ALU_BASE + 13).contains(&op) => Inst::Alu {
                op: AluOp::ALL[(op - OP_ALU_BASE) as usize],
                dst: reg_a(w),
                src1: reg_c(w),
                src2: operand_b(),
            },
            op if (OP_FPBIN_BASE..OP_FPBIN_BASE + 6).contains(&op) => Inst::FpBin {
                op: FpBinOp::ALL[(op - OP_FPBIN_BASE) as usize],
                dst: reg_a(w),
                src1: reg_c(w),
                src2: reg_b(w),
            },
            op if (OP_FPUN_BASE..OP_FPUN_BASE + 8).contains(&op) => Inst::FpUn {
                op: FpUnOp::ALL[(op - OP_FPUN_BASE) as usize],
                dst: reg_a(w),
                src: reg_b(w),
            },
            OP_LI => Inst::Li {
                dst: reg_a(w),
                imm: ext.unwrap_or(imm32(w) as i32 as i64 as u64),
            },
            OP_MOV => Inst::Mov {
                dst: reg_a(w),
                src: reg_b(w),
            },
            OP_ITOF => Inst::IntToFp {
                dst: reg_a(w),
                src: reg_b(w),
            },
            OP_FTOI => Inst::FpToInt {
                dst: reg_a(w),
                src: reg_b(w),
            },
            OP_CMOV => Inst::CMov {
                dst: reg_a(w),
                cond: reg_b(w),
                if_true: reg_c(w),
                if_false: Reg::new(imm32(w) & 0x1f).expect("5-bit field"),
            },
            OP_LD => Inst::Load {
                dst: reg_a(w),
                base: reg_b(w),
                offset: offset(),
            },
            OP_ST => Inst::Store {
                src: reg_a(w),
                base: reg_b(w),
                offset: offset(),
            },
            OP_CMP if prob => Inst::ProbCmp {
                op: cmp_from_code((w >> 23) & 0x7),
                fp,
                prob: reg_a(w),
                rhs: operand_b(),
            },
            OP_CMP => Inst::Cmp {
                op: cmp_from_code((w >> 23) & 0x7),
                fp,
                lhs: reg_a(w),
                rhs: operand_b(),
            },
            OP_JF if prob => {
                let preg = if w & OPB_REG_BIT != 0 {
                    Some(reg_b(w))
                } else {
                    None
                };
                let target = if w & AUX_BIT != 0 {
                    None
                } else {
                    Some(imm32(w))
                };
                Inst::ProbJmp { prob: preg, target }
            }
            OP_JF if w & PROB_BIT != 0 && w & AUX_BIT != 0 => {
                // Legacy machine, intermediate PROB_JMP (no target): the
                // value-registration is meaningless without PBS hardware;
                // it degrades to a nop rather than a jump to 0.
                Inst::Nop
            }
            OP_JF => Inst::Jf { target: imm32(w) },
            OP_BR => {
                let op = cmp_from_code((w >> 23) & 0x7);
                let rhs = if w & OPB_REG_BIT != 0 {
                    Operand::Reg(reg_b(w))
                } else {
                    Operand::Imm(
                        ext.ok_or_else(|| self.err("br immediate requires extension word"))? as i64,
                    )
                };
                Inst::Br {
                    op,
                    fp,
                    lhs: reg_a(w),
                    rhs,
                    target: imm32(w),
                }
            }
            OP_JMP => Inst::Jmp { target: imm32(w) },
            OP_CALL => Inst::Call { target: imm32(w) },
            OP_RET => Inst::Ret,
            OP_OUT => Inst::Out {
                src: reg_a(w),
                port: imm32(w) as u16,
            },
            OP_HALT => Inst::Halt,
            OP_NOP => Inst::Nop,
            other => {
                return Err(IsaError::Decode {
                    word: start,
                    msg: format!("unknown opcode {other}"),
                })
            }
        };
        Ok(inst)
    }

    fn run(mut self) -> Result<Vec<Inst>, IsaError> {
        let mut insts = Vec::new();
        while self.pos < self.words.len() {
            insts.push(self.next_inst()?);
        }
        Ok(insts)
    }
}

/// Decodes a binary image produced by [`encode`], with full PBS support.
///
/// # Errors
///
/// Returns [`IsaError::Decode`] for unknown opcodes or truncated images.
pub fn decode(words: &[u64]) -> Result<Vec<Inst>, IsaError> {
    Decoder {
        words,
        pos: 0,
        prob_support: true,
    }
    .run()
}

/// Decodes a binary image the way a machine *without* PBS support would:
/// the [`PROB_BIT`] is ignored, so `PROB_CMP` degrades to `cmp` and a
/// jumping `PROB_JMP` to `jf` — probabilistic branches execute as regular
/// branches, which is the paper's backward-compatibility story.
///
/// # Errors
///
/// Returns [`IsaError::Decode`] for unknown opcodes or truncated images.
pub fn decode_compat(words: &[u64]) -> Result<Vec<Inst>, IsaError> {
    Decoder {
        words,
        pos: 0,
        prob_support: false,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Inst) {
        let mut words = Vec::new();
        encode_inst(&i, &mut words);
        let back = decode(&words).unwrap();
        assert_eq!(back, vec![i], "binary round-trip failed for `{i}`");
    }

    #[test]
    fn round_trip_representatives() {
        round_trip(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Operand::imm(-7),
        });
        round_trip(Inst::Alu {
            op: AluOp::Xor,
            dst: Reg::R31,
            src1: Reg::R30,
            src2: Operand::Reg(Reg::R29),
        });
        round_trip(Inst::Alu {
            op: AluOp::Mul,
            dst: Reg::R1,
            src1: Reg::R1,
            src2: Operand::imm(i64::MIN),
        });
        round_trip(Inst::Li {
            dst: Reg::R9,
            imm: u64::MAX,
        });
        round_trip(Inst::Li {
            dst: Reg::R9,
            imm: 12,
        });
        round_trip(Inst::Li {
            dst: Reg::R9,
            imm: 0.5f64.to_bits(),
        });
        round_trip(Inst::Mov {
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::FpBin {
            op: FpBinOp::Div,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Reg::R3,
        });
        round_trip(Inst::FpUn {
            op: FpUnOp::Cos,
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::IntToFp {
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::FpToInt {
            dst: Reg::R1,
            src: Reg::R2,
        });
        round_trip(Inst::CMov {
            dst: Reg::R1,
            cond: Reg::R2,
            if_true: Reg::R3,
            if_false: Reg::R31,
        });
        round_trip(Inst::Load {
            dst: Reg::R1,
            base: Reg::R2,
            offset: -(1 << 40),
        });
        round_trip(Inst::Store {
            src: Reg::R1,
            base: Reg::R2,
            offset: 8,
        });
        round_trip(Inst::Cmp {
            op: CmpOp::Le,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(3),
        });
        round_trip(Inst::Cmp {
            op: CmpOp::Lt,
            fp: true,
            lhs: Reg::R1,
            rhs: Operand::Imm(0.5f64.to_bits() as i64),
        });
        round_trip(Inst::Jf { target: 123 });
        round_trip(Inst::Br {
            op: CmpOp::Ge,
            fp: false,
            lhs: Reg::R1,
            rhs: Operand::imm(0),
            target: 77,
        });
        round_trip(Inst::Br {
            op: CmpOp::Gt,
            fp: true,
            lhs: Reg::R1,
            rhs: Operand::Reg(Reg::R2),
            target: 1,
        });
        round_trip(Inst::Jmp { target: 1 });
        round_trip(Inst::Call { target: 0 });
        round_trip(Inst::Ret);
        round_trip(Inst::ProbCmp {
            op: CmpOp::Lt,
            fp: true,
            prob: Reg::R4,
            rhs: Operand::Imm(0.25f64.to_bits() as i64),
        });
        round_trip(Inst::ProbCmp {
            op: CmpOp::Gt,
            fp: false,
            prob: Reg::R4,
            rhs: Operand::Reg(Reg::R9),
        });
        round_trip(Inst::ProbJmp {
            prob: Some(Reg::R5),
            target: Some(1),
        });
        round_trip(Inst::ProbJmp {
            prob: None,
            target: Some(1),
        });
        round_trip(Inst::ProbJmp {
            prob: Some(Reg::R5),
            target: None,
        });
        round_trip(Inst::Out {
            src: Reg::R1,
            port: 65535,
        });
        round_trip(Inst::Halt);
        round_trip(Inst::Nop);
    }

    #[test]
    fn compat_decoding_degrades_prob_branches() {
        // Paper V-A2: "machines that lack PBS support can still execute
        // software that contains probabilistic branches by treating
        // probabilistic branches as normal branches."
        let mut words = Vec::new();
        encode_inst(
            &Inst::ProbCmp {
                op: CmpOp::Lt,
                fp: true,
                prob: Reg::R4,
                rhs: Operand::Reg(Reg::R2),
            },
            &mut words,
        );
        encode_inst(
            &Inst::ProbJmp {
                prob: Some(Reg::R5),
                target: Some(9),
            },
            &mut words,
        );
        encode_inst(
            &Inst::ProbJmp {
                prob: Some(Reg::R5),
                target: None,
            },
            &mut words,
        );
        let legacy = decode_compat(&words).unwrap();
        assert_eq!(
            legacy[0],
            Inst::Cmp {
                op: CmpOp::Lt,
                fp: true,
                lhs: Reg::R4,
                rhs: Operand::Reg(Reg::R2)
            }
        );
        assert_eq!(legacy[1], Inst::Jf { target: 9 });
        assert_eq!(legacy[2], Inst::Nop);
    }

    #[test]
    fn compat_equals_full_decode_for_regular_programs() {
        let insts = vec![
            Inst::Li {
                dst: Reg::R1,
                imm: 3,
            },
            Inst::Br {
                op: CmpOp::Lt,
                fp: false,
                lhs: Reg::R1,
                rhs: Operand::imm(10),
                target: 0,
            },
            Inst::Halt,
        ];
        let p = Program::new(insts.clone()).unwrap();
        let words = encode(&p);
        assert_eq!(decode(&words).unwrap(), insts);
        assert_eq!(decode_compat(&words).unwrap(), insts);
    }

    #[test]
    fn truncated_image_errors() {
        let mut words = Vec::new();
        encode_inst(
            &Inst::Li {
                dst: Reg::R1,
                imm: 1 << 40,
            },
            &mut words,
        );
        assert_eq!(words.len(), 2);
        let e = decode(&words[..1]).unwrap_err();
        assert!(matches!(e, IsaError::Decode { .. }));
    }

    #[test]
    fn unknown_opcode_errors() {
        let e = decode(&[0xffu64]).unwrap_err();
        assert!(matches!(e, IsaError::Decode { word: 0, .. }));
    }

    #[test]
    fn prob_bit_is_set_only_on_prob_instructions() {
        let mut w1 = Vec::new();
        encode_inst(
            &Inst::Cmp {
                op: CmpOp::Lt,
                fp: false,
                lhs: Reg::R1,
                rhs: Operand::imm(0),
            },
            &mut w1,
        );
        assert_eq!(w1[0] & PROB_BIT, 0);
        let mut w2 = Vec::new();
        encode_inst(
            &Inst::ProbCmp {
                op: CmpOp::Lt,
                fp: false,
                prob: Reg::R1,
                rhs: Operand::imm(0),
            },
            &mut w2,
        );
        assert_ne!(w2[0] & PROB_BIT, 0);
        // The two encodings differ only in the PROB bit.
        assert_eq!(w1[0], w2[0] & !PROB_BIT);
    }
}
