use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing, encoding or decoding
/// `probranch` programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index outside `0..32` was requested.
    InvalidRegister(u32),
    /// A label was referenced but never bound to an address.
    UnboundLabel(String),
    /// A label was bound more than once.
    DuplicateLabel(String),
    /// A branch or call target lies outside the program.
    TargetOutOfRange {
        /// Address of the offending instruction.
        pc: u32,
        /// The out-of-range target.
        target: u32,
        /// Program length in instructions.
        len: u32,
    },
    /// The program has no terminating `halt` reachable path marker.
    MissingHalt,
    /// The program is empty.
    EmptyProgram,
    /// Text assembly failed at a given line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable cause.
        msg: String,
    },
    /// A binary word could not be decoded.
    Decode {
        /// Offset of the word within the binary image.
        word: usize,
        /// Human-readable cause.
        msg: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister(r) => {
                write!(f, "invalid register index {r} (expected 0..32)")
            }
            IsaError::UnboundLabel(l) => write!(f, "label `{l}` referenced but never bound"),
            IsaError::DuplicateLabel(l) => write!(f, "label `{l}` bound more than once"),
            IsaError::TargetOutOfRange { pc, target, len } => {
                write!(
                    f,
                    "instruction at pc {pc} targets {target}, outside program of length {len}"
                )
            }
            IsaError::MissingHalt => write!(f, "program contains no halt instruction"),
            IsaError::EmptyProgram => write!(f, "program is empty"),
            IsaError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IsaError::Decode { word, msg } => write!(f, "decode error at word {word}: {msg}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = IsaError::InvalidRegister(99);
        let s = e.to_string();
        assert!(s.contains("99"));
        assert!(s.starts_with("invalid"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(IsaError::EmptyProgram);
        assert_eq!(e.to_string(), "program is empty");
    }

    #[test]
    fn display_target_out_of_range() {
        let e = IsaError::TargetOutOfRange {
            pc: 3,
            target: 42,
            len: 10,
        };
        let s = e.to_string();
        assert!(s.contains("pc 3") && s.contains("42") && s.contains("10"));
    }
}
