use std::fmt;

use crate::IsaError;

/// An architectural register.
///
/// The machine has 32 general-purpose 64-bit registers `r0..r31`. Register
/// `r0` is an ordinary register (not hardwired to zero). Floating-point
/// values are stored as IEEE-754 bit patterns in the same register file;
/// floating-point instructions reinterpret the bits.
///
/// ```
/// use probranch_isa::Reg;
/// assert_eq!(Reg::new(5).unwrap(), Reg::R5);
/// assert_eq!(Reg::R5.index(), 5);
/// assert_eq!(Reg::R5.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// Number of architectural registers.
pub(crate) const NUM_REGS: u8 = 32;

macro_rules! named_regs {
    ($($name:ident = $idx:expr;)*) => {
        impl Reg {
            $(
                #[doc = concat!("Register `r", stringify!($idx), "`.")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

named_regs! {
    R0 = 0; R1 = 1; R2 = 2; R3 = 3; R4 = 4; R5 = 5; R6 = 6; R7 = 7;
    R8 = 8; R9 = 9; R10 = 10; R11 = 11; R12 = 12; R13 = 13; R14 = 14; R15 = 15;
    R16 = 16; R17 = 17; R18 = 18; R19 = 19; R20 = 20; R21 = 21; R22 = 22; R23 = 23;
    R24 = 24; R25 = 25; R26 = 26; R27 = 27; R28 = 28; R29 = 29; R30 = 30; R31 = 31;
}

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `index >= 32`.
    pub fn new(index: u32) -> Result<Reg, IsaError> {
        if index < NUM_REGS as u32 {
            Ok(Reg(index as u8))
        } else {
            Err(IsaError::InvalidRegister(index))
        }
    }

    /// The register's index in `0..32`.
    ///
    /// The mask is a no-op (the constructor guarantees `self.0 < 32`)
    /// that makes the `< 32` range visible to the optimizer, eliding the
    /// bounds check on every register-file access in the emulator and
    /// timing-model hot loops.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 31) as usize
    }

    /// Iterates over all 32 architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl TryFrom<u32> for Reg {
    type Error = IsaError;

    fn try_from(value: u32) -> Result<Self, Self::Error> {
        Reg::new(value)
    }
}

impl From<Reg> for u32 {
    fn from(r: Reg) -> u32 {
        r.0 as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_ok());
        assert_eq!(Reg::new(32), Err(IsaError::InvalidRegister(32)));
        assert_eq!(Reg::new(u32::MAX), Err(IsaError::InvalidRegister(u32::MAX)));
    }

    #[test]
    fn named_constants_match_indices() {
        assert_eq!(Reg::R0.index(), 0);
        assert_eq!(Reg::R31.index(), 31);
        assert_eq!(Reg::R17, Reg::new(17).unwrap());
    }

    #[test]
    fn all_yields_32_distinct() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_round_trips_through_index() {
        for r in Reg::all() {
            assert_eq!(r.to_string(), format!("r{}", r.index()));
        }
    }

    #[test]
    fn conversions() {
        let r: Reg = 7u32.try_into().unwrap();
        assert_eq!(r, Reg::R7);
        assert_eq!(u32::from(Reg::R7), 7);
    }
}
