//! Property tests over the predictor building blocks and the five
//! predictors (bimodal, gshare, loop, tournament, TAGE-SC-L):
//! saturating-counter bounds, TAGE table-index safety under arbitrary
//! configurations, and same-history prediction determinism — the
//! invariants the golden-trace and parallel-harness tests build on.

use proptest::prelude::*;

use probranch_predictor::{
    Bimodal, BranchPredictor, BranchReq, Gshare, LoopPredictor, SatCounter, TageConfig, TageScL,
    Tournament,
};

/// Drives `p` over `pattern` and returns the prediction sequence.
fn drive(p: &mut dyn BranchPredictor, pattern: &[(u64, bool)]) -> Vec<bool> {
    pattern
        .iter()
        .map(|&(pc, taken)| {
            let pred = p.predict(pc);
            p.update(pc, taken);
            pred
        })
        .collect()
}

/// An arbitrary but *valid* TAGE configuration, spanning degenerate
/// single-table setups to larger-than-default geometries.
fn tage_config_strategy() -> impl Strategy<Value = TageConfig> {
    (
        (1usize..7, 4u32..11, 5u32..12),
        (1usize..9, 0usize..220, 6u32..13),
        // The loop predictor requires a power-of-two entry count.
        ((0u32..6).prop_map(|e| 1usize << e), 4u32..10),
        proptest::collection::vec(1usize..40, 1..5),
    )
        .prop_map(
            |(
                (num_tables, index_bits, tag_bits),
                (min_history, extra_history, base_bits),
                (loop_entries, sc_index_bits),
                sc_histories,
            )| {
                TageConfig {
                    num_tables,
                    index_bits,
                    tag_bits,
                    min_history,
                    max_history: min_history + extra_history,
                    base_bits,
                    loop_entries,
                    sc_index_bits,
                    sc_histories,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- saturating counters --------------------------------------------

    #[test]
    fn sat_counter_stays_in_bounds(
        bits in 1u8..8,
        initial in any::<u8>(),
        ops in proptest::collection::vec(0u8..4, 1..200),
    ) {
        let mut c = SatCounter::new(bits, initial);
        let max = (1u16 << bits) as u8 - 1;
        prop_assert_eq!(c.max(), max);
        prop_assert!(c.value() <= max, "clamped init {} > {}", c.value(), max);
        for op in ops {
            match op {
                0 => c.inc(),
                1 => c.dec(),
                2 => c.train(true),
                _ => c.train(false),
            }
            // The invariant under every operation: 0 <= value <= max.
            prop_assert!(c.value() <= max, "{} > {}", c.value(), max);
            // The signed view stays centered: [-2^(n-1), 2^(n-1) - 1].
            let half = 1i16 << (bits - 1);
            prop_assert!((c.signed() as i16) >= -half);
            prop_assert!((c.signed() as i16) < half);
            // taken() is exactly "strictly above the midpoint".
            prop_assert_eq!(c.taken(), c.value() > max / 2);
        }
    }

    #[test]
    fn sat_counter_saturation_is_stable(bits in 1u8..8, extra in 1u8..50) {
        let max = (1u16 << bits) as u8 - 1;
        let mut c = SatCounter::new(bits, max);
        for _ in 0..extra {
            c.inc();
        }
        prop_assert_eq!(c.value(), max);
        let mut c = SatCounter::new(bits, 0);
        for _ in 0..extra {
            c.dec();
        }
        prop_assert_eq!(c.value(), 0);
    }

    #[test]
    fn sat_counter_reset_weak_is_weak(bits in 1u8..8, initial in any::<u8>(), taken in any::<bool>()) {
        let mut c = SatCounter::new(bits, initial);
        c.reset_weak(taken);
        prop_assert!(c.is_weak());
        prop_assert_eq!(c.taken(), taken);
    }

    // ---- TAGE index safety ----------------------------------------------

    // Arbitrary geometries × full-range PCs: every table access in
    // predict/update is masked, so any out-of-bounds index would panic
    // here. 64 configs × 300 branches exercises allocation, aging,
    // the SC and the loop predictor.
    #[test]
    fn tage_never_indexes_out_of_bounds(
        config in tage_config_strategy(),
        pattern in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..300),
    ) {
        let mut p = TageScL::new(config);
        let preds = drive(&mut p, &pattern);
        prop_assert_eq!(preds.len(), pattern.len());
        prop_assert!(p.storage_bits() > 0);
    }

    #[test]
    fn tage_history_lengths_stay_monotonic(config in tage_config_strategy()) {
        let p = TageScL::new(config);
        let h = p.history_lengths();
        prop_assert!(!h.is_empty());
        prop_assert!(
            h.windows(2).all(|w| w[0] <= w[1]),
            "history lengths {:?} not monotonic", h
        );
    }

    // ---- determinism -----------------------------------------------------

    // Two fresh instances of the same predictor fed the same history
    // produce the same prediction sequence — the invariant that makes
    // parallel sweep cells reproducible and golden traces stable.
    #[test]
    fn all_five_predictors_are_deterministic(
        pattern in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..400),
    ) {
        let run_pair = |a: &mut dyn BranchPredictor, b: &mut dyn BranchPredictor| {
            (drive(a, &pattern), drive(b, &pattern))
        };
        let (a, b) = run_pair(&mut Bimodal::new(10), &mut Bimodal::new(10));
        prop_assert_eq!(a, b, "bimodal diverged");
        let (a, b) = run_pair(&mut Gshare::new(10, 10), &mut Gshare::new(10, 10));
        prop_assert_eq!(a, b, "gshare diverged");
        let (a, b) = run_pair(&mut LoopPredictor::new(16), &mut LoopPredictor::new(16));
        prop_assert_eq!(a, b, "loop diverged");
        let (a, b) = run_pair(&mut Tournament::default(), &mut Tournament::default());
        prop_assert_eq!(a, b, "tournament diverged");
        let (a, b) = run_pair(&mut TageScL::default(), &mut TageScL::default());
        prop_assert_eq!(a, b, "tage-sc-l diverged");
    }

    // ---- batched path ----------------------------------------------------

    // The batched entry point must be bit-identical to the serial
    // predict/update pairs — predictions *and* final predictor state —
    // for arbitrary geometries (packed and scalar folds, degenerate
    // single-table setups, SC on/off via table sizes), arbitrary batch
    // sizes (0, 1, chunk-boundary-crossing splits) and interleavings
    // with serial calls. This is the invariant that lets trace replay
    // batch TAGE at all.
    #[test]
    fn tage_batch_matches_serial_pairs(
        config in tage_config_strategy(),
        pattern in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..300),
        splits in proptest::collection::vec(0usize..48, 1..12),
    ) {
        let mut serial = TageScL::new(config.clone());
        let expect: Vec<bool> = pattern
            .iter()
            .map(|&(pc, taken)| serial.predict_and_update(BranchReq::new(pc, taken)))
            .collect();

        let mut batched = TageScL::new(config);
        let mut got = Vec::with_capacity(pattern.len());
        let (mut i, mut k) = (0usize, 0usize);
        while i < pattern.len() {
            let len = splits[k % splits.len()].min(pattern.len() - i);
            k += 1;
            if len == 0 {
                // Empty batch (must be a no-op), then one serial pair
                // interleaved between batches.
                batched.predict_update_batch(&[], &mut []);
                let (pc, taken) = pattern[i];
                got.push(batched.predict_and_update(BranchReq::new(pc, taken)));
                i += 1;
                continue;
            }
            let reqs: Vec<BranchReq> = pattern[i..i + len]
                .iter()
                .map(|&(pc, taken)| BranchReq::new(pc, taken))
                .collect();
            let mut out = vec![false; len];
            batched.predict_update_batch(&reqs, &mut out);
            got.extend(out);
            i += len;
        }
        prop_assert_eq!(got, expect, "batched predictions diverged");

        // Final state equivalence: a shared serial tail must predict
        // identically on both instances.
        let tail: Vec<(u64, bool)> = pattern.iter().rev().take(32).copied().collect();
        prop_assert_eq!(
            drive(&mut serial, &tail),
            drive(&mut batched, &tail),
            "post-batch state diverged"
        );
    }

    // Determinism also survives interleaving with *other* PCs as long as
    // the history seen per instance is identical (no hidden global
    // state such as a time-based tick).
    #[test]
    fn tage_replay_from_clone_matches(
        warmup in proptest::collection::vec((0u64..256, any::<bool>()), 1..200),
        tail in proptest::collection::vec((0u64..256, any::<bool>()), 1..100),
    ) {
        let mut original = TageScL::default();
        drive(&mut original, &warmup);
        let mut replay = original.clone();
        prop_assert_eq!(
            drive(&mut original, &tail),
            drive(&mut replay, &tail),
            "clone diverged from original on the same tail"
        );
    }
}
