use crate::{BranchPredictor, SatCounter};

/// A classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by the low bits of the branch PC.
///
/// ```
/// use probranch_predictor::{Bimodal, BranchPredictor};
/// let mut p = Bimodal::new(10); // 1024 counters = 2048 bits
/// p.predict(0x44);
/// p.update(0x44, true);
/// assert_eq!(p.storage_bits(), 2048);
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SatCounter>,
    index_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` two-bit counters,
    /// all initialized weakly-not-taken.
    pub fn new(index_bits: u32) -> Bimodal {
        Bimodal {
            table: vec![SatCounter::weak_not_taken(2); 1 << index_bits],
            index_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc & ((1 << self.index_bits) - 1)) as usize
    }

    /// Direct read access for composition (tournament predictor).
    pub(crate) fn lookup(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    /// Direct training access for composition.
    pub(crate) fn train(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }
}

impl BranchPredictor for Bimodal {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        self.lookup(pc)
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        self.train(pc, taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::accuracy_on;

    #[test]
    fn learns_biased_branches() {
        let mut p = Bimodal::new(8);
        let pattern = (0..1000).map(|i| (0x10u64, i % 10 != 0)); // 90% taken
        let acc = accuracy_on(&mut p, pattern);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_within_table() {
        let mut p = Bimodal::new(8);
        for _ in 0..100 {
            p.predict(1);
            p.update(1, true);
            p.predict(2);
            p.update(2, false);
        }
        assert!(p.predict(1));
        assert!(!p.predict(2));
    }

    #[test]
    fn aliased_pcs_share_counters() {
        let mut p = Bimodal::new(4);
        for _ in 0..10 {
            p.predict(0);
            p.update(0, true);
        }
        // pc 16 aliases pc 0 in a 16-entry table.
        assert!(p.predict(16));
    }

    #[test]
    fn cannot_learn_random_pattern_well() {
        // Sanity: a pattern with no structure caps accuracy near 50%.
        let mut p = Bimodal::new(8);
        let mut x = 99u64;
        let pattern = (0..20_000).map(move |_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (0x20u64, (x >> 63) & 1 == 1)
        });
        let acc = accuracy_on(&mut p, pattern);
        assert!(
            acc < 0.6,
            "accuracy {acc} suspiciously high on random pattern"
        );
    }
}
