use crate::{BranchPredictor, SatCounter};

/// A gshare global-history predictor: a table of 2-bit counters indexed
/// by `pc XOR global_history`.
///
/// ```
/// use probranch_predictor::{BranchPredictor, Gshare};
/// let mut p = Gshare::new(10, 10);
/// p.predict(0x44);
/// p.update(0x44, true);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SatCounter>,
    index_bits: u32,
    history_bits: u32,
    history: u64,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` two-bit counters
    /// and `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits > 63`.
    pub fn new(index_bits: u32, history_bits: u32) -> Gshare {
        assert!(history_bits <= 63);
        Gshare {
            table: vec![SatCounter::weak_not_taken(2); 1 << index_bits],
            index_bits,
            history_bits,
            history: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((pc ^ self.history) & mask) as usize
    }

    /// Prediction without history update, for composition.
    pub(crate) fn lookup(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    /// Trains the indexed counter and shifts the outcome into the global
    /// history, for composition.
    pub(crate) fn train(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }
}

impl BranchPredictor for Gshare {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        self.lookup(pc)
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        self.train(pc, taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2 + self.history_bits as usize
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::accuracy_on;

    #[test]
    fn learns_alternating_pattern_bimodal_cannot() {
        // T,NT,T,NT ... — a bimodal counter oscillates, gshare keys on
        // history and converges.
        let mut g = Gshare::new(10, 8);
        let pattern = (0..4000).map(|i| (0x30u64, i % 2 == 0));
        let acc = accuracy_on(&mut g, pattern);
        assert!(acc > 0.95, "gshare accuracy {acc}");

        let mut b = crate::Bimodal::new(10);
        let pattern = (0..4000).map(|i| (0x30u64, i % 2 == 0));
        let acc_b = accuracy_on(&mut b, pattern);
        assert!(acc_b < 0.7, "bimodal accuracy {acc_b} unexpectedly high");
    }

    #[test]
    fn learns_short_period_patterns() {
        for period in 2..=6usize {
            let mut g = Gshare::new(10, 10);
            let pattern = (0..6000).map(move |i| (0x30u64, i % period == 0));
            let acc = accuracy_on(&mut g, pattern);
            assert!(acc > 0.9, "period {period}: accuracy {acc}");
        }
    }

    #[test]
    fn storage_accounting() {
        let g = Gshare::new(10, 10);
        assert_eq!(g.storage_bits(), 2048 + 10);
    }

    #[test]
    fn history_masked_to_width() {
        let mut g = Gshare::new(4, 4);
        for _ in 0..100 {
            g.predict(0);
            g.update(0, true);
        }
        assert!(g.history < 16);
    }
}
