use crate::BranchPredictor;

/// One loop-predictor entry: learns the trip count of a loop-closing
/// branch (a branch that goes the same way `n` times, then the other way
/// once, periodically).
#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    valid: bool,
    tag: u16,
    /// Learned number of consecutive body-direction outcomes.
    past_iter: u16,
    /// Body-direction outcomes seen in the current traversal.
    current_iter: u16,
    /// The direction taken during the loop body (usually `true` for a
    /// backward loop-closing branch).
    body_dir: bool,
    /// Confidence: incremented each time a traversal confirms
    /// `past_iter`; predictions are only made when confident.
    confidence: u8,
    /// Replacement age.
    age: u8,
}

const CONF_MAX: u8 = 3;
const AGE_MAX: u8 = 7;
const ITER_MAX: u16 = 1023;

/// A loop predictor: captures branches with regular trip counts exactly —
/// the "L" of TAGE-SC-L and the loop component of the Pentium-M-style
/// tournament predictor.
///
/// ```
/// use probranch_predictor::{BranchPredictor, LoopPredictor};
/// let mut p = LoopPredictor::new(16);
/// // A loop that iterates 3 times, repeatedly: T T T NT ...
/// for _ in 0..20 {
///     for i in 0..4 {
///         p.predict(0x10);
///         p.update(0x10, i != 3);
///     }
/// }
/// assert!(p.confident(0x10));
/// ```
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

impl LoopPredictor {
    /// Creates a direct-mapped loop predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> LoopPredictor {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        LoopPredictor {
            entries: vec![LoopEntry::default(); entries],
        }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc as usize ^ (pc as usize >> 7)) & (self.entries.len() - 1)
    }

    fn tag(&self, pc: u64) -> u16 {
        ((pc >> 3) & 0x3ff) as u16
    }

    /// The confident loop prediction for `pc`, if any.
    #[inline]
    pub fn lookup(&self, pc: u64) -> Option<bool> {
        let e = &self.entries[self.slot(pc)];
        if e.valid && e.tag == self.tag(pc) && e.confidence >= CONF_MAX {
            Some(if e.current_iter < e.past_iter {
                e.body_dir
            } else {
                !e.body_dir
            })
        } else {
            None
        }
    }

    /// Whether the predictor holds a confident entry for `pc`.
    pub fn confident(&self, pc: u64) -> bool {
        let e = &self.entries[self.slot(pc)];
        e.valid && e.tag == self.tag(pc) && e.confidence >= CONF_MAX
    }

    /// Trains the entry for `pc` with the actual outcome.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        let tag = self.tag(pc);
        let e = &mut self.entries[slot];
        if !e.valid || e.tag != tag {
            // Tag miss: age the incumbent; steal the slot when it expires.
            if e.valid && e.age > 0 {
                e.age -= 1;
                return;
            }
            *e = LoopEntry {
                valid: true,
                tag,
                past_iter: 0,
                current_iter: 0,
                body_dir: taken,
                confidence: 0,
                age: AGE_MAX,
            };
            return;
        }
        e.age = AGE_MAX;
        if taken == e.body_dir {
            if e.current_iter == ITER_MAX {
                // Trip count beyond representable range: give up.
                e.confidence = 0;
                e.current_iter = 0;
                return;
            }
            e.current_iter += 1;
        } else {
            // Traversal ended: check against the learned trip count.
            if e.current_iter == e.past_iter && e.past_iter > 0 {
                e.confidence = (e.confidence + 1).min(CONF_MAX);
            } else {
                e.past_iter = e.current_iter;
                e.confidence = 0;
            }
            e.current_iter = 0;
        }
    }

    /// Storage per the entry layout: tag(10) + past(10) + current(10) +
    /// dir(1) + valid(1) + confidence(2) + age(3) = 37 bits.
    pub fn storage_bits(&self) -> usize {
        self.entries.len() * 37
    }
}

impl BranchPredictor for LoopPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.lookup(pc).unwrap_or(false)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.train(pc, taken);
    }

    fn storage_bits(&self) -> usize {
        self.storage_bits()
    }

    fn name(&self) -> &'static str {
        "loop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_loop(p: &mut LoopPredictor, pc: u64, trip: usize, traversals: usize) -> (usize, usize) {
        // Returns (correct confident predictions, total confident predictions).
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..traversals {
            for i in 0..=trip {
                let taken = i != trip;
                if let Some(pred) = p.lookup(pc) {
                    total += 1;
                    if pred == taken {
                        correct += 1;
                    }
                }
                p.train(pc, taken);
            }
        }
        (correct, total)
    }

    #[test]
    fn perfectly_predicts_fixed_trip_count() {
        let mut p = LoopPredictor::new(16);
        let (correct, total) = run_loop(&mut p, 0x40, 7, 50);
        assert!(total > 100, "should become confident");
        assert_eq!(correct, total, "all confident predictions correct");
    }

    #[test]
    fn predicts_loop_exit_not_just_body() {
        let mut p = LoopPredictor::new(16);
        run_loop(&mut p, 0x40, 3, 20);
        // At the start of a traversal current_iter == 0.
        assert_eq!(p.lookup(0x40), Some(true));
        p.train(0x40, true);
        p.train(0x40, true);
        p.train(0x40, true);
        // Fourth outcome is the exit.
        assert_eq!(p.lookup(0x40), Some(false));
    }

    #[test]
    fn loses_confidence_on_changed_trip_count() {
        let mut p = LoopPredictor::new(16);
        run_loop(&mut p, 0x40, 5, 20);
        assert!(p.confident(0x40));
        run_loop(&mut p, 0x40, 9, 1);
        assert!(
            !p.confident(0x40),
            "trip-count change must reset confidence"
        );
    }

    #[test]
    fn handles_inverted_polarity() {
        // A loop whose body direction is not-taken.
        let mut p = LoopPredictor::new(16);
        let pc = 0x88;
        let mut confident_correct = true;
        for _ in 0..30 {
            for i in 0..5 {
                let taken = i == 4; // NT NT NT NT T
                if let Some(pred) = p.lookup(pc) {
                    confident_correct &= pred == taken;
                }
                p.train(pc, taken);
            }
        }
        assert!(p.confident(pc));
        assert!(confident_correct);
    }

    #[test]
    fn replacement_requires_aging_out() {
        let mut p = LoopPredictor::new(1); // every pc collides
        run_loop(&mut p, 0x40, 3, 20);
        assert!(p.confident(0x40));
        // A single training from a colliding pc must not immediately evict.
        p.train(0x1040, true);
        assert!(p.confident(0x40));
    }

    #[test]
    fn random_pattern_never_becomes_confident() {
        let mut p = LoopPredictor::new(16);
        let mut x = 7u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.train(0x40, (x >> 62) & 1 == 1);
        }
        // Could transiently be confident only if the random stream
        // repeated a trip count 3 times in a row; extremely unlikely to
        // persist at the end.
        assert!(p.lookup(0x40).is_none() || !p.confident(0x99));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        LoopPredictor::new(12);
    }
}
