//! Static predictor dispatch: a closed enum over the predictor models
//! the simulator instantiates, replacing `Box<dyn BranchPredictor>` on
//! the per-branch hot path.
//!
//! A trace-driven simulation consults the predictor twice per dynamic
//! conditional branch (`predict` then `update`). Through a trait object
//! each call is a virtual dispatch the optimizer cannot see through;
//! through [`PredictorDispatch`] the pair is one predictable match whose
//! arms inline into the (monomorphized) simulation loop. The open trait
//! remains the extension point — this enum only closes the set the
//! simulator itself ships.

use crate::{BranchPredictor, BranchReq, StaticPredictor, TageScL, Tournament};

/// A closed sum of the simulator's baseline predictors, dispatching
/// [`BranchPredictor`] statically.
///
/// ```
/// use probranch_predictor::{BranchPredictor, PredictorDispatch, Tournament};
/// let mut p = PredictorDispatch::from(Tournament::default());
/// let guess = p.predict(0x40);
/// p.update(0x40, true);
/// assert_eq!(p.name(), "tournament");
/// let _ = guess;
/// ```
#[derive(Debug, Clone)]
pub enum PredictorDispatch {
    /// The 1 KB Pentium-M-style tournament predictor.
    Tournament(Tournament),
    /// The 8 KB TAGE-SC-L predictor.
    TageScL(Box<TageScL>),
    /// A static always-taken / always-not-taken predictor.
    Static(StaticPredictor),
}

impl From<Tournament> for PredictorDispatch {
    fn from(p: Tournament) -> PredictorDispatch {
        PredictorDispatch::Tournament(p)
    }
}

impl From<TageScL> for PredictorDispatch {
    fn from(p: TageScL) -> PredictorDispatch {
        PredictorDispatch::TageScL(Box::new(p))
    }
}

impl From<StaticPredictor> for PredictorDispatch {
    fn from(p: StaticPredictor) -> PredictorDispatch {
        PredictorDispatch::Static(p)
    }
}

/// Expands `$body` once per [`PredictorDispatch`] variant with `$p`
/// bound to the concrete `&mut` predictor — the single definition of the
/// per-variant dispatch behind [`PredictorDispatch::visit_mut`],
/// [`PredictorDispatch::visit_pair_mut`],
/// [`PredictorDispatch::visit_batch`] and the enum's own
/// [`BranchPredictor`] methods (each of which would otherwise repeat the
/// same three-arm match, the boxed-TAGE deref included).
macro_rules! with_concrete {
    ($dispatch:expr, |$p:ident| $body:expr) => {
        match $dispatch {
            PredictorDispatch::Tournament($p) => $body,
            PredictorDispatch::TageScL(boxed) => {
                let $p = &mut **boxed;
                $body
            }
            PredictorDispatch::Static($p) => $body,
        }
    };
}

/// The shared-reference sibling of `with_concrete!` for the `&self`
/// accessors (`storage_bits`, `name`).
macro_rules! with_concrete_ref {
    ($dispatch:expr, |$p:ident| $body:expr) => {
        match $dispatch {
            PredictorDispatch::Tournament($p) => $body,
            PredictorDispatch::TageScL(boxed) => {
                let $p = &**boxed;
                $body
            }
            PredictorDispatch::Static($p) => $body,
        }
    };
}

/// A generic visitor over the concrete predictor behind a
/// [`PredictorDispatch`] — the monomorphization hook for timing-only
/// consume loops.
///
/// [`BranchPredictor::predict_and_update`] on the enum is one match per
/// branch; a trace-replay loop that runs millions of records against one
/// predictor wants the match hoisted out of the loop entirely. A visitor
/// has a *generic* `visit`, which a plain closure cannot express: the
/// dispatch matches once and hands the visitor the concrete `&mut P`, so
/// the whole loop body monomorphizes per predictor type.
///
/// ```
/// use probranch_predictor::{
///     BranchPredictor, BranchReq, PredictorDispatch, PredictorVisitor, Tournament,
/// };
/// struct CountTaken<'a>(&'a [(u64, bool)]);
/// impl PredictorVisitor for CountTaken<'_> {
///     type Out = u32;
///     fn visit<P: BranchPredictor + ?Sized>(self, p: &mut P) -> u32 {
///         // This loop compiles against the concrete predictor type.
///         self.0.iter().map(|&(pc, t)| p.predict_and_update(BranchReq::new(pc, t)) as u32).sum()
///     }
/// }
/// let mut d = PredictorDispatch::from(Tournament::default());
/// let _hits = d.visit_mut(CountTaken(&[(4, true), (8, false)]));
/// ```
pub trait PredictorVisitor {
    /// The visit result.
    type Out;

    /// Runs against the concrete predictor.
    fn visit<P: BranchPredictor + ?Sized>(self, predictor: &mut P) -> Self::Out;
}

/// A generic visitor over the concrete predictors behind *two*
/// [`PredictorDispatch`] values — the monomorphization hook for fused
/// two-consumer convoy loops.
///
/// The common convoy shape is exactly two timing consumers per chunk
/// (the tournament/TAGE pairing of the figure sweeps, the
/// filtered/unfiltered pairing of Figure 9). `visit` is generic over
/// both concrete predictor types, so the double dispatch resolves once
/// per chunk and the whole fused loop body — both predict/update pairs
/// included — monomorphizes per predictor *combination*.
pub trait PredictorPairVisitor {
    /// The visit result.
    type Out;

    /// Runs against the two concrete predictors.
    fn visit<PA: BranchPredictor + ?Sized, PB: BranchPredictor + ?Sized>(
        self,
        a: &mut PA,
        b: &mut PB,
    ) -> Self::Out;
}

impl PredictorDispatch {
    /// Applies `visitor` to the concrete predictor behind the enum: one
    /// dispatch for the visitor's whole (monomorphized) body.
    #[inline]
    pub fn visit_mut<V: PredictorVisitor>(&mut self, visitor: V) -> V::Out {
        with_concrete!(self, |p| visitor.visit(p))
    }

    /// Applies `visitor` to the concrete predictors behind two dispatch
    /// enums: one double dispatch for the visitor's whole body,
    /// monomorphized per predictor pairing (nine instantiations).
    #[inline]
    pub fn visit_pair_mut<V: PredictorPairVisitor>(
        a: &mut PredictorDispatch,
        b: &mut PredictorDispatch,
        visitor: V,
    ) -> V::Out {
        with_concrete!(a, |pa| with_concrete!(b, |pb| visitor.visit(pa, pb)))
    }

    /// Runs [`BranchPredictor::predict_update_batch`] against the
    /// concrete predictor: one dispatch for the whole batch, so a replay
    /// loop that hands the predictor an entire chunk's branch runs pays
    /// the match once per batch instead of once per branch.
    #[inline]
    pub fn visit_batch(&mut self, reqs: &[BranchReq], out: &mut [bool]) {
        with_concrete!(self, |p| p.predict_update_batch(reqs, out))
    }
}

impl BranchPredictor for PredictorDispatch {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        with_concrete!(self, |p| p.predict(pc))
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        with_concrete!(self, |p| p.update(pc, taken))
    }

    #[inline]
    fn predict_and_update(&mut self, req: BranchReq) -> bool {
        // One match for the whole per-branch pair; each arm resolves to
        // the concrete type's (default) predict-then-update body.
        with_concrete!(self, |p| p.predict_and_update(req))
    }

    #[inline]
    fn predict_update_batch(&mut self, reqs: &[BranchReq], out: &mut [bool]) {
        self.visit_batch(reqs, out);
    }

    fn storage_bits(&self) -> usize {
        with_concrete_ref!(self, |p| p.storage_bits())
    }

    fn name(&self) -> &'static str {
        with_concrete_ref!(self, |p| p.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Any (pc, taken) sequence must drive the dispatch enum and the
    /// boxed trait object to identical predictions.
    fn lockstep(mut a: PredictorDispatch, mut b: Box<dyn BranchPredictor>) {
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = (x >> 32) % 97;
            let taken = (x & 3) != 0 || i % 7 == 0;
            assert_eq!(a.predict(pc), b.predict(pc), "iteration {i}");
            a.update(pc, taken);
            b.update(pc, taken);
        }
    }

    #[test]
    fn dispatch_matches_dyn_tournament() {
        lockstep(
            PredictorDispatch::from(Tournament::default()),
            Box::new(Tournament::default()),
        );
    }

    #[test]
    fn dispatch_matches_dyn_tage() {
        lockstep(
            PredictorDispatch::from(TageScL::default()),
            Box::new(TageScL::default()),
        );
    }

    #[test]
    fn dispatch_matches_dyn_static() {
        lockstep(
            PredictorDispatch::from(StaticPredictor::not_taken()),
            Box::new(StaticPredictor::not_taken()),
        );
    }

    #[test]
    fn names_and_budgets_pass_through() {
        let t = PredictorDispatch::from(Tournament::default());
        assert_eq!(t.name(), "tournament");
        assert_eq!(t.storage_bits(), Tournament::default().storage_bits());
        assert_eq!(
            PredictorDispatch::from(StaticPredictor::taken()).storage_bits(),
            0
        );
    }
}
