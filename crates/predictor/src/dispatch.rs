//! Static predictor dispatch: a closed enum over the predictor models
//! the simulator instantiates, replacing `Box<dyn BranchPredictor>` on
//! the per-branch hot path.
//!
//! A trace-driven simulation consults the predictor twice per dynamic
//! conditional branch (`predict` then `update`). Through a trait object
//! each call is a virtual dispatch the optimizer cannot see through;
//! through [`PredictorDispatch`] the pair is one predictable match whose
//! arms inline into the (monomorphized) simulation loop. The open trait
//! remains the extension point — this enum only closes the set the
//! simulator itself ships.

use crate::{BranchPredictor, StaticPredictor, TageScL, Tournament};

/// A closed sum of the simulator's baseline predictors, dispatching
/// [`BranchPredictor`] statically.
///
/// ```
/// use probranch_predictor::{BranchPredictor, PredictorDispatch, Tournament};
/// let mut p = PredictorDispatch::from(Tournament::default());
/// let guess = p.predict(0x40);
/// p.update(0x40, true);
/// assert_eq!(p.name(), "tournament");
/// let _ = guess;
/// ```
#[derive(Debug, Clone)]
pub enum PredictorDispatch {
    /// The 1 KB Pentium-M-style tournament predictor.
    Tournament(Tournament),
    /// The 8 KB TAGE-SC-L predictor.
    TageScL(Box<TageScL>),
    /// A static always-taken / always-not-taken predictor.
    Static(StaticPredictor),
}

impl From<Tournament> for PredictorDispatch {
    fn from(p: Tournament) -> PredictorDispatch {
        PredictorDispatch::Tournament(p)
    }
}

impl From<TageScL> for PredictorDispatch {
    fn from(p: TageScL) -> PredictorDispatch {
        PredictorDispatch::TageScL(Box::new(p))
    }
}

impl From<StaticPredictor> for PredictorDispatch {
    fn from(p: StaticPredictor) -> PredictorDispatch {
        PredictorDispatch::Static(p)
    }
}

impl BranchPredictor for PredictorDispatch {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        match self {
            PredictorDispatch::Tournament(p) => p.predict(pc),
            PredictorDispatch::TageScL(p) => p.predict(pc),
            PredictorDispatch::Static(p) => p.predict(pc),
        }
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        match self {
            PredictorDispatch::Tournament(p) => p.update(pc, taken),
            PredictorDispatch::TageScL(p) => p.update(pc, taken),
            PredictorDispatch::Static(p) => p.update(pc, taken),
        }
    }

    #[inline]
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        // One match for the whole per-branch pair; each arm resolves to
        // the concrete type's (default) predict-then-update body.
        match self {
            PredictorDispatch::Tournament(p) => p.predict_and_update(pc, taken),
            PredictorDispatch::TageScL(p) => p.predict_and_update(pc, taken),
            PredictorDispatch::Static(p) => p.predict_and_update(pc, taken),
        }
    }

    fn storage_bits(&self) -> usize {
        match self {
            PredictorDispatch::Tournament(p) => p.storage_bits(),
            PredictorDispatch::TageScL(p) => p.storage_bits(),
            PredictorDispatch::Static(p) => p.storage_bits(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            PredictorDispatch::Tournament(p) => p.name(),
            PredictorDispatch::TageScL(p) => p.name(),
            PredictorDispatch::Static(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Any (pc, taken) sequence must drive the dispatch enum and the
    /// boxed trait object to identical predictions.
    fn lockstep(mut a: PredictorDispatch, mut b: Box<dyn BranchPredictor>) {
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = (x >> 32) % 97;
            let taken = (x & 3) != 0 || i % 7 == 0;
            assert_eq!(a.predict(pc), b.predict(pc), "iteration {i}");
            a.update(pc, taken);
            b.update(pc, taken);
        }
    }

    #[test]
    fn dispatch_matches_dyn_tournament() {
        lockstep(
            PredictorDispatch::from(Tournament::default()),
            Box::new(Tournament::default()),
        );
    }

    #[test]
    fn dispatch_matches_dyn_tage() {
        lockstep(
            PredictorDispatch::from(TageScL::default()),
            Box::new(TageScL::default()),
        );
    }

    #[test]
    fn dispatch_matches_dyn_static() {
        lockstep(
            PredictorDispatch::from(StaticPredictor::not_taken()),
            Box::new(StaticPredictor::not_taken()),
        );
    }

    #[test]
    fn names_and_budgets_pass_through() {
        let t = PredictorDispatch::from(Tournament::default());
        assert_eq!(t.name(), "tournament");
        assert_eq!(t.storage_bits(), Tournament::default().storage_bits());
        assert_eq!(
            PredictorDispatch::from(StaticPredictor::taken()).storage_bits(),
            0
        );
    }
}
