use crate::{
    BranchPredictor, BranchReq, FoldedHistory, HistoryBuffer, LoopPredictor, PackedFoldFamily,
    SatCounter,
};

/// Configuration of the [`TageScL`] predictor.
///
/// The default configuration fits the paper's 8 KB budget (Section VI-B:
/// "an 8 KB TAGE-SC-L predictor taken from the 2016 Branch Prediction
/// Championship"); [`TageScL::storage_bits`] verifies the accounting.
#[derive(Debug, Clone)]
pub struct TageConfig {
    /// Number of tagged tables.
    pub num_tables: usize,
    /// log2 entries per tagged table.
    pub index_bits: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Shortest history length (table 0).
    pub min_history: usize,
    /// Longest history length (last table); lengths in between follow a
    /// geometric series.
    pub max_history: usize,
    /// log2 entries of the base bimodal table.
    pub base_bits: u32,
    /// Entries in the loop predictor (the "L" component).
    pub loop_entries: usize,
    /// log2 entries per statistical-corrector table (the "SC" component).
    pub sc_index_bits: u32,
    /// History lengths of the SC tables (empty disables the SC).
    pub sc_histories: Vec<usize>,
}

impl Default for TageConfig {
    fn default() -> TageConfig {
        TageConfig {
            num_tables: 6,
            index_bits: 9,
            tag_bits: 9,
            min_history: 4,
            max_history: 144,
            base_bits: 12,
            loop_entries: 16,
            sc_index_bits: 8,
            sc_histories: vec![3, 8, 21],
        }
    }
}

impl TageConfig {
    /// The geometric history lengths, one per tagged table.
    pub fn history_lengths(&self) -> Vec<usize> {
        let n = self.num_tables;
        (0..n)
            .map(|i| {
                if n == 1 {
                    return self.min_history;
                }
                let ratio = self.max_history as f64 / self.min_history as f64;
                let h = self.min_history as f64 * ratio.powf(i as f64 / (n - 1) as f64);
                h.round() as usize
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct TageEntry {
    ctr: SatCounter,
    tag: u16,
    useful: SatCounter,
}

impl TageEntry {
    fn empty() -> TageEntry {
        TageEntry {
            ctr: SatCounter::weak_not_taken(3),
            tag: 0,
            useful: SatCounter::new(2, 0),
        }
    }
}

/// Per-prediction metadata carried from `predict` to `update`.
///
/// The index/tag vectors are persistent scratch buffers: one `PredState`
/// lives inside the predictor and is cleared and refilled per branch, so
/// the steady-state predict/update pair performs no heap allocation.
#[derive(Debug, Clone, Default)]
struct PredState {
    pc: u64,
    indices: Vec<usize>,
    tags: Vec<u16>,
    provider: Option<usize>,
    provider_pred: bool,
    alt_pred: bool,
    tage_pred: bool,
    sc_sum: i32,
    sc_indices: Vec<usize>,
    loop_used: bool,
    /// Provider present with a non-weak counter, snapshotted at predict
    /// time (tables cannot change before the paired update).
    provider_strong: bool,
    final_pred: bool,
}

/// The predictor's folded-history state: one fold per tagged table for
/// the index, two per table for the tag, and one per SC history.
///
/// When every family fits a single word (the default 8 KB geometry
/// does), the folds live as [`PackedFoldFamily`]s and the ~20 per-branch
/// fold updates collapse into four word-wide operations; arbitrary
/// configurations fall back to the scalar [`FoldedHistory`] vectors.
/// Both representations compute bit-identical fold values (locked in by
/// the `history` unit tests and the golden traces).
#[derive(Debug, Clone)]
enum FoldBank {
    Packed {
        idx: PackedFoldFamily,
        tag1: PackedFoldFamily,
        tag2: PackedFoldFamily,
        /// `None` when the SC is disabled (`sc_histories` empty).
        sc: Option<PackedFoldFamily>,
    },
    Scalar {
        idx: Vec<FoldedHistory>,
        tag1: Vec<FoldedHistory>,
        tag2: Vec<FoldedHistory>,
        sc: Vec<FoldedHistory>,
    },
}

/// Read access to the fold values, monomorphizing `compute_with` per
/// representation.
trait FoldRead {
    fn idx(&self, t: usize) -> u64;
    fn tag1(&self, t: usize) -> u64;
    fn tag2(&self, t: usize) -> u64;
    fn sc(&self, t: usize) -> u64;
}

struct PackedRead<'a> {
    idx: &'a PackedFoldFamily,
    tag1: &'a PackedFoldFamily,
    tag2: &'a PackedFoldFamily,
    sc: &'a Option<PackedFoldFamily>,
}

impl FoldRead for PackedRead<'_> {
    #[inline(always)]
    fn idx(&self, t: usize) -> u64 {
        self.idx.value(t)
    }
    #[inline(always)]
    fn tag1(&self, t: usize) -> u64 {
        self.tag1.value(t)
    }
    #[inline(always)]
    fn tag2(&self, t: usize) -> u64 {
        self.tag2.value(t)
    }
    #[inline(always)]
    fn sc(&self, t: usize) -> u64 {
        self.sc.as_ref().expect("SC enabled").value(t)
    }
}

struct ScalarRead<'a> {
    idx: &'a [FoldedHistory],
    tag1: &'a [FoldedHistory],
    tag2: &'a [FoldedHistory],
    sc: &'a [FoldedHistory],
}

impl FoldRead for ScalarRead<'_> {
    #[inline(always)]
    fn idx(&self, t: usize) -> u64 {
        self.idx[t].value()
    }
    #[inline(always)]
    fn tag1(&self, t: usize) -> u64 {
        self.tag1[t].value()
    }
    #[inline(always)]
    fn tag2(&self, t: usize) -> u64 {
        self.tag2[t].value()
    }
    #[inline(always)]
    fn sc(&self, t: usize) -> u64 {
        self.sc[t].value()
    }
}

/// Read access to the raw SC fold values, decoupling the statistical
/// corrector's index computation from the live fold state: the serial
/// path reads the folds directly (any [`FoldRead`]), the batched path
/// reads values its key-fill phase captured before the histories rolled
/// past the branch.
trait ScRead {
    fn sc_fold(&self, t: usize) -> u64;
}

impl<F: FoldRead> ScRead for F {
    #[inline(always)]
    fn sc_fold(&self, t: usize) -> u64 {
        self.sc(t)
    }
}

/// The precomputed SC fold values of one batched branch.
struct ScSlice<'a>(&'a [u64]);

impl ScRead for ScSlice<'_> {
    #[inline(always)]
    fn sc_fold(&self, t: usize) -> u64 {
        self.0[t]
    }
}

/// Reusable scratch of the batched prediction path: the per-branch keys
/// of every queued request — tagged-table indices and tags (stride
/// `num_tables`) and raw SC fold values (stride `sc_histories.len()`) —
/// flattened into three streams. Filled by the history-rolling phase A
/// of [`TageScL::predict_update_batch`], consumed by its table phase B;
/// persists across batches so the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
struct BatchKeys {
    indices: Vec<usize>,
    tags: Vec<u16>,
    sc_folds: Vec<u64>,
}

/// An 8 KB TAGE-SC-L branch predictor: TAgged GEometric-history tables
/// with a statistical corrector and a loop predictor, following Seznec's
/// CBP-2016 design at reduced size.
///
/// Structure (default config):
///
/// * base bimodal: 4096 × 2-bit;
/// * 6 tagged tables × 512 entries × (3-bit counter + 9-bit tag + 2-bit
///   useful), geometric histories 4..144;
/// * statistical corrector: a bias table plus 3 GEHL tables of 256 ×
///   6-bit signed counters;
/// * 16-entry loop predictor.
///
/// ```
/// use probranch_predictor::{BranchPredictor, TageScL};
/// let mut p = TageScL::default();
/// let _ = p.predict(0x40);
/// p.update(0x40, true);
/// ```
#[derive(Debug, Clone)]
pub struct TageScL {
    config: TageConfig,
    histories: Vec<usize>,
    base: Vec<SatCounter>,
    /// Tagged tables flattened into one strided array
    /// (`table * (1 << index_bits) + index`): one bounds check and no
    /// per-access pointer chase on the hottest predictor data.
    tables: Vec<TageEntry>,
    ghist: HistoryBuffer,
    folds: FoldBank,
    /// "Use alternate prediction on newly allocated" counter.
    use_alt: SatCounter,
    /// SC: bias table (table 0) then one table per configured history,
    /// flattened with stride `1 << sc_index_bits`.
    sc_tables: Vec<SatCounter>,
    loops: LoopPredictor,
    /// Simple LFSR for allocation randomization.
    lfsr: u32,
    /// Update counter driving periodic useful-bit aging.
    ticks: u64,
    /// Reused per-prediction scratch (see [`PredState`]), boxed so the
    /// predict/update handoff moves one pointer instead of copying the
    /// whole struct twice per call.
    state: Option<Box<PredState>>,
    /// Whether `state` holds the metadata of an un-consumed `predict`.
    state_valid: bool,
    /// Reused batched-path scratch (see [`BatchKeys`]).
    batch: BatchKeys,
}

const SC_THETA: i32 = 10;

impl TageScL {
    /// Creates a predictor with the given configuration.
    pub fn new(config: TageConfig) -> TageScL {
        let histories = config.history_lengths();
        // The global history must retain every window any fold reads —
        // tagged-table lengths *and* SC lengths — so the fold-update
        // loops can use the unchecked history lookup.
        let max_h = *histories
            .iter()
            .chain(&config.sc_histories)
            .max()
            .unwrap_or(&1);
        let tables = vec![TageEntry::empty(); config.num_tables << config.index_bits];
        let sc_tables = vec![
            SatCounter::weak_not_taken(6);
            (config.sc_histories.len() + 1) << config.sc_index_bits
        ];
        // Pack each fold family into one word when the geometry fits
        // (the default configuration does); otherwise fall back to the
        // scalar per-fold representation. Both compute identical values.
        let packed = (|| {
            let idx = PackedFoldFamily::try_new(&histories, config.index_bits as usize)?;
            let tag1 = PackedFoldFamily::try_new(&histories, config.tag_bits as usize)?;
            let tag2 = PackedFoldFamily::try_new(&histories, (config.tag_bits - 1) as usize)?;
            let sc = if config.sc_histories.is_empty() {
                None
            } else {
                Some(PackedFoldFamily::try_new(
                    &config.sc_histories,
                    config.sc_index_bits as usize,
                )?)
            };
            Some(FoldBank::Packed {
                idx,
                tag1,
                tag2,
                sc,
            })
        })();
        let folds = packed.unwrap_or_else(|| FoldBank::Scalar {
            idx: histories
                .iter()
                .map(|&h| FoldedHistory::new(h, config.index_bits as usize))
                .collect(),
            tag1: histories
                .iter()
                .map(|&h| FoldedHistory::new(h, config.tag_bits as usize))
                .collect(),
            tag2: histories
                .iter()
                .map(|&h| FoldedHistory::new(h, (config.tag_bits - 1) as usize))
                .collect(),
            sc: config
                .sc_histories
                .iter()
                .map(|&h| FoldedHistory::new(h, config.sc_index_bits as usize))
                .collect(),
        });
        let mut state = Box::<PredState>::default();
        state.indices.resize(config.num_tables, 0);
        state.tags.resize(config.num_tables, 0);
        TageScL {
            base: vec![SatCounter::weak_not_taken(2); 1 << config.base_bits],
            ghist: HistoryBuffer::new(max_h + 64),
            folds,
            use_alt: SatCounter::weak_not_taken(4),
            sc_tables,
            loops: LoopPredictor::new(config.loop_entries),
            lfsr: 0xACE1,
            ticks: 0,
            state: Some(state),
            state_valid: false,
            batch: BatchKeys::default(),
            histories,
            tables,
            config,
        }
    }

    /// The flattened-entry index of `(table, index)`.
    #[inline]
    fn slot(&self, table: usize, index: usize) -> usize {
        (table << self.config.index_bits) + index
    }

    /// Number of statistical-corrector tables (bias + per-history).
    fn num_sc_tables(&self) -> usize {
        self.config.sc_histories.len() + 1
    }

    fn next_rand(&mut self) -> u32 {
        // 16-bit Fibonacci LFSR; deterministic allocation tie-breaking.
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }

    fn base_index(&self, pc: u64) -> usize {
        (pc as usize) & ((1 << self.config.base_bits) - 1)
    }

    fn sc_index_with<S: ScRead>(&self, sc: &S, pc: u64, table: usize) -> usize {
        let mask = (1usize << self.config.sc_index_bits) - 1;
        if table == 0 {
            (pc as usize) & mask
        } else {
            (pc as usize ^ sc.sc_fold(table - 1) as usize ^ (table << 2)) & mask
        }
    }

    /// Computes the full prediction into the reused scratch `st`,
    /// dispatching once on the fold representation.
    fn compute_into(&self, pc: u64, st: &mut PredState) {
        match &self.folds {
            FoldBank::Packed {
                idx,
                tag1,
                tag2,
                sc,
            } => self.compute_with(
                pc,
                st,
                &PackedRead {
                    idx,
                    tag1,
                    tag2,
                    sc,
                },
            ),
            FoldBank::Scalar {
                idx,
                tag1,
                tag2,
                sc,
            } => self.compute_with(
                pc,
                st,
                &ScalarRead {
                    idx,
                    tag1,
                    tag2,
                    sc,
                },
            ),
        }
    }

    /// The prediction pipeline, monomorphized per fold representation:
    /// key fill from the live folds, then the table phase.
    fn compute_with<F: FoldRead>(&self, pc: u64, st: &mut PredState, folds: &F) {
        let n = self.config.num_tables;
        st.indices.resize(n, 0);
        st.tags.resize(n, 0);
        Self::fill_keys(
            self.config.index_bits,
            self.config.tag_bits,
            pc,
            folds,
            &mut st.indices,
            &mut st.tags,
            &mut [],
        );
        // Move the key buffers out for the call (pointer swaps, no
        // allocation) so the table phase can borrow them and `st`
        // simultaneously.
        let indices = std::mem::take(&mut st.indices);
        let tags = std::mem::take(&mut st.tags);
        self.finish_compute(pc, &indices, &tags, st, folds);
        st.indices = indices;
        st.tags = tags;
    }

    /// The key half of the prediction: table indices and tags (and,
    /// when `sc_out` is non-empty, the raw SC fold values) of the branch
    /// at `pc` against the *current* fold state. This is all of
    /// `predict` that reads the folded histories — the batched path runs
    /// it one branch ahead of the table phase, interleaved with
    /// [`TageScL::roll_history`], to take the fold state off the
    /// per-branch critical chain.
    // An associated function (no `&self`) so the batched phase A can
    // call it while holding `&mut self.folds` for the interleaved
    // history rolls.
    fn fill_keys<F: FoldRead>(
        index_bits: u32,
        tag_bits: u32,
        pc: u64,
        folds: &F,
        idx_out: &mut [usize],
        tag_out: &mut [u16],
        sc_out: &mut [u64],
    ) {
        // Separate fill passes (constants hoisted, no table loads in the
        // loop bodies) so the index/tag arithmetic vectorizes and the
        // match scan then issues its table loads back to back.
        let ib = index_bits as usize;
        let idx_mask = (1usize << ib) - 1;
        for (t, slot) in idx_out.iter_mut().enumerate() {
            *slot =
                (pc as usize ^ (pc as usize >> ib) ^ folds.idx(t) as usize ^ (t << 1)) & idx_mask;
        }
        let tag_mask = (1u64 << tag_bits) - 1;
        for (t, slot) in tag_out.iter_mut().enumerate() {
            *slot = ((pc ^ folds.tag1(t) ^ (folds.tag2(t) << 1)) & tag_mask) as u16;
        }
        for (t, slot) in sc_out.iter_mut().enumerate() {
            *slot = folds.sc(t);
        }
    }

    /// The table half of the prediction: provider scan, alternate
    /// selection, statistical corrector and loop override, computed from
    /// the already-filled `indices` / `tags` keys (borrowed from `st`'s
    /// scratch on the serial path, straight from the [`BatchKeys`]
    /// streams on the batched path — no per-branch key copies). `sc`
    /// supplies the raw SC fold values — the live folds on the serial
    /// path, the batch scratch's captured values on the batched path.
    #[inline(always)]
    fn finish_compute<S: ScRead>(
        &self,
        pc: u64,
        indices: &[usize],
        tags: &[u16],
        st: &mut PredState,
        sc: &S,
    ) {
        let n = self.config.num_tables;

        // Longest matching table provides; next match (or base) is alt.
        // The tag comparisons are data-dependent and essentially random,
        // so the scan is done branchlessly (a match bitmask + leading-bit
        // arithmetic) instead of a conditional walk the host branch
        // predictor keeps missing.
        let (mut provider, mut alt_table) = (None, None);
        if n <= 64 {
            let mut mask = 0u64;
            for (t, (&i, &tag)) in indices.iter().zip(tags).enumerate() {
                mask |= u64::from(self.tables[self.slot(t, i)].tag == tag) << t;
            }
            if mask != 0 {
                let p = 63 - mask.leading_zeros() as usize;
                provider = Some(p);
                let rest = mask & !(1u64 << p);
                if rest != 0 {
                    alt_table = Some(63 - rest.leading_zeros() as usize);
                }
            }
        } else {
            // Oversized custom configurations: the straightforward walk.
            for t in (0..n).rev() {
                if self.tables[self.slot(t, indices[t])].tag == tags[t] {
                    if provider.is_none() {
                        provider = Some(t);
                    } else {
                        alt_table = Some(t);
                        break;
                    }
                }
            }
        }
        let base_pred = self.base[self.base_index(pc)].taken();
        let alt_pred = alt_table.map_or(base_pred, |t| {
            self.tables[self.slot(t, indices[t])].ctr.taken()
        });
        // One copy of the (4-byte) provider entry serves the prediction,
        // weakness, newly-allocated and confidence questions.
        let provider_entry = provider.map(|t| self.tables[self.slot(t, indices[t])]);
        let (provider_pred, provider_weak) = match provider_entry {
            Some(e) => (e.ctr.taken(), e.ctr.is_weak()),
            None => (base_pred, false),
        };
        // "Use alt on newly allocated": for weak providers with no
        // established usefulness, prefer the alternate prediction when
        // the use_alt counter says so.
        let tage_pred = match provider_entry {
            Some(e) => {
                let newly = provider_weak && e.useful.value() == 0;
                if newly && self.use_alt.taken() {
                    alt_pred
                } else {
                    provider_pred
                }
            }
            None => base_pred,
        };

        // Statistical corrector: a signed vote of bias + GEHL tables. It
        // is consulted only when TAGE itself is unconfident (weak or
        // absent provider) and the vote is decisive — a *corrector*, not
        // a competing predictor.
        //
        // Computed lazily: with a confident provider the vote influences
        // neither the prediction nor the update (`update`'s SC-training
        // gate re-derives the same confidence from the same unmodified
        // entry), so the table reads are skipped entirely. `sc_indices`
        // is left empty in that case, which also empties the training
        // loop — behaviourally identical, measurably cheaper on the
        // steady-state majority of branches.
        let tage_confident = provider_entry.is_some_and(|e| !e.ctr.is_weak());
        st.sc_indices.clear();
        let mut sc_sum = 0i32;
        if !tage_confident {
            st.sc_indices
                .extend((0..self.num_sc_tables()).map(|t| self.sc_index_with(sc, pc, t)));
            let sc_stride = 1usize << self.config.sc_index_bits;
            sc_sum = st
                .sc_indices
                .iter()
                .enumerate()
                .map(|(t, &i)| 2 * self.sc_tables[t * sc_stride + i].signed() as i32 + 1)
                .sum();
        }
        let sc_pred = if !tage_confident && sc_sum.abs() >= SC_THETA {
            sc_sum >= 0
        } else {
            tage_pred
        };

        // Loop predictor overrides when confident.
        let (loop_used, final_pred) = match self.loops.lookup(pc) {
            Some(l) => (true, l),
            None => (false, sc_pred),
        };

        st.pc = pc;
        st.provider = provider;
        st.provider_pred = provider_pred;
        st.alt_pred = alt_pred;
        st.tage_pred = tage_pred;
        st.sc_sum = sc_sum;
        st.loop_used = loop_used;
        st.provider_strong = tage_confident;
        st.final_pred = final_pred;
    }

    /// The training half of `update`: loop component, statistical
    /// corrector, TAGE/base counters, allocation and the periodic aging
    /// tick, driven by the prediction metadata in `st`.
    ///
    /// Deliberately touches **no** fold or global-history state — that
    /// lives in [`TageScL::roll_history`] — which is what lets the
    /// batched path run all history rolls ahead of all table training
    /// while staying bit-identical to the serial interleaving.
    ///
    /// `indices` / `tags` are the same key slices the paired
    /// [`TageScL::finish_compute`] ran with.
    #[inline(always)]
    fn train_tables(
        &mut self,
        pc: u64,
        taken: bool,
        indices: &[usize],
        tags: &[u16],
        st: &PredState,
    ) {
        let n = self.config.num_tables;

        // ---- loop component ------------------------------------------------
        self.loops.train(pc, taken);

        // ---- statistical corrector -----------------------------------------
        // Train only in the regime where the SC is consulted (unconfident
        // TAGE), so it specializes in TAGE's blind spots instead of
        // shadowing it.
        // Snapshotted at predict time; the strict predict/update
        // alternation means no table write happened in between.
        let provider_strong = st.provider_strong;
        if !st.loop_used
            && !provider_strong
            && (st.final_pred != taken || st.sc_sum.abs() < 2 * SC_THETA)
        {
            let sc_stride = 1usize << self.config.sc_index_bits;
            for (t, &i) in st.sc_indices.iter().enumerate() {
                self.sc_tables[t * sc_stride + i].train(taken);
            }
        }

        // ---- TAGE tables ----------------------------------------------------
        match st.provider {
            Some(t) => {
                let idx = self.slot(t, indices[t]);
                // use_alt bookkeeping: when the provider was weak and the
                // alternate disagreed, learn which to trust.
                let weak = self.tables[idx].ctr.is_weak();
                if weak && st.provider_pred != st.alt_pred {
                    self.use_alt.train(st.alt_pred == taken);
                }
                let e = &mut self.tables[idx];
                e.ctr.train(taken);
                if st.provider_pred != st.alt_pred {
                    e.useful.train(st.provider_pred == taken);
                }
            }
            None => {
                let i = self.base_index(pc);
                self.base[i].train(taken);
            }
        }
        // Base also trains when it served as the alternate for a weak provider.
        if st.provider.is_some() && st.alt_pred != st.provider_pred && st.tage_pred == st.alt_pred {
            let i = self.base_index(pc);
            self.base[i].train(taken);
        }

        // ---- allocation on TAGE misprediction --------------------------------
        if st.tage_pred != taken {
            let start = st.provider.map_or(0, |p| p + 1);
            if start < n {
                // Randomize the first candidate table to spread allocations.
                let offset = (self.next_rand() as usize) % (n - start);
                let mut allocated = false;
                for k in 0..(n - start) {
                    let t = start + (offset + k) % (n - start);
                    let idx = self.slot(t, indices[t]);
                    if self.tables[idx].useful.value() == 0 {
                        self.tables[idx] = TageEntry {
                            ctr: {
                                let mut c = SatCounter::weak_not_taken(3);
                                c.reset_weak(taken);
                                c
                            },
                            tag: tags[t],
                            useful: SatCounter::new(2, 0),
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for (t, &i) in indices.iter().enumerate().take(n).skip(start) {
                        let idx = self.slot(t, i);
                        self.tables[idx].useful.dec();
                    }
                }
            }
        }

        // ---- periodic useful aging -------------------------------------------
        self.ticks += 1;
        if self.ticks % (256 * 1024) == 0 {
            self.age_useful_bits();
        }
    }

    /// The history half of `update`: advances the folded histories and
    /// the global history with one resolved outcome. This is the only
    /// part of training that feeds the *next* branch's key computation;
    /// split out (with split field borrows, so callers can hold other
    /// parts of `self`) to let the batched path roll all histories
    /// forward before any table work.
    ///
    /// The three fold families of table `t` share the same window
    /// length, so the evicted bit is looked up once per table and
    /// broadcast — as a packed lane bitmask when the families fit one
    /// word each, per scalar fold otherwise.
    /// (Ages are bounded by the constructor: `ghist` holds
    /// `max_history + 64` bits.)
    fn roll_history(
        folds: &mut FoldBank,
        ghist: &mut HistoryBuffer,
        histories: &[usize],
        sc_histories: &[usize],
        taken: bool,
    ) {
        match folds {
            FoldBank::Packed {
                idx,
                tag1,
                tag2,
                sc,
            } => {
                let mut ebits = 0u64;
                for (t, &h) in histories.iter().enumerate() {
                    ebits |= u64::from(h > 0 && ghist.get_unchecked_age(h - 1)) << t;
                }
                idx.update(taken, ebits);
                tag1.update(taken, ebits);
                tag2.update(taken, ebits);
                if let Some(sc) = sc {
                    let mut sc_ebits = 0u64;
                    for (t, &h) in sc_histories.iter().enumerate() {
                        sc_ebits |= u64::from(h > 0 && ghist.get_unchecked_age(h - 1)) << t;
                    }
                    sc.update(taken, sc_ebits);
                }
            }
            FoldBank::Scalar {
                idx,
                tag1,
                tag2,
                sc,
            } => {
                for ((fi, f1), f2) in idx.iter_mut().zip(tag1.iter_mut()).zip(tag2.iter_mut()) {
                    let h = fi.original_len();
                    let evicted = h > 0 && ghist.get_unchecked_age(h - 1);
                    fi.update_with(taken, evicted);
                    f1.update_with(taken, evicted);
                    f2.update_with(taken, evicted);
                }
                for (f, &h) in sc.iter_mut().zip(sc_histories) {
                    let evicted = h > 0 && ghist.get_unchecked_age(h - 1);
                    f.update_with(taken, evicted);
                }
            }
        }
        ghist.push(taken);
    }

    fn age_useful_bits(&mut self) {
        for e in self.tables.iter_mut() {
            e.useful.dec();
        }
    }

    /// The configured geometric history lengths (for inspection/tests).
    pub fn history_lengths(&self) -> &[usize] {
        &self.histories
    }
}

impl Default for TageScL {
    fn default() -> TageScL {
        TageScL::new(TageConfig::default())
    }
}

impl BranchPredictor for TageScL {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        // Move the boxed scratch out (a pointer swap, no allocation in
        // steady state) so `compute_into` can borrow `self` immutably.
        let mut st = self.state.take().unwrap_or_default();
        self.compute_into(pc, &mut st);
        let pred = st.final_pred;
        self.state = Some(st);
        self.state_valid = true;
        pred
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        let mut st = self.state.take().unwrap_or_default();
        if !(std::mem::take(&mut self.state_valid) && st.pc == pc) {
            self.compute_into(pc, &mut st);
        }
        self.train_tables(pc, taken, &st.indices, &st.tags, &st);
        Self::roll_history(
            &mut self.folds,
            &mut self.ghist,
            &self.histories,
            &self.config.sc_histories,
            taken,
        );
        // Hand the scratch buffers back for the next prediction.
        self.state = Some(st);
    }

    /// The batched replay path: since every outcome in `reqs` is already
    /// known, the serial predict/update chain is split into two passes.
    ///
    /// **Phase A** rolls the folded histories forward through the whole
    /// batch, capturing each branch's table indices, tags and raw SC
    /// fold values into the reused [`BatchKeys`] scratch — pure fold
    /// arithmetic, no table loads, off the per-branch critical chain.
    /// **Phase B** then walks the branches in order doing the provider
    /// scans and training with the precomputed keys: every table address
    /// of the batch is known up front, so the loads of branch `i + 1`
    /// can issue while branch `i`'s provider selection and training are
    /// still in flight, instead of waiting on its fold state.
    ///
    /// Training never touches fold or global-history state (see
    /// [`TageScL::train_tables`] / [`TageScL::roll_history`]) and key
    /// capture never touches table state, so the reordering is
    /// bit-identical to the serial pairs — predictions *and* final
    /// predictor state — which `tests/properties.rs` locks in over
    /// arbitrary geometries.
    fn predict_update_batch(&mut self, reqs: &[BranchReq], out: &mut [bool]) {
        assert_eq!(
            reqs.len(),
            out.len(),
            "one prediction slot per batched request"
        );
        let n = self.config.num_tables;
        let nsc = self.config.sc_histories.len();
        let mut batch = std::mem::take(&mut self.batch);
        // Grow-only scratch: phase A overwrites every slot it hands to
        // phase B, so slots beyond this batch's need are simply never
        // read again — no per-call zero-fill of the streams.
        let need = reqs.len() * n;
        if batch.indices.len() < need {
            batch.indices.resize(need, 0);
            batch.tags.resize(need, 0);
        }
        let need_sc = reqs.len() * nsc;
        if batch.sc_folds.len() < need_sc {
            batch.sc_folds.resize(need_sc, 0);
        }

        // ---- phase A: roll histories, capture keys ---------------------------
        // The fold-representation dispatch is hoisted out of the branch
        // loop: each arm runs the whole batch against its concrete fold
        // type, with the roll inlined next to the key fill.
        let (ib, tb) = (self.config.index_bits, self.config.tag_bits);
        let (histories, sc_histories) = (&self.histories, &self.config.sc_histories);
        let ghist = &mut self.ghist;
        match &mut self.folds {
            FoldBank::Packed {
                idx,
                tag1,
                tag2,
                sc,
            } => {
                for (k, req) in reqs.iter().enumerate() {
                    Self::fill_keys(
                        ib,
                        tb,
                        req.pc,
                        &PackedRead {
                            idx,
                            tag1,
                            tag2,
                            sc,
                        },
                        &mut batch.indices[k * n..(k + 1) * n],
                        &mut batch.tags[k * n..(k + 1) * n],
                        &mut batch.sc_folds[k * nsc..(k + 1) * nsc],
                    );
                    let taken = req.taken;
                    let mut ebits = 0u64;
                    for (t, &h) in histories.iter().enumerate() {
                        ebits |= u64::from(h > 0 && ghist.get_unchecked_age(h - 1)) << t;
                    }
                    idx.update(taken, ebits);
                    tag1.update(taken, ebits);
                    tag2.update(taken, ebits);
                    if let Some(sc) = sc {
                        let mut sc_ebits = 0u64;
                        for (t, &h) in sc_histories.iter().enumerate() {
                            sc_ebits |= u64::from(h > 0 && ghist.get_unchecked_age(h - 1)) << t;
                        }
                        sc.update(taken, sc_ebits);
                    }
                    ghist.push(taken);
                }
            }
            FoldBank::Scalar {
                idx,
                tag1,
                tag2,
                sc,
            } => {
                for (k, req) in reqs.iter().enumerate() {
                    Self::fill_keys(
                        ib,
                        tb,
                        req.pc,
                        &ScalarRead {
                            idx,
                            tag1,
                            tag2,
                            sc,
                        },
                        &mut batch.indices[k * n..(k + 1) * n],
                        &mut batch.tags[k * n..(k + 1) * n],
                        &mut batch.sc_folds[k * nsc..(k + 1) * nsc],
                    );
                    let taken = req.taken;
                    for ((fi, f1), f2) in idx.iter_mut().zip(tag1.iter_mut()).zip(tag2.iter_mut()) {
                        let h = fi.original_len();
                        let evicted = h > 0 && ghist.get_unchecked_age(h - 1);
                        fi.update_with(taken, evicted);
                        f1.update_with(taken, evicted);
                        f2.update_with(taken, evicted);
                    }
                    for (f, &h) in sc.iter_mut().zip(sc_histories) {
                        let evicted = h > 0 && ghist.get_unchecked_age(h - 1);
                        f.update_with(taken, evicted);
                    }
                    ghist.push(taken);
                }
            }
        }

        // ---- phase B: provider scans and training with captured keys ---------
        // Any cached predict-time metadata is clobbered below, exactly as
        // a serial predict of the first batched branch would clobber it.
        let mut st = self.state.take().unwrap_or_default();
        self.state_valid = false;
        for (k, req) in reqs.iter().enumerate() {
            // The key slices are read straight out of the batch streams —
            // `st` carries only the provider/corrector metadata between
            // the compute and train halves.
            let indices = &batch.indices[k * n..(k + 1) * n];
            let tags = &batch.tags[k * n..(k + 1) * n];
            self.finish_compute(
                req.pc,
                indices,
                tags,
                &mut st,
                &ScSlice(&batch.sc_folds[k * nsc..(k + 1) * nsc]),
            );
            out[k] = st.final_pred;
            self.train_tables(req.pc, req.taken, indices, tags, &st);
        }
        self.state = Some(st);
        self.batch = batch;
    }

    fn storage_bits(&self) -> usize {
        let c = &self.config;
        let tagged = c.num_tables * (1usize << c.index_bits) * (3 + 2 + c.tag_bits as usize);
        let base = (1usize << c.base_bits) * 2;
        let sc = self.num_sc_tables() * (1usize << c.sc_index_bits) * 6;
        let hist = self.ghist.capacity();
        // Fold widths are fixed by the configuration, independent of
        // the packed/scalar representation.
        let folds = c.num_tables
            * (c.index_bits as usize + c.tag_bits as usize + (c.tag_bits - 1) as usize)
            + c.sc_histories.len() * c.sc_index_bits as usize;
        tagged + base + sc + self.loops.storage_bits() + hist + folds + 4 /* use_alt */ + 16
        /* lfsr */
    }

    fn name(&self) -> &'static str {
        "tage-sc-l"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::accuracy_on;
    use crate::Tournament;

    #[test]
    fn history_lengths_are_geometric_and_monotonic() {
        let c = TageConfig::default();
        let h = c.history_lengths();
        assert_eq!(h.len(), 6);
        assert_eq!(h[0], 4);
        assert_eq!(*h.last().unwrap(), 144);
        assert!(
            h.windows(2).all(|w| w[0] < w[1]),
            "lengths {h:?} not increasing"
        );
    }

    #[test]
    fn fits_8kb_budget() {
        let p = TageScL::default();
        let bits = p.storage_bits();
        assert!(bits <= 8 * 8192, "{bits} bits > 8 KB");
        assert!(
            bits >= 6 * 8192,
            "{bits} bits: suspiciously small for an 8 KB design"
        );
    }

    #[test]
    fn learns_long_period_pattern_beyond_tournament() {
        // Period-48 pattern: one not-taken every 48 — needs long history
        // or loop detection; TAGE's long tables capture it.
        fn pattern() -> impl Iterator<Item = (u64, bool)> {
            (0..60_000).map(|i| (0x123u64, i % 48 != 47))
        }
        let mut tage = TageScL::default();
        let acc = accuracy_on(&mut tage, pattern());
        assert!(acc > 0.97, "tage accuracy {acc}");
    }

    #[test]
    fn beats_tournament_on_history_heavy_mix() {
        // Alternating taken-run lengths (20 and 45): inside a run every
        // 12-bit gshare window is all-taken, so the tournament cannot
        // tell the two exits apart, and the alternating trip count keeps
        // the loop predictor unconfident. TAGE's 72+-bit history tables
        // disambiguate both exits.
        fn pattern() -> Vec<(u64, bool)> {
            let mut v = Vec::new();
            for _ in 0..400 {
                for len in [20usize, 45] {
                    for _ in 0..len {
                        v.push((0xA00, true));
                    }
                    v.push((0xA00, false));
                }
            }
            v
        }
        let p = pattern();
        let mut tage = TageScL::default();
        let acc_t = accuracy_on(&mut tage, p.iter().copied());
        let mut tour = Tournament::default();
        let acc_m = accuracy_on(&mut tour, p.iter().copied());
        assert!(
            acc_t > acc_m + 0.005,
            "tage {acc_t} should beat tournament {acc_m}"
        );
        assert!(acc_t > 0.98, "tage accuracy {acc_t}");
    }

    #[test]
    fn random_branches_stay_near_chance() {
        let mut tage = TageScL::default();
        let mut x = 3u64;
        let pattern = (0..50_000).map(move |_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (0x77u64, (x >> 63) & 1 == 1)
        });
        let acc = accuracy_on(&mut tage, pattern);
        assert!(
            (0.4..0.6).contains(&acc),
            "accuracy {acc} on true randomness"
        );
    }

    #[test]
    fn update_without_predict_is_tolerated() {
        let mut p = TageScL::default();
        p.update(0x5, true);
        p.update(0x5, false);
        let _ = p.predict(0x5);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = TageScL::default();
        let mut b = a.clone();
        let mut x = 9u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let pc = 0x100 + (x >> 60);
            let taken = (x >> 55) & 1 == 1;
            assert_eq!(a.predict(pc), b.predict(pc));
            a.update(pc, taken);
            b.update(pc, taken);
        }
    }

    #[test]
    fn loop_component_captures_large_trip_counts() {
        let mut p = TageScL::default();
        let mut exit_correct = 0u32;
        let mut exits = 0u32;
        for traversal in 0..300 {
            for i in 0..=200 {
                let taken = i != 200;
                let pred = p.predict(0x900);
                if traversal > 100 && !taken {
                    exits += 1;
                    exit_correct += (pred == taken) as u32;
                }
                p.update(0x900, taken);
            }
        }
        assert!(
            exit_correct as f64 / exits as f64 > 0.9,
            "{exit_correct}/{exits}"
        );
    }
}
