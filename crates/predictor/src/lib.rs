//! # probranch-predictor
//!
//! Branch-predictor models for the `probranch` reproduction of
//! *Architectural Support for Probabilistic Branches* (MICRO 2018).
//!
//! The paper evaluates PBS against two baselines (Section VI-B):
//!
//! * a **1 KB tournament predictor** "modeled after the Pentium-M,
//!   consisting of a global branch predictor, a bimodal branch predictor
//!   and a loop branch predictor" — [`Tournament`];
//! * an **8 KB TAGE-SC-L** predictor from the 2016 Branch Prediction
//!   Championship — [`TageScL`] (a faithful-in-structure, reduced-size
//!   implementation: tagged geometric-history tables, a statistical
//!   corrector, and a loop predictor).
//!
//! Building blocks ([`Bimodal`], [`Gshare`], [`LoopPredictor`],
//! saturating counters, folded histories) are public so downstream code
//! can compose its own predictors, and every predictor reports its
//! storage budget via [`BranchPredictor::storage_bits`].
//!
//! ## Contract
//!
//! The simulator drives predictors in trace order: for every conditional
//! branch it calls [`BranchPredictor::predict`] followed immediately by
//! [`BranchPredictor::update`] with the actual outcome. Implementations
//! may cache metadata from the last `predict` call.
//!
//! ```
//! use probranch_predictor::{BranchPredictor, Tournament};
//! let mut p = Tournament::default();
//! let pred = p.predict(0x40);
//! p.update(0x40, true);
//! assert!(p.storage_bits() <= 1024 * 8);
//! let _ = pred;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod counters;
mod dispatch;
mod gshare;
mod history;
mod loop_pred;
mod tage;
mod tournament;

pub use bimodal::Bimodal;
pub use counters::SatCounter;
pub use dispatch::{PredictorDispatch, PredictorPairVisitor, PredictorVisitor};
pub use gshare::Gshare;
pub use history::{FoldedHistory, HistoryBuffer, PackedFoldFamily};
pub use loop_pred::LoopPredictor;
pub use tage::{TageConfig, TageScL};
pub use tournament::Tournament;

/// One resolved conditional branch: the program counter the predictor is
/// consulted for and the actual outcome it is trained with.
///
/// This is the shared request record of the per-branch
/// [`BranchPredictor::predict_and_update`] pair and the batched
/// [`BranchPredictor::predict_update_batch`] entry point — a replay
/// consumer that knows all outcomes in advance hands the predictor whole
/// slices of these instead of one branch at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchReq {
    /// PC of the conditional branch.
    pub pc: u64,
    /// Actual direction of the branch.
    pub taken: bool,
}

impl BranchReq {
    /// A request from its parts.
    #[inline]
    pub fn new(pc: u64, taken: bool) -> BranchReq {
        BranchReq { pc, taken }
    }
}

/// A dynamic direction predictor for conditional branches.
///
/// Implementors must tolerate the strict alternation
/// `predict(pc); update(pc, taken)` per dynamic branch; the simulator
/// never interleaves predictions of different branches between a
/// `predict` and its `update`.
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains with the actual outcome of the branch at `pc`. Must follow
    /// the matching [`predict`](Self::predict) call.
    fn update(&mut self, pc: u64, taken: bool);

    /// The simulator's per-branch pair — [`predict`](Self::predict)
    /// immediately followed by [`update`](Self::update) — as one call,
    /// returning the prediction. Closed dispatch types override this to
    /// pay a single dispatch per branch instead of two.
    #[inline]
    fn predict_and_update(&mut self, req: BranchReq) -> bool {
        let predicted = self.predict(req.pc);
        self.update(req.pc, req.taken);
        predicted
    }

    /// The batched form of [`predict_and_update`](Self::predict_and_update):
    /// predicts and trains every request of `reqs` in order, writing the
    /// prediction of `reqs[i]` to `out[i]`.
    ///
    /// Semantically this **is** the serial loop — the default does
    /// exactly that, so every predictor supports the batch entry point —
    /// but an implementation may reorder its *internal* work across the
    /// batch as long as the produced predictions and the final predictor
    /// state stay bit-identical to the serial pairs ([`TageScL`] rolls
    /// its folded histories ahead of the table walks this way). Callers
    /// that know all outcomes up front (trace replay) should prefer this
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if `reqs` and `out` differ in length.
    fn predict_update_batch(&mut self, reqs: &[BranchReq], out: &mut [bool]) {
        assert_eq!(
            reqs.len(),
            out.len(),
            "one prediction slot per batched request"
        );
        for (req, slot) in reqs.iter().zip(out.iter_mut()) {
            *slot = self.predict_and_update(*req);
        }
    }

    /// Total storage in bits (for hardware-budget accounting).
    fn storage_bits(&self) -> usize;

    /// A short human-readable name ("tournament", "tage-sc-l", ...).
    fn name(&self) -> &'static str;
}

/// A trivial static predictor, useful as an experimental lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPredictor {
    taken: bool,
}

impl StaticPredictor {
    /// Always predicts taken.
    pub fn taken() -> StaticPredictor {
        StaticPredictor { taken: true }
    }

    /// Always predicts not-taken.
    pub fn not_taken() -> StaticPredictor {
        StaticPredictor { taken: false }
    }
}

impl BranchPredictor for StaticPredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        self.taken
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn storage_bits(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        if self.taken {
            "static-taken"
        } else {
            "static-not-taken"
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::BranchPredictor;

    /// Drives a predictor over a synthetic pattern and returns accuracy.
    pub fn accuracy_on<P: BranchPredictor>(
        p: &mut P,
        pattern: impl Iterator<Item = (u64, bool)>,
    ) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (pc, taken) in pattern {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            total += 1;
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::accuracy_on;
    use super::*;

    #[test]
    fn static_predictors() {
        let mut t = StaticPredictor::taken();
        assert!(t.predict(0));
        let mut nt = StaticPredictor::not_taken();
        assert!(!nt.predict(0));
        assert_eq!(t.storage_bits(), 0);
        assert_eq!(t.name(), "static-taken");
        assert_eq!(nt.name(), "static-not-taken");
    }

    #[test]
    fn all_predictors_learn_always_taken() {
        let pattern: Vec<(u64, bool)> = (0..2000).map(|_| (0x80u64, true)).collect();
        let mut tour = Tournament::default();
        assert!(accuracy_on(&mut tour, pattern.iter().copied()) > 0.95);
        let mut tage = TageScL::default();
        assert!(accuracy_on(&mut tage, pattern.iter().copied()) > 0.95);
        let mut bim = Bimodal::new(10);
        assert!(accuracy_on(&mut bim, pattern.iter().copied()) > 0.95);
        let mut gsh = Gshare::new(10, 10);
        assert!(accuracy_on(&mut gsh, pattern.iter().copied()) > 0.95);
    }

    #[test]
    fn budget_claims_hold() {
        let tour = Tournament::default();
        assert!(
            tour.storage_bits() <= 1024 * 8,
            "tournament exceeds 1 KB: {} bits",
            tour.storage_bits()
        );
        let tage = TageScL::default();
        assert!(
            tage.storage_bits() <= 8 * 1024 * 8,
            "TAGE-SC-L exceeds 8 KB: {} bits",
            tage.storage_bits()
        );
    }
}
