/// An `n`-bit saturating up/down counter, the universal building block of
/// dynamic branch predictors.
///
/// The counter ranges over `0 ..= 2^n - 1`; values in the upper half
/// predict taken. Signed access (for TAGE's 3-bit signed counters and the
/// statistical corrector's weights) is provided via
/// [`signed`](SatCounter::signed), centering the range on zero.
///
/// ```
/// use probranch_predictor::SatCounter;
/// let mut c = SatCounter::new(2, 1); // weakly not-taken
/// assert!(!c.taken());
/// c.inc();
/// assert!(c.taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates an `bits`-bit counter with the given initial value
    /// (clamped to range).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    pub fn new(bits: u8, initial: u8) -> SatCounter {
        assert!(
            (1..=7).contains(&bits),
            "counter width {bits} out of range 1..=7"
        );
        let max = (1u8 << bits) - 1;
        SatCounter {
            value: initial.min(max),
            max,
        }
    }

    /// A `bits`-bit counter initialized to the weakly-not-taken midpoint.
    pub fn weak_not_taken(bits: u8) -> SatCounter {
        let max = (1u8 << bits) - 1;
        SatCounter::new(bits, max / 2)
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Trains towards `taken`.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.inc()
        } else {
            self.dec()
        }
    }

    /// Whether the counter currently predicts taken (upper half).
    #[inline]
    pub fn taken(&self) -> bool {
        self.value > self.max / 2
    }

    /// The raw counter value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// The maximum representable value.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// The counter value centered on zero:
    /// `value - 2^(n-1)` (so a 3-bit counter spans `-4 ..= 3`).
    #[inline]
    pub fn signed(&self) -> i8 {
        self.value as i8 - ((self.max as i16 + 1) / 2) as i8
    }

    /// Whether the counter sits at one of its two weak states (the states
    /// adjacent to the decision boundary).
    #[inline]
    pub fn is_weak(&self) -> bool {
        let mid = self.max / 2;
        self.value == mid || self.value == mid + 1
    }

    /// Resets to the weakly-taken state if `taken`, else weakly-not-taken.
    #[inline]
    pub fn reset_weak(&mut self, taken: bool) {
        let mid = self.max / 2;
        self.value = if taken { mid + 1 } else { mid };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SatCounter::new(2, 0);
        c.dec();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn taken_threshold() {
        let mut c = SatCounter::new(2, 0);
        assert!(!c.taken()); // 0
        c.inc();
        assert!(!c.taken()); // 1
        c.inc();
        assert!(c.taken()); // 2
        c.inc();
        assert!(c.taken()); // 3
    }

    #[test]
    fn signed_view_3bit() {
        let c = SatCounter::new(3, 0);
        assert_eq!(c.signed(), -4);
        let c = SatCounter::new(3, 7);
        assert_eq!(c.signed(), 3);
        let c = SatCounter::new(3, 4);
        assert_eq!(c.signed(), 0);
    }

    #[test]
    fn weak_states() {
        let c2 = SatCounter::new(2, 1);
        assert!(c2.is_weak());
        let c2 = SatCounter::new(2, 2);
        assert!(c2.is_weak());
        let c2 = SatCounter::new(2, 3);
        assert!(!c2.is_weak());
    }

    #[test]
    fn reset_weak_lands_adjacent_to_boundary() {
        let mut c = SatCounter::new(3, 7);
        c.reset_weak(false);
        assert!(!c.taken());
        assert!(c.is_weak());
        c.reset_weak(true);
        assert!(c.taken());
        assert!(c.is_weak());
    }

    #[test]
    fn train_moves_towards_outcome() {
        let mut c = SatCounter::weak_not_taken(2);
        c.train(true);
        assert!(c.taken());
        c.train(false);
        c.train(false);
        assert!(!c.taken());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_width() {
        SatCounter::new(0, 0);
    }
}
