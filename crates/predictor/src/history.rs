/// A ring buffer of branch outcomes: the global history register,
/// retaining up to `capacity` most recent outcomes so that folded
/// histories can be updated incrementally.
#[derive(Debug, Clone)]
pub struct HistoryBuffer {
    bits: Vec<u64>,
    capacity: usize,
    /// `capacity - 1`; the capacity is kept a power of two so the hot
    /// ring arithmetic (one `get` per folded history per branch) is a
    /// mask instead of an integer division.
    mask: usize,
    /// Index of the most recent bit (position 0).
    head: usize,
}

impl HistoryBuffer {
    /// Creates an all-zero history of the given capacity (rounded up to
    /// a power-of-two multiple of 64; extra retention beyond the
    /// requested capacity is unobservable through `get`).
    pub fn new(capacity: usize) -> HistoryBuffer {
        let words = capacity.div_ceil(64).max(1).next_power_of_two();
        HistoryBuffer {
            bits: vec![0; words],
            capacity: words * 64,
            mask: words * 64 - 1,
            head: 0,
        }
    }

    /// Pushes the newest outcome; the oldest is dropped.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.head = (self.head + self.capacity - 1) & self.mask;
        let w = self.head / 64;
        let b = self.head % 64;
        if taken {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    /// The outcome `age` branches ago (0 = most recent).
    ///
    /// # Panics
    ///
    /// Panics if `age >= capacity`.
    #[inline]
    pub fn get(&self, age: usize) -> bool {
        assert!(age < self.capacity, "history age {age} out of range");
        let pos = (self.head + age) & self.mask;
        (self.bits[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// The outcome `age` branches ago without the range assertion, for
    /// in-crate callers whose ages are validated at construction time
    /// (the fold-update loops pay this lookup many times per branch).
    #[inline]
    pub(crate) fn get_unchecked_age(&self, age: usize) -> bool {
        debug_assert!(age < self.capacity);
        let pos = (self.head + age) & self.mask;
        (self.bits[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Total retained outcomes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent `n` (≤ 64) outcomes packed into a word, newest in
    /// bit 0.
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= 64);
        let mut v = 0u64;
        for i in (0..n).rev() {
            v = (v << 1) | self.get(i) as u64;
        }
        v
    }
}

/// A cyclically folded history register (Michaud/Seznec style): the XOR
/// compression of the most recent `original_len` history bits into
/// `compressed_len` bits, updated incrementally in O(1) per branch.
///
/// Used by TAGE for table indices and tags.
#[derive(Debug, Clone)]
pub struct FoldedHistory {
    comp: u64,
    // u32 fields keep the struct at 16 bytes, packing four folds per
    // cache line in the predictor's fold vectors (21 folds are updated
    // per branch).
    original_len: u32,
    compressed_len: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// Creates a folded view of the most recent `original_len` bits,
    /// compressed to `compressed_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_len` is 0 or exceeds 63.
    pub fn new(original_len: usize, compressed_len: usize) -> FoldedHistory {
        assert!(compressed_len > 0 && compressed_len < 64);
        assert!(original_len <= u32::MAX as usize, "window length overflow");
        FoldedHistory {
            comp: 0,
            original_len: original_len as u32,
            compressed_len: compressed_len as u32,
            outpoint: (original_len % compressed_len) as u32,
        }
    }

    /// Incorporates the newest outcome. `history` must be the
    /// [`HistoryBuffer`] *before* this outcome is pushed (so the bit
    /// leaving the window is still visible).
    #[inline]
    pub fn update(&mut self, history: &HistoryBuffer, newest: bool) {
        let evicted = if self.original_len == 0 {
            false
        } else {
            history.get(self.original_len as usize - 1)
        };
        self.update_with(newest, evicted);
        // (Public path keeps the asserted lookup; TAGE's batched update
        // uses `update_with` with a shared unchecked lookup.)
    }

    /// [`update`](Self::update) with the evicted bit (the outcome
    /// `original_len` branches ago, *before* pushing `newest`) supplied
    /// by the caller — lets predictors with several folds over the same
    /// window length share one history lookup per length.
    #[inline]
    pub fn update_with(&mut self, newest: bool, evicted: bool) {
        self.comp = (self.comp << 1) | newest as u64;
        self.comp ^= (evicted as u64) << self.outpoint;
        self.comp ^= self.comp >> self.compressed_len;
        self.comp &= (1u64 << self.compressed_len) - 1;
    }

    /// The folded value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// The compressed width in bits.
    pub fn compressed_len(&self) -> usize {
        self.compressed_len as usize
    }

    /// The window length in bits.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len as usize
    }

    /// Recomputes the fold from scratch — O(original_len); used to verify
    /// the incremental update in tests.
    pub fn recompute(&self, history: &HistoryBuffer) -> u64 {
        let mut v = 0u64;
        // Bit `i` of the window contributes to folded position
        // (original_len - 1 - i) mod compressed_len, matching the shift
        // direction of `update` (the newest bit enters at position 0 and
        // ages upward).
        for i in 0..self.original_len as usize {
            if history.get(i) {
                v ^= 1 << (i as u32 % self.compressed_len);
            }
        }
        v & ((1u64 << self.compressed_len) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut h = HistoryBuffer::new(8);
        h.push(true);
        h.push(false);
        h.push(true); // newest
        assert!(h.get(0));
        assert!(!h.get(1));
        assert!(h.get(2));
        assert!(!h.get(3)); // initial zero
    }

    #[test]
    fn capacity_rounds_up() {
        let h = HistoryBuffer::new(100);
        assert_eq!(h.capacity(), 128);
        let h = HistoryBuffer::new(0);
        assert_eq!(h.capacity(), 64);
    }

    #[test]
    fn wraps_around() {
        let mut h = HistoryBuffer::new(64);
        for i in 0..200 {
            h.push(i % 3 == 0);
        }
        // Newest pushed was i=199: 199%3 != 0 -> false.
        assert!(!h.get(0));
        // i=198 divisible by 3 -> true at age 1.
        assert!(h.get(1));
    }

    #[test]
    fn low_bits_packs_newest_first() {
        let mut h = HistoryBuffer::new(64);
        h.push(true); // age 2
        h.push(false); // age 1
        h.push(true); // age 0
        assert_eq!(h.low_bits(3), 0b101);
    }

    #[test]
    fn folded_matches_recompute_over_long_run() {
        let mut h = HistoryBuffer::new(256);
        let mut f = FoldedHistory::new(130, 11);
        let mut x = 0x1234_5678u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 63) & 1 == 1;
            f.update(&h, bit);
            h.push(bit);
            assert_eq!(f.value(), f.recompute(&h));
        }
    }

    #[test]
    fn folded_short_history() {
        // original_len < compressed_len: fold is just the raw bits.
        let mut h = HistoryBuffer::new(64);
        let mut f = FoldedHistory::new(4, 8);
        for bit in [true, true, false, true, false, false] {
            f.update(&h, bit);
            h.push(bit);
        }
        assert_eq!(f.value(), f.recompute(&h));
        assert_eq!(f.value(), h.low_bits(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range_age() {
        let h = HistoryBuffer::new(64);
        h.get(64);
    }
}
