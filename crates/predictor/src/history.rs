/// A ring buffer of branch outcomes: the global history register,
/// retaining up to `capacity` most recent outcomes so that folded
/// histories can be updated incrementally.
#[derive(Debug, Clone)]
pub struct HistoryBuffer {
    bits: Vec<u64>,
    capacity: usize,
    /// `capacity - 1`; the capacity is kept a power of two so the hot
    /// ring arithmetic (one `get` per folded history per branch) is a
    /// mask instead of an integer division.
    mask: usize,
    /// Index of the most recent bit (position 0).
    head: usize,
}

impl HistoryBuffer {
    /// Creates an all-zero history of the given capacity (rounded up to
    /// a power-of-two multiple of 64; extra retention beyond the
    /// requested capacity is unobservable through `get`).
    pub fn new(capacity: usize) -> HistoryBuffer {
        let words = capacity.div_ceil(64).max(1).next_power_of_two();
        HistoryBuffer {
            bits: vec![0; words],
            capacity: words * 64,
            mask: words * 64 - 1,
            head: 0,
        }
    }

    /// Pushes the newest outcome; the oldest is dropped.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.head = (self.head + self.capacity - 1) & self.mask;
        let w = self.head / 64;
        let b = self.head % 64;
        if taken {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    /// The outcome `age` branches ago (0 = most recent).
    ///
    /// # Panics
    ///
    /// Panics if `age >= capacity`.
    #[inline]
    pub fn get(&self, age: usize) -> bool {
        assert!(age < self.capacity, "history age {age} out of range");
        let pos = (self.head + age) & self.mask;
        (self.bits[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// The outcome `age` branches ago without the range assertion, for
    /// in-crate callers whose ages are validated at construction time
    /// (the fold-update loops pay this lookup many times per branch).
    #[inline]
    pub(crate) fn get_unchecked_age(&self, age: usize) -> bool {
        debug_assert!(age < self.capacity);
        let pos = (self.head + age) & self.mask;
        (self.bits[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Total retained outcomes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent `n` (≤ 64) outcomes packed into a word, newest in
    /// bit 0.
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= 64);
        let mut v = 0u64;
        for i in (0..n).rev() {
            v = (v << 1) | self.get(i) as u64;
        }
        v
    }
}

/// A cyclically folded history register (Michaud/Seznec style): the XOR
/// compression of the most recent `original_len` history bits into
/// `compressed_len` bits, updated incrementally in O(1) per branch.
///
/// Used by TAGE for table indices and tags.
#[derive(Debug, Clone)]
pub struct FoldedHistory {
    comp: u64,
    // u32 fields keep the struct at 16 bytes, packing four folds per
    // cache line in the predictor's fold vectors (21 folds are updated
    // per branch).
    original_len: u32,
    compressed_len: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// Creates a folded view of the most recent `original_len` bits,
    /// compressed to `compressed_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_len` is 0 or exceeds 63.
    pub fn new(original_len: usize, compressed_len: usize) -> FoldedHistory {
        assert!(compressed_len > 0 && compressed_len < 64);
        assert!(original_len <= u32::MAX as usize, "window length overflow");
        FoldedHistory {
            comp: 0,
            original_len: original_len as u32,
            compressed_len: compressed_len as u32,
            outpoint: (original_len % compressed_len) as u32,
        }
    }

    /// Incorporates the newest outcome. `history` must be the
    /// [`HistoryBuffer`] *before* this outcome is pushed (so the bit
    /// leaving the window is still visible).
    #[inline]
    pub fn update(&mut self, history: &HistoryBuffer, newest: bool) {
        let evicted = if self.original_len == 0 {
            false
        } else {
            history.get(self.original_len as usize - 1)
        };
        self.update_with(newest, evicted);
        // (Public path keeps the asserted lookup; TAGE's batched update
        // uses `update_with` with a shared unchecked lookup.)
    }

    /// [`update`](Self::update) with the evicted bit (the outcome
    /// `original_len` branches ago, *before* pushing `newest`) supplied
    /// by the caller — lets predictors with several folds over the same
    /// window length share one history lookup per length.
    #[inline]
    pub fn update_with(&mut self, newest: bool, evicted: bool) {
        self.comp = (self.comp << 1) | newest as u64;
        self.comp ^= (evicted as u64) << self.outpoint;
        self.comp ^= self.comp >> self.compressed_len;
        self.comp &= (1u64 << self.compressed_len) - 1;
    }

    /// The folded value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// The compressed width in bits.
    pub fn compressed_len(&self) -> usize {
        self.compressed_len as usize
    }

    /// The window length in bits.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len as usize
    }

    /// Recomputes the fold from scratch — O(original_len); used to verify
    /// the incremental update in tests.
    pub fn recompute(&self, history: &HistoryBuffer) -> u64 {
        let mut v = 0u64;
        // Bit `i` of the window contributes to folded position
        // (original_len - 1 - i) mod compressed_len, matching the shift
        // direction of `update` (the newest bit enters at position 0 and
        // ages upward).
        for i in 0..self.original_len as usize {
            if history.get(i) {
                v ^= 1 << (i as u32 % self.compressed_len);
            }
        }
        v & ((1u64 << self.compressed_len) - 1)
    }
}

/// A family of equal-width [`FoldedHistory`]s packed into one `u64`,
/// lane `t` at bits `[t·clen, (t+1)·clen)` — TAGE updates its ~20 folds
/// per branch, and packing turns each family's per-fold shift/XOR chain
/// into one word-wide operation.
///
/// The packed update is bit-for-bit the scalar recurrence. Per lane,
/// [`FoldedHistory::update_with`] computes
/// `((comp << 1 | newest) ^ (evicted << outpoint) ^ (msb at bit 0))`
/// masked to `clen` bits, where `msb` is the pre-shift bit `clen − 1`
/// (the only bit the `comp ^= comp >> clen` fold can move). The packed
/// form extracts all lanes' msbs first, shifts the msb-cleared word,
/// ORs the broadcast `newest` bit, folds the msbs down, and XORs the
/// per-lane evicted bits — same algebra, one word at a time.
#[derive(Debug, Clone)]
pub struct PackedFoldFamily {
    comp: u64,
    clen: u32,
    lanes: u32,
    /// Bit `t·clen` of every lane.
    lsb_mask: u64,
    /// Bit `t·clen + clen − 1` of every lane.
    msb_mask: u64,
    /// Evicted-bit XOR word per `ebits` value: entry `m` has bit
    /// `t·clen + original_len_t % clen` set for every lane `t` set in
    /// `m` (zero-length lanes contribute nothing). One load replaces
    /// the per-lane scatter loop on the hot path.
    evict_xor: Box<[u64]>,
}

impl PackedFoldFamily {
    /// Hard lane cap: bounds the evicted-bit lookup table at
    /// 2⁶ × 8 bytes (real families are ≤ 7 lanes at TAGE's ≥ 8-bit fold
    /// widths, and a 9-bit-wide family already exceeds one word at 8
    /// lanes).
    pub const MAX_LANES: usize = 6;

    /// Packs one fold per window in `original_lens`, each compressed to
    /// `clen` bits — or `None` when the family does not fit one word or
    /// exceeds [`MAX_LANES`](Self::MAX_LANES).
    pub fn try_new(original_lens: &[usize], clen: usize) -> Option<PackedFoldFamily> {
        let lanes = original_lens.len();
        if clen == 0 || lanes == 0 || lanes > Self::MAX_LANES || lanes * clen > 64 {
            return None;
        }
        let mut lsb_mask = 0u64;
        for t in 0..lanes {
            lsb_mask |= 1u64 << (t * clen);
        }
        let evict_xor = (0..1usize << lanes)
            .map(|m| {
                original_lens
                    .iter()
                    .enumerate()
                    .filter(|&(t, &h)| h > 0 && m >> t & 1 == 1)
                    .map(|(t, &h)| 1u64 << (t * clen + h % clen))
                    .sum()
            })
            .collect();
        Some(PackedFoldFamily {
            comp: 0,
            clen: clen as u32,
            lanes: lanes as u32,
            lsb_mask,
            msb_mask: lsb_mask << (clen - 1),
            evict_xor,
        })
    }

    /// Incorporates the newest outcome into every lane. Bit `t` of
    /// `ebits` is the outcome leaving lane `t`'s window (the bit
    /// `original_len_t − 1` branches ago, *before* this outcome is
    /// pushed) — zero-length lanes ignore their bit.
    #[inline]
    pub fn update(&mut self, newest: bool, ebits: u64) {
        // Lane bit 0 is zero after the msb-cleared shift, so the
        // `newest` broadcast can OR in; the msb fold and the evicted
        // bits then combine by XOR, exactly as the scalar recurrence.
        let msbs = self.comp & self.msb_mask;
        let comp = (((self.comp ^ msbs) << 1) | (if newest { self.lsb_mask } else { 0 }))
            ^ (msbs >> (self.clen - 1));
        self.comp = comp ^ self.evict_xor[(ebits & ((1 << self.lanes) - 1)) as usize];
    }

    /// Lane `t`'s folded value.
    #[inline]
    pub fn value(&self, t: usize) -> u64 {
        (self.comp >> (t as u32 * self.clen)) & ((1u64 << self.clen) - 1)
    }

    /// The compressed width shared by the lanes.
    pub fn compressed_len(&self) -> usize {
        self.clen as usize
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut h = HistoryBuffer::new(8);
        h.push(true);
        h.push(false);
        h.push(true); // newest
        assert!(h.get(0));
        assert!(!h.get(1));
        assert!(h.get(2));
        assert!(!h.get(3)); // initial zero
    }

    #[test]
    fn capacity_rounds_up() {
        let h = HistoryBuffer::new(100);
        assert_eq!(h.capacity(), 128);
        let h = HistoryBuffer::new(0);
        assert_eq!(h.capacity(), 64);
    }

    #[test]
    fn wraps_around() {
        let mut h = HistoryBuffer::new(64);
        for i in 0..200 {
            h.push(i % 3 == 0);
        }
        // Newest pushed was i=199: 199%3 != 0 -> false.
        assert!(!h.get(0));
        // i=198 divisible by 3 -> true at age 1.
        assert!(h.get(1));
    }

    #[test]
    fn low_bits_packs_newest_first() {
        let mut h = HistoryBuffer::new(64);
        h.push(true); // age 2
        h.push(false); // age 1
        h.push(true); // age 0
        assert_eq!(h.low_bits(3), 0b101);
    }

    #[test]
    fn folded_matches_recompute_over_long_run() {
        let mut h = HistoryBuffer::new(256);
        let mut f = FoldedHistory::new(130, 11);
        let mut x = 0x1234_5678u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 63) & 1 == 1;
            f.update(&h, bit);
            h.push(bit);
            assert_eq!(f.value(), f.recompute(&h));
        }
    }

    #[test]
    fn folded_short_history() {
        // original_len < compressed_len: fold is just the raw bits.
        let mut h = HistoryBuffer::new(64);
        let mut f = FoldedHistory::new(4, 8);
        for bit in [true, true, false, true, false, false] {
            f.update(&h, bit);
            h.push(bit);
        }
        assert_eq!(f.value(), f.recompute(&h));
        assert_eq!(f.value(), h.low_bits(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range_age() {
        let h = HistoryBuffer::new(64);
        h.get(64);
    }

    #[test]
    fn packed_family_matches_scalar_folds() {
        // TAGE's default geometries, plus a zero-length lane.
        for (lens, clen) in [
            (vec![4usize, 8, 16, 34, 70, 144], 9usize),
            (vec![4, 8, 16, 34, 70, 144], 8),
            (vec![3, 8, 21], 8),
            (vec![0, 5, 9], 7),
        ] {
            let mut scalars: Vec<FoldedHistory> =
                lens.iter().map(|&h| FoldedHistory::new(h, clen)).collect();
            let mut packed = PackedFoldFamily::try_new(&lens, clen).expect("fits one word");
            assert_eq!(packed.lanes(), lens.len());
            assert_eq!(packed.compressed_len(), clen);
            let mut h = HistoryBuffer::new(256);
            let mut x = 0x1234_5678u64;
            for _ in 0..2000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let bit = (x >> 63) & 1 == 1;
                let mut ebits = 0u64;
                for (t, &hl) in lens.iter().enumerate() {
                    if hl > 0 && h.get(hl - 1) {
                        ebits |= 1 << t;
                    }
                }
                for f in &mut scalars {
                    f.update(&h, bit);
                }
                packed.update(bit, ebits);
                h.push(bit);
                for (t, f) in scalars.iter().enumerate() {
                    assert_eq!(packed.value(t), f.value(), "lane {t} drifted");
                }
            }
        }
    }

    #[test]
    fn packed_family_rejects_oversized_or_degenerate() {
        assert!(PackedFoldFamily::try_new(&[1; 8], 9).is_none(), "72 bits");
        assert!(
            PackedFoldFamily::try_new(&[1; 7], 9).is_none(),
            "lane cap exceeded"
        );
        assert!(PackedFoldFamily::try_new(&[], 9).is_none(), "no lanes");
        assert!(PackedFoldFamily::try_new(&[4], 0).is_none(), "zero width");
        assert!(PackedFoldFamily::try_new(&[1; 6], 10).is_some(), "60 bits");
    }
}
