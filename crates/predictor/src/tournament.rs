use crate::{Bimodal, BranchPredictor, Gshare, LoopPredictor, SatCounter};

/// The paper's 1 KB baseline: a tournament predictor "modeled after the
/// Pentium-M, consisting of a global branch predictor, a bimodal branch
/// predictor and a loop branch predictor" (Section VI-B, after Uzelac &
/// Milenkovic's reverse engineering).
///
/// Organization:
///
/// * a bimodal component (1024 × 2-bit);
/// * a gshare-style global component (1024 × 2-bit, 12 bits of history);
/// * a per-PC 2-bit chooser selecting between them;
/// * a 32-entry loop predictor that overrides when confident.
///
/// Total budget: 7,340 bits ≈ 0.90 KB ≤ 1 KB.
///
/// ```
/// use probranch_predictor::{BranchPredictor, Tournament};
/// let mut p = Tournament::default();
/// let _ = p.predict(0x10);
/// p.update(0x10, true);
/// ```
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    global: Gshare,
    chooser: Vec<SatCounter>,
    loops: LoopPredictor,
    /// Metadata from the last `predict`, consumed by `update`.
    last: Option<LastPred>,
}

#[derive(Debug, Clone, Copy)]
struct LastPred {
    pc: u64,
    bimodal_pred: bool,
    global_pred: bool,
}

impl Tournament {
    /// Creates the 1 KB configuration used in the paper's evaluation.
    pub fn new() -> Tournament {
        Tournament {
            bimodal: Bimodal::new(10),
            global: Gshare::new(10, 12),
            chooser: vec![SatCounter::weak_not_taken(2); 1 << 10],
            loops: LoopPredictor::new(32),
            last: None,
        }
    }

    fn chooser_index(&self, pc: u64) -> usize {
        (pc & (self.chooser.len() as u64 - 1)) as usize
    }
}

impl Default for Tournament {
    fn default() -> Tournament {
        Tournament::new()
    }
}

impl BranchPredictor for Tournament {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        let bimodal_pred = self.bimodal.lookup(pc);
        let global_pred = self.global.lookup(pc);
        self.last = Some(LastPred {
            pc,
            bimodal_pred,
            global_pred,
        });
        if let Some(loop_pred) = self.loops.lookup(pc) {
            return loop_pred;
        }
        // Chooser: counter high half selects the global component.
        if self.chooser[self.chooser_index(pc)].taken() {
            global_pred
        } else {
            bimodal_pred
        }
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        let last = self.last.take();
        // Recover component predictions; if predict() was skipped (which
        // the simulator never does), fall back to fresh lookups.
        let (bimodal_pred, global_pred) = match last {
            Some(l) if l.pc == pc => (l.bimodal_pred, l.global_pred),
            _ => (self.bimodal.lookup(pc), self.global.lookup(pc)),
        };
        // Chooser trains towards whichever component was right (only on
        // disagreement).
        if bimodal_pred != global_pred {
            let idx = self.chooser_index(pc);
            self.chooser[idx].train(global_pred == taken);
        }
        self.bimodal.train(pc, taken);
        self.global.train(pc, taken);
        self.loops.train(pc, taken);
    }

    fn storage_bits(&self) -> usize {
        self.bimodal.storage_bits()
            + self.global.storage_bits()
            + self.chooser.len() * 2
            + self.loops.storage_bits()
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::accuracy_on;

    #[test]
    fn within_1kb_budget() {
        let p = Tournament::new();
        let bits = p.storage_bits();
        assert!(bits <= 8192, "{bits} bits > 1 KB");
        assert!(
            bits >= 6000,
            "{bits} bits suspiciously small for a 1 KB design"
        );
    }

    #[test]
    fn beats_components_on_mixed_workload() {
        // Mix of a strongly biased branch (bimodal-friendly), an
        // alternating branch (global-friendly) and a fixed-trip loop
        // (loop-predictor-friendly).
        fn pattern() -> impl Iterator<Item = (u64, bool)> {
            (0..30_000).map(|i| match i % 3 {
                0 => (0x100u64, i % 30 != 0),      // 90% taken
                1 => (0x200u64, (i / 3) % 2 == 0), // alternating
                _ => (0x300u64, (i / 3) % 9 != 8), // loop, trip 8
            })
        }
        let mut t = Tournament::new();
        let acc = accuracy_on(&mut t, pattern());
        assert!(acc > 0.9, "tournament accuracy {acc}");
    }

    #[test]
    fn chooser_learns_to_prefer_global_for_alternation() {
        let mut t = Tournament::new();
        let pattern = (0..8000).map(|i| (0x40u64, i % 2 == 0));
        let acc = accuracy_on(&mut t, pattern);
        assert!(
            acc > 0.9,
            "accuracy {acc}: chooser failed to migrate to global"
        );
    }

    #[test]
    fn loop_override_kicks_in() {
        let mut t = Tournament::new();
        // Trip count 37 — beyond global history reach, only the loop
        // predictor can capture the exit.
        let mut exit_correct = 0u32;
        let mut exits = 0u32;
        for traversal in 0..200 {
            for i in 0..=37 {
                let taken = i != 37;
                let pred = t.predict(0x500);
                if traversal > 50 && !taken {
                    exits += 1;
                    exit_correct += (pred == taken) as u32;
                }
                t.update(0x500, taken);
            }
        }
        assert!(exits > 0);
        assert!(
            exit_correct as f64 / exits as f64 > 0.9,
            "loop exits predicted {exit_correct}/{exits}"
        );
    }

    #[test]
    fn update_without_matching_predict_is_tolerated() {
        let mut t = Tournament::new();
        t.update(0x77, true); // must not panic
        let _ = t.predict(0x77);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Tournament::new().name(), "tournament");
    }
}
