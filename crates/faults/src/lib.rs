//! # probranch-faults
//!
//! Deterministic, seeded **failpoints** for torture-testing the
//! execution and storage layers: persisted-trace writes (create/write,
//! short write, fsync, rename, ENOSPC), memory-mapped loads, trace
//! capture, experiment-cell bodies (injected panics and delays), the
//! sweep service's request path (dropped accepts, failed frame
//! reads/writes, post-sweep connection drops) and spurious
//! cancellations of the current cancel scope.
//!
//! A [`FaultPlan`] is a set of `(site, probability, optional budget)`
//! clauses plus a plan seed. Whether a particular failpoint fires is a
//! **pure function** of the plan seed, the site and a caller-supplied
//! salt (typically a content hash or cell identity plus the attempt
//! number): `SplitMix64::mix_fold([seed, site, salt...])` compared
//! against the clause probability. Fault schedules are therefore
//! reproducible across runs, thread counts and schedulers — the same
//! plan trips the same sites for the same cells every time, which is
//! what lets CI diff a fault-injected `figures` run byte-for-byte
//! against a clean one.
//!
//! When no plan is installed every check is one relaxed atomic load and
//! a predicted-not-taken branch — the instrumented hot paths cost
//! nothing in production.
//!
//! Plans parse from a compact spec (`figures --fault-plan`,
//! `PROBRANCH_FAULTS`):
//!
//! ```text
//! seed=7,cell.panic=0.3,persist.write=0.5x2,mmap.load=1.0
//! ```
//!
//! `seed=N` seeds the schedule (default 0); every other clause is
//! `<site>=<probability>` with an optional `xCOUNT` budget capping how
//! many times the site may fire in total.
//!
//! The plan is process-global (faults must be visible across worker
//! threads); tests install plans through [`ScopedPlan`], which
//! serializes on a global lock and uninstalls on drop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use probranch_rng::SplitMix64;

/// Every failpoint site wired into the stack, one stable name each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Persisted-trace write path: creating or writing the temp file
    /// fails with a generic (transient-looking) I/O error.
    PersistWrite,
    /// Persisted-trace write path: the write fails with `ENOSPC`
    /// (disk full) — the store must disable persistence for the run.
    PersistEnospc,
    /// Persisted-trace write path: only a prefix of the encoding
    /// reaches the temp file before the writer dies (a torn temp).
    PersistShort,
    /// Persisted-trace write path: the data fsync fails.
    PersistFsync,
    /// Persisted-trace write path: the publishing rename fails.
    PersistRename,
    /// Memory-mapped trace load fails with an I/O error.
    MmapLoad,
    /// Trace capture (functional emulation) fails.
    Capture,
    /// An experiment cell body panics.
    CellPanic,
    /// An experiment cell body stalls briefly (exercises the
    /// per-cell deadline watchdog).
    CellDelay,
    /// Sweep service: an accepted connection is dropped before its
    /// request is read.
    ServeAccept,
    /// Sweep service: reading a request frame fails.
    ServeRead,
    /// Sweep service: writing a response frame fails (the connection
    /// is closed with the response unsent).
    ServeWrite,
    /// Sweep service: the connection is dropped after the sweep ran
    /// but before the response is written.
    ServeDrop,
    /// A spurious cancellation of the current cancel scope's token
    /// (exercises the cooperative-cancellation path end to end).
    CancelSpurious,
    /// Block-compiled capture degrades to the decoded interpreter for
    /// the whole stream (exercises the capture-tier fallback; must be
    /// byte-invisible in every report).
    CaptureBlock,
}

/// All sites, for iteration and parsing.
pub const ALL_SITES: [Site; 15] = [
    Site::PersistWrite,
    Site::PersistEnospc,
    Site::PersistShort,
    Site::PersistFsync,
    Site::PersistRename,
    Site::MmapLoad,
    Site::Capture,
    Site::CellPanic,
    Site::CellDelay,
    Site::ServeAccept,
    Site::ServeRead,
    Site::ServeWrite,
    Site::ServeDrop,
    Site::CancelSpurious,
    Site::CaptureBlock,
];

impl Site {
    /// The site's stable spec/reporting name.
    pub fn name(self) -> &'static str {
        match self {
            Site::PersistWrite => "persist.write",
            Site::PersistEnospc => "persist.enospc",
            Site::PersistShort => "persist.short",
            Site::PersistFsync => "persist.fsync",
            Site::PersistRename => "persist.rename",
            Site::MmapLoad => "mmap.load",
            Site::Capture => "capture",
            Site::CellPanic => "cell.panic",
            Site::CellDelay => "cell.delay",
            Site::ServeAccept => "serve.accept",
            Site::ServeRead => "serve.read",
            Site::ServeWrite => "serve.write",
            Site::ServeDrop => "serve.drop",
            Site::CancelSpurious => "cancel.spurious",
            Site::CaptureBlock => "capture.block",
        }
    }

    /// Parses a spec name back to the site.
    pub fn parse(name: &str) -> Option<Site> {
        ALL_SITES.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One failpoint clause: fire `site` with `probability`, at most
/// `budget` times (`None` = unlimited).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clause {
    /// The instrumented site this clause arms.
    pub site: Site,
    /// Firing probability in `[0, 1]`, evaluated per deterministic roll.
    pub probability: f64,
    /// Cap on total fires across the whole run, `None` for unlimited.
    pub budget: Option<u64>,
}

/// A parsed fault plan: the schedule seed plus the armed clauses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed folded into every roll — two plans with different seeds
    /// trip different (but each internally reproducible) schedules.
    pub seed: u64,
    /// The armed failpoint clauses (at most one per site; later
    /// clauses for the same site override earlier ones).
    pub clauses: Vec<Clause>,
}

impl FaultPlan {
    /// An empty plan (no sites armed) under `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            clauses: Vec::new(),
        }
    }

    /// Arms `site` at `probability`, replacing any previous clause for
    /// the same site.
    pub fn arm(mut self, site: Site, probability: f64) -> FaultPlan {
        self.arm_mut(site, probability, None);
        self
    }

    /// [`arm`](FaultPlan::arm) with a total-fire budget.
    pub fn arm_capped(mut self, site: Site, probability: f64, budget: u64) -> FaultPlan {
        self.arm_mut(site, probability, Some(budget));
        self
    }

    fn arm_mut(&mut self, site: Site, probability: f64, budget: Option<u64>) {
        self.clauses.retain(|c| c.site != site);
        self.clauses.push(Clause {
            site,
            probability: probability.clamp(0.0, 1.0),
            budget,
        });
    }

    /// Parses the `--fault-plan` / `PROBRANCH_FAULTS` spec syntax:
    /// comma-separated clauses, each `seed=N` or
    /// `<site>=<probability>[xCOUNT]`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not `name=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("fault seed `{value}` is not a u64"))?;
                continue;
            }
            let site = Site::parse(key).ok_or_else(|| {
                format!(
                    "unknown fault site `{key}` (expected one of: {})",
                    ALL_SITES.map(Site::name).join(", ")
                )
            })?;
            let (prob, budget) =
                match value.split_once(['x', 'X']) {
                    Some((p, n)) => (
                        p,
                        Some(n.parse::<u64>().map_err(|_| {
                            format!("fault budget `{n}` in `{clause}` is not a u64")
                        })?),
                    ),
                    None => (value, None),
                };
            let probability = prob
                .parse::<f64>()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| {
                    format!("fault probability `{prob}` in `{clause}` is not in [0, 1]")
                })?;
            plan.arm_mut(site, probability, budget);
        }
        Ok(plan)
    }

    /// Renders the plan back to its spec syntax (parse/render round-trips).
    pub fn spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for c in &self.clauses {
            out.push_str(&format!(",{}={}", c.site.name(), c.probability));
            if let Some(b) = c.budget {
                out.push_str(&format!("x{b}"));
            }
        }
        out
    }
}

/// The installed plan plus its per-site accounting.
struct Installed {
    plan: FaultPlan,
    /// Times each site fired (indexed by `Site as usize`).
    hits: [AtomicU64; ALL_SITES.len()],
    /// Remaining fire budget per site (`u64::MAX` = unlimited).
    budget: [AtomicU64; ALL_SITES.len()],
}

impl Installed {
    fn new(plan: FaultPlan) -> Installed {
        let budget = std::array::from_fn(|i| {
            let site = ALL_SITES[i];
            let left = plan
                .clauses
                .iter()
                .find(|c| c.site == site)
                .and_then(|c| c.budget)
                .unwrap_or(u64::MAX);
            AtomicU64::new(left)
        });
        Installed {
            plan,
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            budget,
        }
    }
}

/// Fast-path gate: true only while a plan with at least one armed
/// clause is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Installed>> {
    static PLAN: OnceLock<Mutex<Option<Installed>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

fn lock_plan() -> MutexGuard<'static, Option<Installed>> {
    // A panic while holding the lock leaves the slot in a consistent
    // state (we only ever swap whole plans), so poisoning is ignorable.
    plan_slot().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` process-wide, replacing any previous plan and
/// resetting all hit counters and budgets.
pub fn install(plan: FaultPlan) {
    let armed = plan.clauses.iter().any(|c| c.probability > 0.0);
    *lock_plan() = Some(Installed::new(plan));
    ACTIVE.store(armed, Ordering::Release);
}

/// Uninstalls the current plan; every failpoint reverts to a no-op.
pub fn clear() {
    *lock_plan() = None;
    ACTIVE.store(false, Ordering::Release);
}

/// Whether any fault plan is currently armed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// The deterministic failpoint decision: does `site` fire for `salt`
/// under the installed plan?
///
/// The roll is `SplitMix64::mix_fold([plan seed, site, salt...])`
/// mapped to `[0, 1)` and compared against the clause probability —
/// reproducible for the same `(plan, site, salt)` triple regardless of
/// threads or call order. Callers put everything that identifies *this
/// particular potential failure* into the salt (content hash, cell
/// hash, attempt number), so retries re-roll and byte-diffable
/// schedules follow from byte-diffable salts. A fire decrements the
/// site's budget and bumps its hit counter.
#[inline]
pub fn injected(site: Site, salt: &[u64]) -> bool {
    if !ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    injected_slow(site, salt)
}

#[cold]
fn injected_slow(site: Site, salt: &[u64]) -> bool {
    let guard = lock_plan();
    let Some(installed) = guard.as_ref() else {
        return false;
    };
    let Some(clause) = installed.plan.clauses.iter().find(|c| c.site == site) else {
        return false;
    };
    if clause.probability <= 0.0 {
        return false;
    }
    let mut parts = Vec::with_capacity(salt.len() + 2);
    parts.push(installed.plan.seed);
    parts.push(site as u64 ^ 0xFA17_FA17_FA17_FA17);
    parts.extend_from_slice(salt);
    let roll = SplitMix64::mix_fold(&parts);
    // 53 uniform mantissa bits → [0, 1); p = 1.0 always fires.
    let u = (roll >> 11) as f64 / (1u64 << 53) as f64;
    if u >= clause.probability {
        return false;
    }
    // Budget: fire only while the cap has room. The decrement order is
    // scheduling-dependent under threads, but a budget only *caps* the
    // schedule — the byte-identity invariant never depends on it.
    let i = site as usize;
    if installed.budget[i]
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
            left.checked_sub(1)
        })
        .is_err()
    {
        return false;
    }
    installed.hits[i].fetch_add(1, Ordering::Relaxed);
    true
}

/// The structured I/O error an injected persistence/load fault carries:
/// the message names the site so failures stay attributable end to end.
pub fn io_error(site: Site) -> std::io::Error {
    let kind = match site {
        Site::PersistEnospc => std::io::ErrorKind::StorageFull,
        _ => std::io::ErrorKind::Other,
    };
    std::io::Error::new(kind, format!("injected fault: {}", site.name()))
}

/// Cell-body failpoints: [`Site::CellDelay`] stalls ~2 ms (long enough
/// for a millisecond-deadline watchdog to notice, short enough for
/// torture suites), then [`Site::CellPanic`] panics with a message
/// naming the site and salt. Call at the top of a supervised cell body
/// with a salt of (cell identity, attempt number).
pub fn cell_faults(salt: &[u64]) {
    if !active() {
        return;
    }
    if injected(Site::CellDelay, salt) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    if injected(Site::CellPanic, salt) {
        panic!("injected fault: {} (salt {salt:x?})", Site::CellPanic);
    }
}

/// Per-site fire counts of the installed plan, non-zero entries only —
/// the "fault sites hit" section of structured reports. Empty when no
/// plan is installed.
pub fn hits() -> Vec<(Site, u64)> {
    let guard = lock_plan();
    let Some(installed) = guard.as_ref() else {
        return Vec::new();
    };
    ALL_SITES
        .into_iter()
        .filter_map(|s| {
            let n = installed.hits[s as usize].load(Ordering::Relaxed);
            (n > 0).then_some((s, n))
        })
        .collect()
}

/// Renders [`hits`] as `site×count` joined with `, ` — `"none"` when no
/// site fired.
pub fn hits_summary() -> String {
    let hits = hits();
    if hits.is_empty() {
        return "none".to_string();
    }
    hits.iter()
        .map(|(s, n)| format!("{}\u{d7}{n}", s.name()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// A test-scoped plan installation: serializes on a global lock (fault
/// state is process-wide) and uninstalls on drop. Every test touching
/// failpoints must go through this guard so concurrently running tests
/// in the same binary never see each other's plans.
#[derive(Debug)]
pub struct ScopedPlan {
    _guard: MutexGuard<'static, ()>,
}

impl ScopedPlan {
    /// Locks the global fault mutex, then installs `plan`.
    pub fn install(plan: FaultPlan) -> ScopedPlan {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(plan);
        ScopedPlan { _guard: guard }
    }
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_is_a_no_op() {
        let _scope = ScopedPlan::install(FaultPlan::default());
        clear();
        assert!(!active());
        assert!(!injected(Site::Capture, &[1, 2, 3]));
        assert!(hits().is_empty());
        assert_eq!(hits_summary(), "none");
    }

    #[test]
    fn spec_parses_and_round_trips() {
        let plan = FaultPlan::parse("seed=7, cell.panic=0.25, persist.write=1.0x3").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.clauses.len(), 2);
        assert_eq!(plan.clauses[0].site, Site::CellPanic);
        assert_eq!(plan.clauses[1].budget, Some(3));
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        // Later clauses override earlier ones for the same site.
        let over = FaultPlan::parse("capture=0.1,capture=0.9").unwrap();
        assert_eq!(over.clauses.len(), 1);
        assert!((over.clauses[0].probability - 0.9).abs() < 1e-12);
        // Errors name the offending clause.
        assert!(FaultPlan::parse("bogus.site=0.5").is_err());
        assert!(FaultPlan::parse("capture=1.5").is_err());
        assert!(FaultPlan::parse("capture").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("capture=0.5xq").is_err());
        // The empty spec is the empty plan.
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let _scope = ScopedPlan::install(FaultPlan::seeded(1).arm(Site::Capture, 0.5));
        let pattern: Vec<bool> = (0..64).map(|i| injected(Site::Capture, &[i])).collect();
        // Same plan, same salts → same schedule.
        install(FaultPlan::seeded(1).arm(Site::Capture, 0.5));
        let again: Vec<bool> = (0..64).map(|i| injected(Site::Capture, &[i])).collect();
        assert_eq!(pattern, again);
        assert!(pattern.iter().any(|&b| b) && !pattern.iter().all(|&b| b));
        // A different seed re-rolls the schedule.
        install(FaultPlan::seeded(2).arm(Site::Capture, 0.5));
        let other: Vec<bool> = (0..64).map(|i| injected(Site::Capture, &[i])).collect();
        assert_ne!(pattern, other);
        // Unarmed sites never fire even while the plan is active.
        assert!(!injected(Site::MmapLoad, &[0]));
    }

    #[test]
    fn probability_extremes_behave() {
        let _scope = ScopedPlan::install(
            FaultPlan::seeded(3)
                .arm(Site::MmapLoad, 1.0)
                .arm(Site::Capture, 0.0),
        );
        assert!((0..32).all(|i| injected(Site::MmapLoad, &[i])));
        assert!((0..32).all(|i| !injected(Site::Capture, &[i])));
    }

    #[test]
    fn budget_caps_total_fires_and_hits_count() {
        let _scope =
            ScopedPlan::install(FaultPlan::seeded(9).arm_capped(Site::PersistWrite, 1.0, 2));
        let fired = (0..10)
            .filter(|&i| injected(Site::PersistWrite, &[i]))
            .count();
        assert_eq!(fired, 2, "budget must cap fires");
        assert_eq!(hits(), vec![(Site::PersistWrite, 2)]);
        assert_eq!(hits_summary(), "persist.write\u{d7}2");
    }

    #[test]
    fn injected_io_errors_are_attributable() {
        let e = io_error(Site::PersistEnospc);
        assert_eq!(e.kind(), std::io::ErrorKind::StorageFull);
        assert!(e.to_string().contains("persist.enospc"));
        assert!(io_error(Site::MmapLoad).to_string().contains("mmap.load"));
    }

    #[test]
    fn cell_faults_panic_names_the_site() {
        let _scope = ScopedPlan::install(FaultPlan::seeded(4).arm(Site::CellPanic, 1.0));
        let err = std::panic::catch_unwind(|| cell_faults(&[0xBEEF, 0])).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault: cell.panic"), "{msg}");
    }

    #[test]
    fn site_names_parse_back() {
        for site in ALL_SITES {
            assert_eq!(Site::parse(site.name()), Some(site));
        }
        assert_eq!(Site::parse("nope"), None);
    }
}
