//! Failpoint coverage for the persistence layer. These tests install
//! process-global fault plans, so they live in their own test binary —
//! the library's unit tests must never observe an armed plan — and
//! every test serializes on [`faults::ScopedPlan`].

use std::path::PathBuf;

use probranch_faults as faults;
use probranch_pipeline::{DynTrace, SimConfig, TraceLoad};

use probranch_isa::{CmpOp, ProgramBuilder, Reg};

fn workload(iters: i64) -> probranch_isa::Program {
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let join = b.label("join");
    b.li(Reg::R1, 0x243F6A8885A308D3u64 as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 0);
    b.li(Reg::R4, (u64::MAX / 3) as i64);
    b.li(Reg::R9, 256);
    b.bind(top);
    b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
    b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
    b.st(Reg::R1, Reg::R9, 0).ld(Reg::R8, Reg::R9, 0);
    b.sltu(Reg::R8, Reg::R8, Reg::R4);
    b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
    b.prob_jmp(None, join);
    b.add(Reg::R3, Reg::R3, 1);
    b.bind(join);
    b.add(Reg::R2, Reg::R2, 1);
    b.br(CmpOp::Lt, Reg::R2, iters, top);
    b.out(Reg::R3, 0);
    b.halt();
    b.build().unwrap()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "probranch-fault-persist-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Whether a directory entry is a writer temp (`*.tmp.<pid>.<n>`).
fn is_temp(name: &str) -> bool {
    let mut rev = name.rsplit('.');
    let seq = rev.next();
    let pid = rev.next();
    matches!(
        (seq, pid, rev.next()),
        (Some(s), Some(p), Some("tmp"))
            if s.parse::<u64>().is_ok() && p.parse::<u32>().is_ok()
    )
}

#[test]
fn injected_write_faults_fail_cleanly_and_name_their_site() {
    let cfg = SimConfig::default();
    let trace = DynTrace::capture(&workload(300), &cfg).unwrap();
    let hash = cfg.emu_key_fingerprint();
    let dir = tempdir("sites");

    for site in [
        faults::Site::PersistWrite,
        faults::Site::PersistEnospc,
        faults::Site::PersistShort,
        faults::Site::PersistFsync,
        faults::Site::PersistRename,
    ] {
        let _scope = faults::ScopedPlan::install(faults::FaultPlan::seeded(11).arm(site, 1.0));
        let path = dir.join(format!("trace-{}.bin", site.name().replace('.', "-")));
        let err = trace
            .write_file(&path, hash)
            .expect_err("armed write fault must surface");
        assert!(
            err.to_string().contains(site.name()),
            "{site}: error must name the site, got `{err}`"
        );
        assert!(
            !path.exists(),
            "{site}: a failed write must never publish the final name"
        );
        // No torn temp survives a failed in-process attempt.
        let temps = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(is_temp))
            .count();
        assert_eq!(temps, 0, "{site}: failed attempts must clean their temps");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn enospc_carries_the_storage_full_kind() {
    let cfg = SimConfig::default();
    let trace = DynTrace::capture(&workload(200), &cfg).unwrap();
    let hash = cfg.emu_key_fingerprint();
    let dir = tempdir("enospc");
    let _scope = faults::ScopedPlan::install(
        faults::FaultPlan::seeded(11).arm(faults::Site::PersistEnospc, 1.0),
    );
    let err = trace.write_file(&dir.join("t.bin"), hash).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retries_reroll_write_and_load_faults_deterministically() {
    let cfg = SimConfig::default();
    let trace = DynTrace::capture(&workload(300), &cfg).unwrap();
    let hash = cfg.emu_key_fingerprint();
    let dir = tempdir("retry");
    let path = dir.join("trace-retry.bin");

    // A transient plan (budget 1) fails attempt 0 and lets the
    // re-salted retry through — deterministically.
    {
        let _scope = faults::ScopedPlan::install(faults::FaultPlan::seeded(11).arm_capped(
            faults::Site::PersistWrite,
            1.0,
            1,
        ));
        assert!(trace.write_file_attempt(&path, hash, 0).is_err());
        trace
            .write_file_attempt(&path, hash, 1)
            .expect("retry past the budget must succeed");
        assert_eq!(DynTrace::read_file(&path, hash, &cfg).unwrap(), trace);
    }

    // An injected load fault surfaces as a retryable I/O error, and
    // the next attempt loads clean.
    {
        let _scope = faults::ScopedPlan::install(faults::FaultPlan::seeded(11).arm_capped(
            faults::Site::MmapLoad,
            1.0,
            1,
        ));
        assert!(matches!(
            DynTrace::load_file(&path, hash, &cfg, 0),
            TraceLoad::Io(_)
        ));
        assert!(matches!(
            DynTrace::load_file(&path, hash, &cfg, 1),
            TraceLoad::Loaded(_)
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
}
