//! Predecode: lowers a validated [`Program`] once into a dense array of
//! [`DecodedInst`]s so the hot emulate→time loop stops re-deriving
//! per-instruction facts on every *dynamic* instruction.
//!
//! The original engine pays three recurring costs per executed
//! instruction: the emulator re-matches the full [`Inst`] enum
//! (including the nested [`Operand`] register/immediate split), and the
//! timing model re-computes `uses()`, `defs()` and `exec_class()` —
//! three more matches that rebuild register lists every time. A
//! [`DecodedProgram`] hoists all of that to program-load time:
//!
//! * [`DecOp`] splits every register/immediate operand into its own
//!   variant (`AluRR`/`AluRI`, `BrRR`/`BrRI`, …), so execution is a
//!   single monomorphic match with no inner operand dispatch;
//! * [`InstTiming`] carries the resolved operand indices (with the
//!   condition flag folded in as pseudo-register [`FLAG_REG`]) and the
//!   [`ExecClass`](probranch_isa::ExecClass) latency-class index, so the out-of-order model reads
//!   dataflow straight from two tiny arrays.
//!
//! Decoding is semantically lossless: `DecOp` execution and
//! `InstTiming`-driven timing are byte-for-byte equivalent to the
//! `Inst`-interpreting reference engine, which the golden-trace suite
//! and `tests/engine_equivalence.rs` lock in.

use probranch_isa::{AluOp, CmpOp, FpBinOp, FpUnOp, Inst, Operand, Program, Reg};

/// Pseudo-register index modeling the condition flag in the timing
/// model's ready-cycle scoreboard (one past the 32 architectural
/// registers).
pub const FLAG_REG: usize = 32;

/// Scoreboard index padding unused `uses` slots: never written by any
/// instruction, so its ready cycle stays 0 and a fixed-trip max over
/// all four slots equals the max over the live prefix.
pub const PAD_USE_REG: usize = 63;

/// Scoreboard index padding unused `defs` slots: never read by any
/// instruction (real uses are `0..=32` plus [`PAD_USE_REG`]), so a
/// fixed-trip write of both slots is invisible to the dataflow.
pub const PAD_DEF_REG: usize = 62;

/// A fully decoded micro-operation: the execution form of one [`Inst`]
/// with every operand kind resolved at decode time.
///
/// Register/immediate [`Operand`]s are split into dedicated variants so
/// the interpreter never matches twice per instruction; immediates are
/// pre-converted to the `u64` bit pattern the datapath consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum DecOp {
    /// Integer ALU, register-register.
    AluRR {
        op: AluOp,
        dst: Reg,
        src1: Reg,
        src2: Reg,
    },
    /// Integer ALU, register-immediate.
    AluRI {
        op: AluOp,
        dst: Reg,
        src1: Reg,
        imm: u64,
    },
    /// Load immediate.
    Li { dst: Reg, imm: u64 },
    /// Register move.
    Mov { dst: Reg, src: Reg },
    /// FP two-source operation.
    FpBin {
        op: FpBinOp,
        dst: Reg,
        src1: Reg,
        src2: Reg,
    },
    /// FP one-source operation.
    FpUn { op: FpUnOp, dst: Reg, src: Reg },
    /// Signed integer → double.
    IntToFp { dst: Reg, src: Reg },
    /// Double → signed integer.
    FpToInt { dst: Reg, src: Reg },
    /// Conditional move.
    CMov {
        dst: Reg,
        cond: Reg,
        if_true: Reg,
        if_false: Reg,
    },
    /// 64-bit load.
    Load { dst: Reg, base: Reg, offset: i64 },
    /// 64-bit store.
    Store { src: Reg, base: Reg, offset: i64 },
    /// Compare, register-register.
    CmpRR {
        op: CmpOp,
        fp: bool,
        lhs: Reg,
        rhs: Reg,
    },
    /// Compare, register-immediate.
    CmpRI {
        op: CmpOp,
        fp: bool,
        lhs: Reg,
        imm: u64,
    },
    /// Jump if flag.
    Jf { target: u32 },
    /// Fused compare-and-branch, register-register.
    BrRR {
        op: CmpOp,
        fp: bool,
        lhs: Reg,
        rhs: Reg,
        target: u32,
    },
    /// Fused compare-and-branch, register-immediate.
    BrRI {
        op: CmpOp,
        fp: bool,
        lhs: Reg,
        imm: u64,
        target: u32,
    },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Call.
    Call { target: u32 },
    /// Return.
    Ret,
    /// Probabilistic compare, register-register.
    ProbCmpRR {
        op: CmpOp,
        fp: bool,
        prob: Reg,
        rhs: Reg,
    },
    /// Probabilistic compare, register-immediate.
    ProbCmpRI {
        op: CmpOp,
        fp: bool,
        prob: Reg,
        imm: u64,
    },
    /// Intermediate `PROB_JMP` registering one more swap register.
    ProbJmpPush { prob: Reg },
    /// Intermediate `PROB_JMP` with neither register nor target.
    ProbJmpQuiet,
    /// The jumping `PROB_JMP`.
    ProbJmp { prob: Option<Reg>, target: u32 },
    /// Emit on an output port.
    Out { src: Reg, port: u16 },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

/// Predecoded timing metadata of one static instruction: the dataflow
/// the out-of-order model needs, as flat index lists.
///
/// `uses`/`defs` hold ready-cycle scoreboard indices — architectural
/// register indices in `0..32` plus [`FLAG_REG`] for the condition flag
/// (reads by `jf`/`prob_jmp`, writes by `cmp`/`prob_cmp`), exactly
/// mirroring the reference model's flag handling. Unused slots are
/// padded with [`PAD_USE_REG`] / [`PAD_DEF_REG`], so the hot loops read
/// and write a fixed number of slots with no data-dependent trip count;
/// the live prefixes remain available through
/// [`uses`](InstTiming::uses) / [`defs`](InstTiming::defs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstTiming {
    /// Scoreboard indices whose ready cycles gate issue, padded with
    /// [`PAD_USE_REG`].
    pub uses: [u8; 4],
    /// Number of live entries in `uses`.
    pub n_uses: u8,
    /// Scoreboard indices written at complete, padded with
    /// [`PAD_DEF_REG`].
    pub defs: [u8; 2],
    /// Number of live entries in `defs`.
    pub n_defs: u8,
    /// [`ExecClass::index`](probranch_isa::ExecClass::index) of the instruction (functional-unit latency
    /// class; [`ExecClass::Load`](probranch_isa::ExecClass::Load) defers to the cache hierarchy).
    pub class: u8,
}

impl InstTiming {
    /// Derives the timing metadata of `inst` — the same facts the
    /// reference timing model recomputes per dynamic instruction.
    pub fn of(inst: &Inst) -> InstTiming {
        let mut uses = [PAD_USE_REG as u8; 4];
        let mut n_uses = 0u8;
        for r in inst.uses().iter() {
            uses[n_uses as usize] = r.index() as u8;
            n_uses += 1;
        }
        if matches!(inst, Inst::Jf { .. } | Inst::ProbJmp { .. }) {
            uses[n_uses as usize] = FLAG_REG as u8;
            n_uses += 1;
        }
        let mut defs = [PAD_DEF_REG as u8; 2];
        let mut n_defs = 0u8;
        for r in inst.defs().iter() {
            defs[n_defs as usize] = r.index() as u8;
            n_defs += 1;
        }
        if matches!(inst, Inst::Cmp { .. } | Inst::ProbCmp { .. }) {
            defs[n_defs as usize] = FLAG_REG as u8;
            n_defs += 1;
        }
        InstTiming {
            uses,
            n_uses,
            defs,
            n_defs,
            class: inst.exec_class().index() as u8,
        }
    }

    /// The live prefix of `uses`.
    #[inline]
    pub fn uses(&self) -> &[u8] {
        &self.uses[..self.n_uses as usize]
    }

    /// The live prefix of `defs`.
    #[inline]
    pub fn defs(&self) -> &[u8] {
        &self.defs[..self.n_defs as usize]
    }
}

/// One predecoded instruction: the execution micro-op plus its timing
/// metadata, kept adjacent for cache locality in the fused loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInst {
    /// The execution form.
    pub op: DecOp,
    /// The timing form.
    pub timing: InstTiming,
}

/// A program lowered to a dense `Vec<DecodedInst>`, indexed by pc.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    insts: Vec<DecodedInst>,
}

/// Converts an operand into `(register, imm-bit-pattern)` split form.
fn split(o: Operand) -> Result<Reg, u64> {
    match o {
        Operand::Reg(r) => Ok(r),
        Operand::Imm(v) => Err(v as u64),
    }
}

fn lower(inst: &Inst) -> DecOp {
    match *inst {
        Inst::Alu {
            op,
            dst,
            src1,
            src2,
        } => match split(src2) {
            Ok(src2) => DecOp::AluRR {
                op,
                dst,
                src1,
                src2,
            },
            Err(imm) => DecOp::AluRI { op, dst, src1, imm },
        },
        Inst::Li { dst, imm } => DecOp::Li { dst, imm },
        Inst::Mov { dst, src } => DecOp::Mov { dst, src },
        Inst::FpBin {
            op,
            dst,
            src1,
            src2,
        } => DecOp::FpBin {
            op,
            dst,
            src1,
            src2,
        },
        Inst::FpUn { op, dst, src } => DecOp::FpUn { op, dst, src },
        Inst::IntToFp { dst, src } => DecOp::IntToFp { dst, src },
        Inst::FpToInt { dst, src } => DecOp::FpToInt { dst, src },
        Inst::CMov {
            dst,
            cond,
            if_true,
            if_false,
        } => DecOp::CMov {
            dst,
            cond,
            if_true,
            if_false,
        },
        Inst::Load { dst, base, offset } => DecOp::Load { dst, base, offset },
        Inst::Store { src, base, offset } => DecOp::Store { src, base, offset },
        Inst::Cmp { op, fp, lhs, rhs } => match split(rhs) {
            Ok(rhs) => DecOp::CmpRR { op, fp, lhs, rhs },
            Err(imm) => DecOp::CmpRI { op, fp, lhs, imm },
        },
        Inst::Jf { target } => DecOp::Jf { target },
        Inst::Br {
            op,
            fp,
            lhs,
            rhs,
            target,
        } => match split(rhs) {
            Ok(rhs) => DecOp::BrRR {
                op,
                fp,
                lhs,
                rhs,
                target,
            },
            Err(imm) => DecOp::BrRI {
                op,
                fp,
                lhs,
                imm,
                target,
            },
        },
        Inst::Jmp { target } => DecOp::Jmp { target },
        Inst::Call { target } => DecOp::Call { target },
        Inst::Ret => DecOp::Ret,
        Inst::ProbCmp { op, fp, prob, rhs } => match split(rhs) {
            Ok(rhs) => DecOp::ProbCmpRR { op, fp, prob, rhs },
            Err(imm) => DecOp::ProbCmpRI { op, fp, prob, imm },
        },
        Inst::ProbJmp { prob, target } => match (prob, target) {
            (_, Some(target)) => DecOp::ProbJmp { prob, target },
            (Some(prob), None) => DecOp::ProbJmpPush { prob },
            (None, None) => DecOp::ProbJmpQuiet,
        },
        Inst::Out { src, port } => DecOp::Out { src, port },
        Inst::Halt => DecOp::Halt,
        Inst::Nop => DecOp::Nop,
    }
}

impl DecodedProgram {
    /// Lowers `program` (one pass, O(static instructions)).
    pub fn of(program: &Program) -> DecodedProgram {
        DecodedProgram {
            insts: program
                .insts()
                .iter()
                .map(|i| DecodedInst {
                    op: lower(i),
                    timing: InstTiming::of(i),
                })
                .collect(),
        }
    }

    /// The decoded instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range; validated programs keep the
    /// program counter in range.
    #[inline]
    pub fn fetch(&self, pc: u32) -> &DecodedInst {
        &self.insts[pc as usize]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for validated input).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The decoded instructions.
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::ProgramBuilder;

    #[test]
    fn operand_split_resolves_at_decode_time() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 7)
            .add(Reg::R2, Reg::R1, 3)
            .add(Reg::R3, Reg::R1, Reg::R2)
            .cmp(CmpOp::Lt, Reg::R3, 100)
            .halt();
        let p = b.build().unwrap();
        let d = DecodedProgram::of(&p);
        assert_eq!(d.len(), p.len());
        assert!(matches!(d.fetch(1).op, DecOp::AluRI { imm: 3, .. }));
        assert!(matches!(d.fetch(2).op, DecOp::AluRR { src2: Reg::R2, .. }));
        assert!(matches!(d.fetch(3).op, DecOp::CmpRI { imm: 100, .. }));
    }

    #[test]
    fn timing_matches_reference_facts_for_every_shape() {
        // Every instruction shape the ISA can express: the predecoded
        // dataflow must equal uses()/defs()/exec_class() plus the flag
        // rules of the reference timing model.
        let samples = [
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg::R1,
                src1: Reg::R2,
                src2: Operand::Reg(Reg::R3),
            },
            Inst::Li {
                dst: Reg::R4,
                imm: 9,
            },
            Inst::CMov {
                dst: Reg::R1,
                cond: Reg::R2,
                if_true: Reg::R3,
                if_false: Reg::R4,
            },
            Inst::Cmp {
                op: CmpOp::Eq,
                fp: false,
                lhs: Reg::R5,
                rhs: Operand::imm(1),
            },
            Inst::Jf { target: 0 },
            Inst::Br {
                op: CmpOp::Lt,
                fp: true,
                lhs: Reg::R6,
                rhs: Operand::Reg(Reg::R7),
                target: 0,
            },
            Inst::ProbCmp {
                op: CmpOp::Lt,
                fp: false,
                prob: Reg::R8,
                rhs: Operand::imm(10),
            },
            Inst::ProbJmp {
                prob: Some(Reg::R9),
                target: None,
            },
            Inst::ProbJmp {
                prob: None,
                target: Some(0),
            },
            Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 8,
            },
            Inst::Store {
                src: Reg::R1,
                base: Reg::R2,
                offset: 8,
            },
            Inst::Ret,
            Inst::Halt,
        ];
        for inst in samples {
            let t = InstTiming::of(&inst);
            let mut want_uses: Vec<u8> = inst.uses().iter().map(|r| r.index() as u8).collect();
            if matches!(inst, Inst::Jf { .. } | Inst::ProbJmp { .. }) {
                want_uses.push(FLAG_REG as u8);
            }
            let mut want_defs: Vec<u8> = inst.defs().iter().map(|r| r.index() as u8).collect();
            if matches!(inst, Inst::Cmp { .. } | Inst::ProbCmp { .. }) {
                want_defs.push(FLAG_REG as u8);
            }
            assert_eq!(t.uses(), want_uses.as_slice(), "{inst:?}");
            assert_eq!(t.defs(), want_defs.as_slice(), "{inst:?}");
            assert_eq!(t.class as usize, inst.exec_class().index(), "{inst:?}");
        }
    }

    #[test]
    fn prob_jmp_lowering_distinguishes_all_three_forms() {
        let jumping = Inst::ProbJmp {
            prob: Some(Reg::R3),
            target: Some(4),
        };
        assert!(matches!(
            lower(&jumping),
            DecOp::ProbJmp {
                prob: Some(Reg::R3),
                target: 4
            }
        ));
        assert!(matches!(
            lower(&Inst::ProbJmp {
                prob: Some(Reg::R2),
                target: None
            }),
            DecOp::ProbJmpPush { prob: Reg::R2 }
        ));
        assert!(matches!(
            lower(&Inst::ProbJmp {
                prob: None,
                target: None
            }),
            DecOp::ProbJmpQuiet
        ));
    }

    #[test]
    fn fp_immediates_keep_their_bit_patterns() {
        let i = Inst::Cmp {
            op: CmpOp::Lt,
            fp: true,
            lhs: Reg::R1,
            rhs: Operand::imm(2.5f64.to_bits() as i64),
        };
        match lower(&i) {
            DecOp::CmpRI { imm, .. } => assert_eq!(f64::from_bits(imm), 2.5),
            other => panic!("unexpected lowering {other:?}"),
        }
    }
}
