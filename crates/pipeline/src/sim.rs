//! The top-level simulator: functional emulation co-simulated with the
//! branch predictor, the PBS unit and the out-of-order timing model.
//!
//! [`Simulation`] is the single entry point, keyed by [`EngineKind`]:
//!
//! * [`EngineKind::Fused`] — the emulator executes from the predecoded
//!   program and writes compact [`StepRecord`]s into a small batch
//!   buffer that the timing model drains, with the branch predictor
//!   dispatched statically through [`PredictorDispatch`] so the
//!   per-branch predict/update pair inlines;
//! * [`EngineKind::Reference`] — the original unfused loop (a
//!   [`DynInst`](crate::DynInst) stream into `Box<dyn BranchPredictor>`),
//!   kept as the differential baseline the equivalence suite checks
//!   every other engine against;
//! * [`EngineKind::Replay`] — emulate once, time many: cells re-time a
//!   captured [`DynTrace`], with each chunk's branches batch-predicted
//!   ahead of the timing walk (see `trace.rs`);
//! * [`EngineKind::Convoy`] — streamed fused convoys: one capture with
//!   all of a key's timing cells draining each chunk in lockstep,
//!   bounded memory on arbitrarily long workloads.
//!
//! All four produce byte-identical [`SimReport`]s — equality over every
//! field, error paths included — locked in by
//! `tests/engine_equivalence.rs`.

use probranch_core::{PbsConfig, PbsStats, PbsUnit};
use probranch_isa::Program;
use probranch_predictor::{
    BranchPredictor, PredictorDispatch, StaticPredictor, TageScL, Tournament,
};

use std::sync::mpsc;

use crate::decode::InstTiming;
use crate::machine::{EmuConfig, EmuError, Emulator, StepRecord};
use crate::ooo::{OooConfig, OooTimingModel, TimingStats};
use crate::trace::{drain_chunk_convoy, DynTrace, ReplayConsumer, TraceChunk, TraceStream};

/// Which baseline branch predictor to instantiate (paper Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorChoice {
    /// The 1 KB Pentium-M-style tournament predictor.
    Tournament,
    /// The 8 KB TAGE-SC-L predictor.
    TageScL,
    /// Static always-taken (lower bound, for ablations).
    StaticTaken,
    /// Static always-not-taken.
    StaticNotTaken,
}

impl PredictorChoice {
    /// Instantiates the predictor as a trait object (the reference
    /// engine's dispatch; prefer [`build_dispatch`](Self::build_dispatch)
    /// on hot paths).
    pub fn build(self) -> Box<dyn BranchPredictor> {
        match self {
            PredictorChoice::Tournament => Box::new(Tournament::default()),
            PredictorChoice::TageScL => Box::new(TageScL::default()),
            PredictorChoice::StaticTaken => Box::new(StaticPredictor::taken()),
            PredictorChoice::StaticNotTaken => Box::new(StaticPredictor::not_taken()),
        }
    }

    /// Instantiates the predictor behind the static [`PredictorDispatch`]
    /// enum, letting per-branch lookups inline into the fused engine.
    pub fn build_dispatch(self) -> PredictorDispatch {
        match self {
            PredictorChoice::Tournament => PredictorDispatch::from(Tournament::default()),
            PredictorChoice::TageScL => PredictorDispatch::from(TageScL::default()),
            PredictorChoice::StaticTaken => PredictorDispatch::from(StaticPredictor::taken()),
            PredictorChoice::StaticNotTaken => {
                PredictorDispatch::from(StaticPredictor::not_taken())
            }
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PredictorChoice::Tournament => "tournament",
            PredictorChoice::TageScL => "tage-sc-l",
            PredictorChoice::StaticTaken => "static-taken",
            PredictorChoice::StaticNotTaken => "static-not-taken",
        }
    }
}

/// Full-system simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Core (timing) configuration.
    pub core: OooConfig,
    /// Baseline branch predictor.
    pub predictor: PredictorChoice,
    /// PBS hardware, or `None` for the baseline machine (probabilistic
    /// branches execute as regular branches).
    pub pbs: Option<PbsConfig>,
    /// Figure 9 mode: probabilistic branches neither access nor update
    /// the predictor (isolating their interference on regular branches).
    pub filter_prob_from_predictor: bool,
    /// Emulator configuration.
    pub emu: EmuConfig,
    /// Instruction budget (guards against authoring bugs).
    pub max_insts: u64,
    /// Record every predictor-consulted conditional branch into
    /// [`SimReport::branch_trace`] (golden-trace regression tests; off
    /// by default — tracing a long run allocates per branch).
    pub collect_branch_trace: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            core: OooConfig::default(),
            predictor: PredictorChoice::TageScL,
            pbs: None,
            filter_prob_from_predictor: false,
            emu: EmuConfig::default(),
            max_insts: 200_000_000,
            collect_branch_trace: false,
        }
    }
}

impl SimConfig {
    /// Convenience: the same configuration with PBS enabled at the
    /// paper's default design point.
    pub fn with_pbs(mut self) -> SimConfig {
        self.pbs = Some(PbsConfig::default());
        self
    }

    /// Convenience: selects the predictor.
    pub fn predictor(mut self, p: PredictorChoice) -> SimConfig {
        self.predictor = p;
        self
    }

    /// A stable 64-bit fingerprint of the configuration's *emulation
    /// key* — every field that shapes the dynamic instruction stream a
    /// trace captures (PBS configuration, emulator configuration,
    /// instruction budget) plus the ISA version — and none of the
    /// timing-side fields (predictor, core, filter, tracing).
    ///
    /// This is the content-hash ingredient for on-disk trace
    /// persistence: two configurations with equal fingerprints capture
    /// byte-identical traces of the same program.
    pub fn emu_key_fingerprint(&self) -> u64 {
        let pbs = match &self.pbs {
            None => [0u64; 5],
            Some(p) => [
                1,
                p.num_branches as u64,
                p.values_per_branch as u64,
                p.in_flight as u64,
                p.context_tracking as u64,
            ],
        };
        let mut parts = vec![u64::from(probranch_isa::ISA_VERSION)];
        parts.extend_from_slice(&pbs);
        parts.extend_from_slice(&[
            self.emu.mem_words as u64,
            self.emu.max_call_depth as u64,
            self.max_insts,
        ]);
        probranch_rng::SplitMix64::mix_fold(&parts)
    }
}

/// The result of a simulation run.
///
/// `PartialEq` compares every field — the engine-equivalence suite
/// asserts whole-report equality between the fused and reference
/// engines.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Timing statistics (cycles, IPC, MPKI, branch breakdown).
    pub timing: TimingStats,
    /// PBS event counters, when PBS was enabled.
    pub pbs: Option<PbsStats>,
    /// Program outputs: `(port, values)` pairs in ascending port order —
    /// a dense table whose iteration order is structural, not
    /// hash-order-by-luck.
    pub outputs: Vec<(u16, Vec<u64>)>,
    /// Probabilistic values in consumption order (Table III input).
    pub prob_consumed: Vec<u64>,
    /// Per-branch (pc, predicted, actual) log; empty unless
    /// [`SimConfig::collect_branch_trace`] was set.
    pub branch_trace: Vec<crate::ooo::BranchTraceEntry>,
}

impl SimReport {
    /// The values emitted on `port`.
    pub fn output(&self, port: u16) -> &[u64] {
        self.outputs
            .iter()
            .find(|(p, _)| *p == port)
            .map_or(&[], |(_, v)| v.as_slice())
    }

    /// The values emitted on `port`, as doubles.
    pub fn output_f64(&self, port: u16) -> Vec<f64> {
        self.output(port)
            .iter()
            .map(|&v| f64::from_bits(v))
            .collect()
    }
}

/// Which engine a [`Simulation`] runs its timing cells through.
///
/// The engines produce byte-identical [`SimReport`]s — equality over
/// every field, error paths included — locked in by
/// `tests/engine_equivalence.rs`. They differ only in execution shape,
/// and therefore in throughput and memory footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The emulate-once/time-many replay engine (default): each cell
    /// re-times a captured [`DynTrace`], with every chunk's
    /// predictor-visible branches batch-predicted through
    /// [`BranchPredictor::predict_update_batch`] ahead of the timing
    /// walk.
    #[default]
    Replay,
    /// Streamed fused convoy: one capture with all of a key's timing
    /// cells draining each chunk in lockstep — no materialized trace,
    /// bounded memory on arbitrarily long workloads.
    Convoy,
    /// The fused emulate→time engine: emulator, predictor and timing
    /// model advance together, re-emulating every cell. As a *live*
    /// engine it must consult the predictor serially per branch — the
    /// interleaving replay's batched path reproduces bit-exactly.
    Fused,
    /// The original unfused loop (a [`DynInst`](crate::DynInst) stream
    /// into `Box<dyn BranchPredictor>`) — the slow differential
    /// baseline.
    Reference,
}

impl EngineKind {
    /// Every engine, replay first — the order differential matrices
    /// iterate.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Replay,
        EngineKind::Convoy,
        EngineKind::Fused,
        EngineKind::Reference,
    ];

    /// Parses an engine name (as accepted by `figures --engine`).
    pub fn parse(name: &str) -> Option<EngineKind> {
        match name {
            "replay" => Some(EngineKind::Replay),
            "convoy" => Some(EngineKind::Convoy),
            "fused" => Some(EngineKind::Fused),
            "reference" => Some(EngineKind::Reference),
            _ => None,
        }
    }

    /// The engine's name, as accepted by [`EngineKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Replay => "replay",
            EngineKind::Convoy => "convoy",
            EngineKind::Fused => "fused",
            EngineKind::Reference => "reference",
        }
    }
}

/// The simulator's single entry point: an [`EngineKind`] plus the four
/// run shapes every engine supports — live single cell ([`run`]),
/// live multi-cell ([`run_many`]), materialized-trace single cell
/// ([`replay`]) and materialized-trace multi-cell ([`replay_many`]).
///
/// [`run`]: Simulation::run
/// [`run_many`]: Simulation::run_many
/// [`replay`]: Simulation::replay
/// [`replay_many`]: Simulation::replay_many
///
/// ```
/// use probranch_isa::{ProgramBuilder, Reg, CmpOp};
/// use probranch_pipeline::{EngineKind, SimConfig, Simulation};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.label("top");
/// b.li(Reg::R1, 0);
/// b.bind(top);
/// b.add(Reg::R1, Reg::R1, 1)
///  .br(CmpOp::Lt, Reg::R1, 1000, top)
///  .halt();
/// let program = b.build()?;
/// let report = Simulation::new(EngineKind::Fused).run(&program, &SimConfig::default())?;
/// assert!(report.timing.ipc() > 0.5);
/// // Any other engine produces the byte-identical report.
/// let replayed = Simulation::default().run(&program, &SimConfig::default())?;
/// assert_eq!(replayed, report);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Simulation {
    engine: EngineKind,
}

impl Simulation {
    /// A simulation entry point over `engine`.
    pub fn new(engine: EngineKind) -> Simulation {
        Simulation { engine }
    }

    /// The engine this entry point dispatches to.
    pub fn engine(self) -> EngineKind {
        self.engine
    }

    /// Runs `program` to completion under a full timing simulation.
    ///
    /// Under [`EngineKind::Replay`] the trace is captured and replayed
    /// internally; use [`replay`](Simulation::replay) when a
    /// [`DynTrace`] for the configuration's emulation key is already
    /// materialized.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] (faults indicate workload bugs),
    /// identically across engines.
    pub fn run(self, program: &Program, config: &SimConfig) -> Result<SimReport, EmuError> {
        match self.engine {
            EngineKind::Fused => run_fused(program, config),
            EngineKind::Reference => run_reference(program, config),
            EngineKind::Convoy => run_convoy(program, std::slice::from_ref(config))
                .map(|mut reports| reports.pop().expect("one report per config")),
            EngineKind::Replay => {
                let trace = DynTrace::capture(program, config)?;
                replay_one(&trace, config)
            }
        }
    }

    /// Runs one timing cell per configuration, in input order.
    ///
    /// Under [`EngineKind::Replay`] and [`EngineKind::Convoy`] the
    /// configurations must share an emulation key (equal `pbs`, `emu`
    /// and `max_insts`) so one captured stream serves every cell; the
    /// live engines simply run back to back.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, or (replay/convoy) the emulation
    /// keys differ.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`], identically across engines.
    pub fn run_many(
        self,
        program: &Program,
        configs: &[SimConfig],
    ) -> Result<Vec<SimReport>, EmuError> {
        match self.engine {
            EngineKind::Fused => configs.iter().map(|cfg| run_fused(program, cfg)).collect(),
            EngineKind::Reference => configs
                .iter()
                .map(|cfg| run_reference(program, cfg))
                .collect(),
            EngineKind::Convoy => run_convoy(program, configs),
            EngineKind::Replay => {
                let key = check_convoy_key(configs, "run_many");
                let trace = DynTrace::capture(program, key)?;
                configs.iter().map(|cfg| replay_one(&trace, cfg)).collect()
            }
        }
    }

    /// Re-times a captured [`DynTrace`] under `config`'s timing side
    /// (predictor, core, filter mode, branch tracing) without
    /// re-emulating.
    ///
    /// The materialized-trace path is shared by every engine — a trace
    /// fixes the dynamic instruction stream, so the engine choice
    /// cannot change the report — which keeps this method total over
    /// [`EngineKind`] (the live engines have nothing left to
    /// re-execute).
    ///
    /// # Panics
    ///
    /// Panics if `config`'s emulation key (PBS and emulator
    /// configuration) differs from the one the trace was captured
    /// under.
    ///
    /// # Errors
    ///
    /// [`EmuError::InstLimitExceeded`] exactly when a live run would
    /// return it: the trace carries a completed run, so any
    /// `config.max_insts` at or below its dynamic instruction count
    /// would have tripped.
    pub fn replay(self, trace: &DynTrace, config: &SimConfig) -> Result<SimReport, EmuError> {
        replay_one(trace, config)
    }

    /// Re-times a captured [`DynTrace`] once per configuration, in
    /// input order.
    ///
    /// Under [`EngineKind::Convoy`] all cells drain each chunk in one
    /// fused lockstep pass (the configurations must share an emulation
    /// key); every other engine replays the cells independently —
    /// byte-identical reports either way.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, the trace's emulation key differs
    /// from a configuration's, or (convoy) the keys differ among
    /// themselves.
    ///
    /// # Errors
    ///
    /// [`EmuError::InstLimitExceeded`] exactly when a live run would
    /// return it — every cell errors identically.
    pub fn replay_many(
        self,
        trace: &DynTrace,
        configs: &[SimConfig],
    ) -> Result<Vec<SimReport>, EmuError> {
        match self.engine {
            EngineKind::Convoy => replay_convoy(trace, configs),
            _ => configs.iter().map(|cfg| replay_one(trace, cfg)).collect(),
        }
    }
}

/// The fused emulate→time engine body (see [`EngineKind::Fused`]).
fn run_fused(program: &Program, config: &SimConfig) -> Result<SimReport, EmuError> {
    let mut emu = build_emulator(program, config);
    let mut predictor = config.predictor.build_dispatch();
    let mut timing = OooTimingModel::new(config.core.clone());
    if config.collect_branch_trace {
        timing.enable_trace();
    }

    // The fused emulate→time loop: the emulator fills a small batch of
    // compact records from the predecoded program, then the timing model
    // drains it against the statically dispatched predictor. Batches are
    // capped at the remaining instruction budget so the limit trips at
    // exactly the same dynamic instruction as the reference engine.
    const BATCH: u64 = 64;
    use crate::cancel::CANCEL_STRIDE;
    let mut buf: Vec<StepRecord> = Vec::with_capacity(BATCH as usize);
    let mut executed: u64 = 0;
    let mut next_cancel_poll: u64 = 0;
    loop {
        if executed >= next_cancel_poll {
            crate::cancel::check_current()?;
            next_cancel_poll = executed + CANCEL_STRIDE;
        }
        let budget = (config.max_insts - executed).clamp(1, BATCH) as usize;
        emu.step_block(&mut buf, budget)?;
        if buf.is_empty() {
            break; // halted
        }
        let decoded = emu.decoded();
        for rec in &buf {
            timing.consume_decoded(
                decoded.fetch(rec.pc),
                rec,
                &mut predictor,
                config.filter_prob_from_predictor,
            );
        }
        executed += buf.len() as u64;
        if executed >= config.max_insts {
            return Err(EmuError::InstLimitExceeded {
                limit: config.max_insts,
            });
        }
    }

    Ok(report_of(emu, timing))
}

/// The original unfused engine body (see [`EngineKind::Reference`]):
/// per-instruction [`DynInst`](crate::DynInst) records and a
/// `Box<dyn BranchPredictor>`.
fn run_reference(program: &Program, config: &SimConfig) -> Result<SimReport, EmuError> {
    let mut emu = build_emulator(program, config);
    let mut predictor = config.predictor.build();
    let mut timing = OooTimingModel::new(config.core.clone());
    if config.collect_branch_trace {
        timing.enable_trace();
    }

    let mut executed: u64 = 0;
    while let Some(d) = emu.step()? {
        timing.consume(&d, predictor.as_mut(), config.filter_prob_from_predictor);
        executed += 1;
        if executed & 0xFFFF == 0 {
            crate::cancel::check_current()?;
        }
        if executed >= config.max_insts {
            return Err(EmuError::InstLimitExceeded {
                limit: config.max_insts,
            });
        }
    }

    Ok(report_of(emu, timing))
}

/// The single-cell replay body (see [`EngineKind::Replay`]).
fn replay_one(trace: &DynTrace, config: &SimConfig) -> Result<SimReport, EmuError> {
    // The one-element convoy takes the identical single-consumer drain,
    // so the two entry points share every check and cannot diverge in
    // error semantics.
    replay_convoy(trace, std::slice::from_ref(config))
        .map(|mut reports| reports.pop().expect("one report per config"))
}

/// Asserts every configuration of a convoy shares the first one's
/// emulation key (`pbs`, `emu`, `max_insts`); timing-side fields are
/// free to differ.
fn check_convoy_key<'a>(configs: &'a [SimConfig], what: &str) -> &'a SimConfig {
    let key = configs
        .first()
        .unwrap_or_else(|| panic!("{what} needs at least one configuration"));
    for cfg in &configs[1..] {
        assert_eq!(cfg.pbs, key.pbs, "convoy cells must share the PBS config");
        assert_eq!(
            cfg.emu, key.emu,
            "convoy cells must share the emulator config"
        );
        assert_eq!(
            cfg.max_insts, key.max_insts,
            "convoy cells must share the instruction budget"
        );
    }
    key
}

/// The streamed-convoy body (see [`EngineKind::Convoy`]): emulates
/// `program` once, draining each captured chunk through one timing
/// consumer per configuration in a single fused loop — every consumer
/// batch-predicts the chunk, then all `k` timing models advance in
/// lockstep over their prediction feeds. Emulation and cache
/// pre-simulation run once, and only a single chunk-sized buffer is
/// ever live.
fn run_convoy(program: &Program, configs: &[SimConfig]) -> Result<Vec<SimReport>, EmuError> {
    let key = check_convoy_key(configs, "simulate_convoy");
    let mut stream = TraceStream::new(program, key);
    let mut consumers: Vec<ReplayConsumer> = configs.iter().map(ReplayConsumer::new).collect();
    if crate::aot::capture_overlap() {
        run_convoy_pipelined(&mut stream, &mut consumers)?;
    } else {
        let mut chunk = TraceChunk::with_chunk_capacity();
        while stream.fill(&mut chunk)? {
            drain_chunk_convoy(&mut consumers, stream.timings(), &chunk);
        }
    }
    let functional = stream.finish();
    Ok(consumers
        .into_iter()
        .map(|c| c.into_report(&functional))
        .collect())
}

/// The chunk-pipelined convoy loop: a helper thread captures chunk
/// `N + 1` while the caller drains chunk `N` through the timing
/// consumers, overlapping emulation with timing on multi-core hosts.
///
/// Chunks travel caller-ward through a depth-1 rendezvous channel and
/// return through an unbounded free list seeded with three buffers, so
/// at most three chunk-sized allocations are ever live (filling,
/// in-flight, draining) — the same bounded-memory story as the serial
/// loop, one buffer wider. The rendezvous channel keeps delivery in
/// capture order, so a fault or cancellation surfaces after exactly the
/// chunks a serial fill would have delivered — byte-identical error
/// semantics. The helper re-enters the caller's [`CancelScope`]
/// (cancellation scopes are thread-local), so supervised cells still
/// stop within one poll stride.
fn run_convoy_pipelined(
    stream: &mut TraceStream,
    consumers: &mut [ReplayConsumer],
) -> Result<(), EmuError> {
    // Instruction timings are fixed at predecode; clone them so the
    // drain side can classify records while the helper thread holds the
    // stream mutably.
    let timings: Box<[InstTiming]> = stream.timings().into();
    let token = crate::cancel::current();
    let (full_tx, full_rx) = mpsc::sync_channel::<Result<Option<TraceChunk>, EmuError>>(1);
    let (free_tx, free_rx) = mpsc::channel::<TraceChunk>();
    for _ in 0..3 {
        free_tx
            .send(TraceChunk::with_chunk_capacity())
            .expect("free list holds its receiver");
    }
    std::thread::scope(|scope| {
        let capture = scope.spawn(move || {
            let _guard = token.map(crate::cancel::CancelScope::enter);
            while let Ok(mut chunk) = free_rx.recv() {
                match stream.fill(&mut chunk) {
                    Ok(true) => {
                        if full_tx.send(Ok(Some(chunk))).is_err() {
                            return; // drain side bailed; nothing left to report
                        }
                    }
                    Ok(false) => {
                        let _ = full_tx.send(Ok(None));
                        return;
                    }
                    Err(e) => {
                        let _ = full_tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        let mut result = Ok(());
        while let Ok(msg) = full_rx.recv() {
            match msg {
                Ok(Some(chunk)) => {
                    drain_chunk_convoy(consumers, &timings, &chunk);
                    // The helper exits after its final send; a closed
                    // free list here is expected, not an error.
                    let _ = free_tx.send(chunk);
                }
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        // Close the free list so a helper still waiting for a buffer
        // unblocks, then surface any capture-thread panic.
        drop(free_tx);
        drop(full_rx);
        capture.join().expect("capture thread panicked");
        result
    })
}

/// The materialized-trace convoy body: drains each chunk of `trace`
/// through one timing consumer per configuration in the same fused
/// lockstep loop as [`run_convoy`], without re-emulating — the path
/// sweeps take when a shared cache already holds the key's trace.
fn replay_convoy(trace: &DynTrace, configs: &[SimConfig]) -> Result<Vec<SimReport>, EmuError> {
    let key = check_convoy_key(configs, "simulate_replay_convoy");
    trace.check_compatible(key);
    if trace.instructions() >= key.max_insts {
        return Err(EmuError::InstLimitExceeded {
            limit: key.max_insts,
        });
    }
    let mut consumers: Vec<ReplayConsumer> = configs.iter().map(ReplayConsumer::new).collect();
    for chunk in trace.chunks() {
        crate::cancel::check_current()?;
        drain_chunk_convoy(&mut consumers, trace.timings(), chunk);
    }
    Ok(consumers
        .into_iter()
        .map(|c| c.into_report(trace.functional()))
        .collect())
}

// ---- legacy free-function entry points --------------------------------
//
// Thin wrappers over `Simulation`, kept so call sites predating the
// engine-keyed API keep compiling. New code goes through
// `Simulation::new(EngineKind::…)`.

#[doc(hidden)]
pub fn simulate(program: &Program, config: &SimConfig) -> Result<SimReport, EmuError> {
    Simulation::new(EngineKind::Fused).run(program, config)
}

#[doc(hidden)]
pub fn simulate_reference(program: &Program, config: &SimConfig) -> Result<SimReport, EmuError> {
    Simulation::new(EngineKind::Reference).run(program, config)
}

#[doc(hidden)]
pub fn simulate_replay(trace: &DynTrace, config: &SimConfig) -> Result<SimReport, EmuError> {
    Simulation::new(EngineKind::Replay).replay(trace, config)
}

#[doc(hidden)]
pub fn simulate_convoy(
    program: &Program,
    configs: &[SimConfig],
) -> Result<Vec<SimReport>, EmuError> {
    Simulation::new(EngineKind::Convoy).run_many(program, configs)
}

#[doc(hidden)]
pub fn simulate_replay_convoy(
    trace: &DynTrace,
    configs: &[SimConfig],
) -> Result<Vec<SimReport>, EmuError> {
    Simulation::new(EngineKind::Convoy).replay_many(trace, configs)
}

fn build_emulator(program: &Program, config: &SimConfig) -> Emulator {
    match &config.pbs {
        Some(pbs_cfg) => Emulator::with_pbs(
            program.clone(),
            config.emu.clone(),
            PbsUnit::new(pbs_cfg.clone()),
        ),
        None => Emulator::new(program.clone(), config.emu.clone()),
    }
}

fn report_of(emu: Emulator, mut timing: OooTimingModel) -> SimReport {
    SimReport {
        timing: timing.stats(),
        pbs: emu.pbs_stats(),
        outputs: emu.outputs_sorted(),
        prob_consumed: emu.prob_consumed().to_vec(),
        branch_trace: timing.take_trace(),
    }
}

/// Runs a program functionally only (no timing model) — used for output
/// accuracy and randomness experiments where only the architectural
/// results matter. Roughly an order of magnitude faster than a full
/// [`Simulation`] run.
///
/// # Errors
///
/// Propagates any [`EmuError`].
pub fn run_functional(
    program: &Program,
    pbs: Option<PbsConfig>,
    max_insts: u64,
) -> Result<SimReport, EmuError> {
    let mut emu = match pbs {
        Some(pbs_cfg) => {
            Emulator::with_pbs(program.clone(), EmuConfig::default(), PbsUnit::new(pbs_cfg))
        }
        None => Emulator::new(program.clone(), EmuConfig::default()),
    };
    emu.run_to_halt(max_insts)?;
    Ok(SimReport {
        timing: TimingStats {
            instructions: emu.executed(),
            ..TimingStats::default()
        },
        pbs: emu.pbs_stats(),
        outputs: emu.outputs_sorted(),
        prob_consumed: emu.prob_consumed().to_vec(),
        branch_trace: Vec::new(),
    })
}

// The parallel experiment harness moves configurations into worker
// threads and results back out; keep that capability a compile-time
// guarantee rather than an accident of field choices.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimConfig>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<PredictorChoice>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::{CmpOp, ProgramBuilder, Reg};

    /// A loop with one ~50% probabilistic branch implemented over an
    /// ISA-level xorshift64* generator.
    fn prob_workload(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let join = b.label("join");
        b.li(Reg::R1, 0x9E3779B97F4A7C15u64 as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, (u64::MAX / 2) as i64);
        b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
        b.bind(top);
        b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shr(Reg::R5, Reg::R1, 27).xor(Reg::R1, Reg::R1, Reg::R5);
        b.mul(Reg::R7, Reg::R1, Reg::R6);
        b.sltu(Reg::R8, Reg::R7, Reg::R4);
        b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
        b.prob_jmp(None, join);
        b.add(Reg::R3, Reg::R3, 1);
        b.bind(join);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, iters, top);
        b.out(Reg::R3, 0);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn pbs_eliminates_prob_mispredictions() {
        let p = prob_workload(20_000);
        let base = simulate(&p, &SimConfig::default()).unwrap();
        let pbs = simulate(&p, &SimConfig::default().with_pbs()).unwrap();
        // Baseline: the ~50% branch mispredicts heavily.
        assert!(
            base.timing.mispredicts_prob > 5000,
            "baseline prob mispredicts: {}",
            base.timing.mispredicts_prob
        );
        // PBS: only the bootstrap instances can mispredict.
        assert!(
            pbs.timing.mispredicts_prob < 50,
            "PBS prob mispredicts: {}",
            pbs.timing.mispredicts_prob
        );
        assert!(pbs.timing.pbs_directed > 19_000);
        // And performance improves.
        assert!(
            pbs.timing.cycles < base.timing.cycles,
            "PBS {} cycles vs baseline {}",
            pbs.timing.cycles,
            base.timing.cycles
        );
        let speedup = base.timing.cycles as f64 / pbs.timing.cycles as f64;
        assert!(speedup > 1.02, "speedup {speedup}");
    }

    #[test]
    fn pbs_preserves_functional_output_statistics() {
        let p = prob_workload(20_000);
        let base = run_functional(&p, None, 10_000_000).unwrap();
        let pbs = run_functional(&p, Some(PbsConfig::default()), 10_000_000).unwrap();
        let c_base = base.output(0)[0] as f64;
        let c_pbs = pbs.output(0)[0] as f64;
        // Not-taken counts agree within a few per mille (the bootstrap
        // phase shifts consumption by 4 values).
        assert!(
            (c_base - c_pbs).abs() / c_base < 0.05,
            "{c_base} vs {c_pbs}"
        );
    }

    #[test]
    fn tournament_with_pbs_beats_plain_tage() {
        // The paper's headline observation (Section VII-B): "the
        // tournament branch predictor with PBS outperforms the
        // TAGE-SC-L predictor."
        let p = prob_workload(20_000);
        let tage = simulate(
            &p,
            &SimConfig::default().predictor(PredictorChoice::TageScL),
        )
        .unwrap();
        let tour_pbs = simulate(
            &p,
            &SimConfig::default()
                .predictor(PredictorChoice::Tournament)
                .with_pbs(),
        )
        .unwrap();
        assert!(
            tour_pbs.timing.cycles < tage.timing.cycles,
            "tournament+PBS {} vs TAGE {}",
            tour_pbs.timing.cycles,
            tage.timing.cycles
        );
    }

    #[test]
    fn filter_mode_reports_regular_only_mpki() {
        let p = prob_workload(5_000);
        let mut cfg = SimConfig::default().predictor(PredictorChoice::Tournament);
        cfg.filter_prob_from_predictor = true;
        let filtered = simulate(&p, &cfg).unwrap();
        assert_eq!(filtered.timing.mispredicts_prob, 0);
        let unfiltered = simulate(
            &p,
            &SimConfig::default().predictor(PredictorChoice::Tournament),
        )
        .unwrap();
        // Interference: filtering prob branches out cannot hurt the
        // regular branches.
        assert!(filtered.timing.mpki_regular() <= unfiltered.timing.mpki_regular() + 0.01);
    }

    #[test]
    fn determinism_across_runs() {
        let p = prob_workload(3_000);
        let a = simulate(&p, &SimConfig::default().with_pbs()).unwrap();
        let b = simulate(&p, &SimConfig::default().with_pbs()).unwrap();
        assert_eq!(a.timing, b.timing);
        assert_eq!(a.prob_consumed, b.prob_consumed);
        assert_eq!(a.output(0), b.output(0));
    }

    #[test]
    fn inst_limit_guards() {
        let p = prob_workload(1_000_000);
        let cfg = SimConfig {
            max_insts: 1000,
            ..SimConfig::default()
        };
        assert!(matches!(
            simulate(&p, &cfg),
            Err(EmuError::InstLimitExceeded { .. })
        ));
    }

    #[test]
    fn predictor_choice_builds_all() {
        for c in [
            PredictorChoice::Tournament,
            PredictorChoice::TageScL,
            PredictorChoice::StaticTaken,
            PredictorChoice::StaticNotTaken,
        ] {
            let mut p = c.build();
            let _ = p.predict(0);
            p.update(0, true);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn wide_core_does_not_regress_ipc() {
        let p = prob_workload(5_000);
        let narrow = simulate(&p, &SimConfig::default()).unwrap();
        let wide_cfg = SimConfig {
            core: OooConfig::wide(),
            ..SimConfig::default()
        };
        let wide = simulate(&p, &wide_cfg).unwrap();
        assert!(wide.timing.ipc() >= narrow.timing.ipc() * 0.99);
    }
}
