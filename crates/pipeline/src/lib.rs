//! # probranch-pipeline
//!
//! The CPU-simulation substrate for the `probranch` reproduction of
//! *Architectural Support for Probabilistic Branches* (MICRO 2018): a
//! functional emulator for the `probranch` ISA and a trace-driven
//! out-of-order timing model, co-simulating the baseline branch
//! predictors (`probranch-predictor`) and the PBS unit
//! (`probranch-core`).
//!
//! The paper evaluates on Sniper 6.0 with a 4-wide, 168-entry-ROB core
//! configured after Sandy Bridge, split 32 KB L1 caches, a 2 MB L2, and
//! a 10-cycle branch misprediction refill penalty (Section VI-B). This
//! crate rebuilds that stack:
//!
//! * [`Emulator`] — executes programs, drives the PBS unit (value swap,
//!   bootstrap, context tracking) and streams [`DynInst`] records;
//! * [`Cache`], [`MemoryHierarchy`] — set-associative LRU caches;
//! * [`OooTimingModel`] — fetch/dispatch/issue/complete/commit cycle
//!   accounting with ROB back-pressure and misprediction redirects;
//! * [`DecodedProgram`] — the one-time predecode pass feeding the fused
//!   engine (see `decode`);
//! * [`Simulation`] / [`run_functional`] — one-call experiment drivers
//!   returning [`SimReport`]s with IPC, MPKI, PBS counters, program
//!   outputs and the consumed probabilistic-value stream.
//!   [`Simulation`] is keyed by [`EngineKind`]: the fused/predecoded
//!   live engine, the original unfused reference loop (the
//!   differential baseline producing identical reports), and the two
//!   trace engines below;
//! * [`DynTrace`] + [`EngineKind::Replay`] / [`EngineKind::Convoy`] —
//!   the emulate-once/time-many engines: the dynamic record stream
//!   (plus pre-simulated cache latencies) is captured once per
//!   emulation key `(workload, PBS config, emulator config)` into
//!   structure-of-arrays chunks and replayed against any number of
//!   predictor/core configurations — one consumer at a time or as a
//!   fused lockstep convoy, each chunk's branches batch-predicted
//!   through [`probranch_predictor::BranchPredictor::predict_update_batch`]
//!   ahead of the timing walk — byte-identically to the fused engine
//!   (see `trace`), with optional on-disk persistence keyed by content
//!   hash (see `persist`).
//!
//! ```
//! use probranch_isa::{ProgramBuilder, Reg, CmpOp};
//! use probranch_pipeline::{EngineKind, SimConfig, Simulation};
//!
//! let mut b = ProgramBuilder::new();
//! let top = b.label("top");
//! b.li(Reg::R1, 0);
//! b.bind(top);
//! b.add(Reg::R1, Reg::R1, 1)
//!  .br(CmpOp::Lt, Reg::R1, 100, top)
//!  .halt();
//! let report = Simulation::new(EngineKind::Fused).run(&b.build()?, &SimConfig::default())?;
//! assert_eq!(report.timing.instructions, 202);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aot;
mod cache;
pub mod cancel;
mod decode;
mod machine;
mod ooo;
mod persist;
mod sim;
mod trace;

pub use aot::{capture_overlap, capture_tier, set_capture_overlap, with_capture_tier, CaptureTier};
pub use cache::{Cache, MemLatencies, MemoryHierarchy};
pub use cancel::{CancelScope, CancelToken};
pub use decode::{
    DecOp, DecodedInst, DecodedProgram, InstTiming, FLAG_REG, PAD_DEF_REG, PAD_USE_REG,
};
pub use machine::{
    BranchEvent, BranchEventKind, DynInst, EmuConfig, EmuError, Emulator, StepRecord,
};
pub use ooo::{BranchTraceEntry, ExecLatencies, OooConfig, OooTimingModel, TimingStats};
pub use persist::{sweep_old_quarantined, sweep_stale_temps, TraceLoad, TRACE_FILE_VERSION};
pub use sim::{
    run_functional, simulate, simulate_convoy, simulate_reference, simulate_replay,
    simulate_replay_convoy, EngineKind, PredictorChoice, SimConfig, SimReport, Simulation,
};
pub use trace::{
    DynTrace, ReplayConsumer, ReplayRec, TraceChunk, TraceFunctional, TraceStream,
    TRACE_CHUNK_RECORDS,
};
