//! A set-associative cache model with LRU replacement, and the two-level
//! hierarchy of the paper's setup: split 32 KB L1 I/D caches over a
//! unified 2 MB L2 (Section VI-B).

/// A single set-associative cache with true-LRU replacement.
///
/// Tracks hits and misses; replacement state is exact. Recency is kept
/// as a per-line monotonic stamp rather than a per-set ordered list:
/// a hit writes one stamp (no most-recently-used reshuffle of the set),
/// and only a miss scans for the least-recent victim — the same
/// true-LRU hit/miss/eviction sequence as an ordered list, minus the
/// per-hit memmove that used to dominate the model's cost.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Line tags, `num_sets * ways` flat; [`Cache::EMPTY`] marks an
    /// unfilled way.
    tags: Box<[u64]>,
    /// Last-touch stamp per way, parallel to `tags`. The victim on a
    /// full-set miss is the minimum stamp — exactly the
    /// least-recently-used line.
    stamps: Box<[u64]>,
    /// Monotonic access clock feeding the stamps.
    clock: u64,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
    /// The line index of the previous access. Re-touching the line just
    /// accessed is *exactly* a hit whose recency update is irrelevant to
    /// any future victim choice (the line is already the most recent),
    /// so the hot sequential-fetch / same-line-load case skips the set
    /// scan entirely. `u64::MAX` is the "none" sentinel (unreachable as
    /// a real line index: line indices are addresses shifted right by at
    /// least 1).
    last_line: u64,
}

impl Cache {
    /// Tag sentinel for a way that holds no line yet. Unreachable as a
    /// real tag: tags are addresses shifted right by the line and set
    /// bits.
    const EMPTY: u64 = u64::MAX;

    /// Creates a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two and consistent.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Cache {
        assert!(size_bytes.is_power_of_two() && line_bytes.is_power_of_two());
        assert!(size_bytes >= ways * line_bytes);
        let num_lines = size_bytes / line_bytes;
        assert_eq!(num_lines % ways, 0);
        let num_sets = num_lines / ways;
        Cache {
            tags: vec![Cache::EMPTY; num_lines].into_boxed_slice(),
            stamps: vec![0; num_lines].into_boxed_slice(),
            clock: 0,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: num_sets as u64 - 1,
            hits: 0,
            misses: 0,
            last_line: u64::MAX,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate (the model
    /// is write-allocate for simplicity; dirty-line writeback latency is
    /// folded into the miss latency of the level below).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        if line == self.last_line {
            // Same line as the previous access: a guaranteed hit, and
            // its stamp is already the set's maximum.
            self.hits += 1;
            return true;
        }
        self.last_line = line;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        self.clock += 1;
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + pos] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: fill an empty way first, otherwise evict the
        // least-recently-stamped line.
        let victim = match ways.iter().position(|&t| t == Cache::EMPTY) {
            Some(empty) => empty,
            None => {
                let stamps = &self.stamps[base..base + self.ways];
                let mut min = 0;
                for (i, &s) in stamps.iter().enumerate().skip(1) {
                    if s < stamps[min] {
                        min = i;
                    }
                }
                min
            }
        };
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of sets (for tests).
    pub fn num_sets(&self) -> usize {
        self.tags.len() / self.ways
    }

    /// Total line capacity (sets × ways). A working set of at most this
    /// many *consecutive* lines can never be evicted: consecutive line
    /// indices round-robin over the sets, filling each with at most
    /// `ways` lines.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }

    /// Bytes covered by one line.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    /// Invariant check: no set holds duplicate tags, and stamps never
    /// exceed the access clock. Used by property tests.
    pub fn check_invariants(&self) -> bool {
        self.stamps.iter().all(|&s| s <= self.clock)
            && self.tags.chunks_exact(self.ways).all(|set| {
                let mut filled: Vec<u64> =
                    set.iter().copied().filter(|&t| t != Cache::EMPTY).collect();
                filled.sort_unstable();
                filled.windows(2).all(|w| w[0] != w[1])
            })
    }
}

/// Access latencies of the memory hierarchy, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatencies {
    /// L1 hit.
    pub l1: u64,
    /// L2 hit (total, from access start).
    pub l2: u64,
    /// Main memory (total, from access start).
    pub mem: u64,
}

impl Default for MemLatencies {
    fn default() -> MemLatencies {
        MemLatencies {
            l1: 4,
            l2: 12,
            mem: 200,
        }
    }
}

/// The paper's memory hierarchy: split L1 I/D (32 KB, 8-way) and a
/// unified 2 MB 16-way L2.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    latencies: MemLatencies,
}

impl Default for MemoryHierarchy {
    fn default() -> MemoryHierarchy {
        MemoryHierarchy::new(MemLatencies::default())
    }
}

impl MemoryHierarchy {
    /// Creates the paper's configuration with the given latencies.
    pub fn new(latencies: MemLatencies) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(32 * 1024, 8, 64),
            l1d: Cache::new(32 * 1024, 8, 64),
            l2: Cache::new(2 * 1024 * 1024, 16, 64),
            latencies,
        }
    }

    /// A data access (load or store): returns the load-to-use latency.
    #[inline]
    pub fn data_access(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            self.latencies.l1
        } else if self.l2.access(addr) {
            self.latencies.l2
        } else {
            self.latencies.mem
        }
    }

    /// An instruction fetch: returns the extra front-end stall cycles
    /// (0 on an L1-I hit, which is pipelined into the front end).
    #[inline]
    pub fn inst_access(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            0
        } else if self.l2.access(addr) {
            self.latencies.l2
        } else {
            self.latencies.mem
        }
    }

    /// The L1 data cache (for statistics).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache (for statistics).
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2 (for statistics).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(8), "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, line 64, 1024 bytes -> 8 sets. Addresses 0, 512, 1024
        // map to set 0 (stride = 8 sets * 64 = 512).
        let mut c = Cache::new(1024, 2, 64);
        c.access(0);
        c.access(512);
        c.access(0); // touch 0: 512 becomes LRU
        c.access(1024); // evicts 512
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(512), "512 was evicted");
        assert!(c.check_invariants());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(1024, 2, 64);
        for i in 0..8u64 {
            c.access(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.access(i * 64), "set {i} retains its line");
        }
    }

    #[test]
    fn hierarchy_latency_tiers() {
        let mut h = MemoryHierarchy::default();
        let lat = h.data_access(0x1000);
        assert_eq!(lat, 200, "cold access goes to memory");
        let lat = h.data_access(0x1000);
        assert_eq!(lat, 4, "second access hits L1");
        // Evict from L1 by touching 9 conflicting lines (8-way):
        // L1 has 32KB/64B/8 = 64 sets; stride 64*64 = 4096.
        for i in 1..=9u64 {
            h.data_access(0x1000 + i * 4096 * 8);
        }
        let lat = h.data_access(0x1000);
        assert_eq!(lat, 12, "L1 evicted but L2 retains");
    }

    #[test]
    fn inst_hits_are_free() {
        let mut h = MemoryHierarchy::default();
        assert!(h.inst_access(0) > 0, "cold I-fetch stalls");
        assert_eq!(h.inst_access(0), 0, "warm I-fetch pipelined");
    }

    #[test]
    fn capacity_eviction() {
        // Touch 2x the cache capacity, then re-touch the first half: all
        // must miss in a 1 KB cache.
        let mut c = Cache::new(1024, 2, 64);
        for i in 0..32u64 {
            c.access(i * 64);
        }
        let before = c.misses();
        for i in 0..16u64 {
            c.access(i * 64);
        }
        assert_eq!(c.misses(), before + 16);
        assert!(c.check_invariants());
    }
}
