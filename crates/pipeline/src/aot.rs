//! The block-compiled capture engine: trace capture above interpreter
//! speed.
//!
//! Capture cost used to be one [`Emulator::step_decoded`] call — fetch,
//! dispatch, record construction, per-record cache bookkeeping — per
//! dynamic instruction. This module compiles the predecoded program
//! into **basic blocks** once per emulation key and executes each block
//! as a specialized straight-line step function:
//!
//! * the body (every non-control op up to the block's terminator) runs
//!   branch-free against the architectural state, with no per-op pc or
//!   retired-counter bookkeeping — one [`Emulator::commit_straight`]
//!   per block;
//! * body records bulk-append into the SoA [`TraceChunk`] packer as one
//!   consecutive-pc span through a pre-sized cursor writer
//!   (`TraceChunk::begin_fill`) instead of per-record pushes: zero
//!   istalls (see the warmth rule below), zero branch bytes, and dlats
//!   patched in from the loads the body actually executed;
//! * the terminator (branch/call/ret/halt/`PROB_JMP`) and every *rare*
//!   op (PBS probes, `out`) fall back to `step_decoded`, so branch
//!   events, PBS observation, call-stack faults and probabilistic
//!   resolution reuse the interpreter's code paths verbatim;
//! * on top, **fragment-matched native specializations** (the
//!   `generated` tier): the workload library's inline RNG sequences —
//!   the xorshift64\* step, the `[0,1)` conversion, the Box–Muller
//!   tail — are structurally pattern-matched at block-build time and
//!   executed as straight-line host Rust, bit-identical to the op
//!   datapath (same `f64` operations in the same order);
//! * above blocks, **whole-loop specializations** ([`ArgmaxLoop`]):
//!   hot inner loops that the block engine would chop into several
//!   tiny blocks per iteration are fingerprinted at compile time and
//!   executed iteration-at-a-time as native Rust, emitting the same
//!   records, branch bytes, PBS observations and fault behavior
//!   through the same cursor writer.
//!
//! # Warmth rule (byte-identity of the fast path)
//!
//! The bulk path writes `istall = 0` for every body record, which is
//! only correct when each body line is already resident in the L1-I.
//! The engine therefore executes a block through the interpreter until
//! every line the body spans is marked in [`TraceStream::itouched`]
//! (first touches walk the hierarchy and insert into the shared L2,
//! exactly as the interpreter would), and only then engages the bulk
//! path. Programs too large for the `itouched` regime never compile —
//! they stay on the interpreter tier.
//!
//! # Faults and limits
//!
//! A memory fault at body index `k` emits the `k` completed records,
//! commits `pc`/`executed` to the faulting instruction and halts —
//! indistinguishable from `k` interpreter steps followed by the same
//! fault. Blocks only execute when the chunk budget covers the whole
//! block, so `InstLimitExceeded` trips at exactly the same dynamic
//! instruction as the interpreter. Long block runs poll the
//! cancellation token every [`CANCEL_STRIDE`](crate::cancel::CANCEL_STRIDE)
//! instructions, same as the fused engine.
//!
//! # Tier selection
//!
//! [`CaptureTier`] pick order: a per-thread override
//! ([`with_capture_tier`], for equivalence tests) beats the
//! `PROBRANCH_CAPTURE` environment variable
//! (`auto`/`generated`/`block`/`interp`, read once) beats the default
//! (`generated`). The `capture.block` failpoint degrades a block-tier
//! capture to the interpreter at `TraceStream` construction — torture
//! runs prove the degradation is byte-invisible.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use probranch_isa::{AluOp, CmpOp, FpBinOp, FpUnOp, Program, Reg};

use crate::cache::MemoryHierarchy;
use crate::cancel::CANCEL_STRIDE;
use crate::decode::{DecOp, DecodedProgram, InstTiming};
use crate::machine::{alu_eval, fp_bin_eval, BranchEvent, BranchEventKind, EmuError, Emulator};
use crate::sim::SimConfig;
use crate::trace::{
    encode_branch, record_costs, ChunkWriter, TraceChunk, TraceStream, TRACE_CHUNK_RECORDS,
};

/// How trace capture executes the guest program.
///
/// Every tier is byte-identical — same chunks, same errors at the same
/// dynamic instruction, same architectural results — locked by the
/// capture-tier proptests and the CI engine-diff matrix. Tiers differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureTier {
    /// Block-compiled execution with fragment-matched native
    /// specializations for the workload RNG sequences (the default and
    /// fastest tier).
    Generated,
    /// Block-compiled execution without native fragments.
    Block,
    /// The per-instruction decoded interpreter.
    Interp,
}

impl CaptureTier {
    /// The tier's tag in throughput reports
    /// (`BENCH_throughput.json` v8): `generated`/`block`/`interp`.
    pub fn tag(self) -> &'static str {
        match self {
            CaptureTier::Generated => "generated",
            CaptureTier::Block => "block",
            CaptureTier::Interp => "interp",
        }
    }
}

fn env_tier() -> CaptureTier {
    static TIER: OnceLock<CaptureTier> = OnceLock::new();
    *TIER.get_or_init(|| match std::env::var("PROBRANCH_CAPTURE") {
        Err(_) => CaptureTier::Generated,
        Ok(v) => match v.as_str() {
            "" | "auto" | "generated" => CaptureTier::Generated,
            "block" => CaptureTier::Block,
            "interp" => CaptureTier::Interp,
            other => panic!("PROBRANCH_CAPTURE must be auto|generated|block|interp, got {other:?}"),
        },
    })
}

thread_local! {
    static FORCED_TIER: Cell<Option<CaptureTier>> = const { Cell::new(None) };
}

/// Runs `f` with the capture tier forced to `tier` on this thread —
/// the hook the tier-equivalence tests use to capture the same key
/// under every tier regardless of environment. Restores the previous
/// override on exit (including on panic/early return).
pub fn with_capture_tier<R>(tier: CaptureTier, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CaptureTier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_TIER.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED_TIER.with(|c| c.replace(Some(tier))));
    f()
}

/// The tier new [`TraceStream`]s select blocks under (thread override,
/// else environment, else `Generated`).
pub(crate) fn selected_tier() -> CaptureTier {
    FORCED_TIER.with(|c| c.get()).unwrap_or_else(env_tier)
}

/// The tier a capture of `program` under `config` would actually run
/// at, as a report tag: `generated` only when at least one RNG
/// fragment matched, `block` when blocks compiled without fragments,
/// `interp` when the tier selection or the L1-I-residency precondition
/// forces the interpreter. (Failpoint degradation is not consulted —
/// bench reports are measured without fault plans.)
pub fn capture_tier(program: &Program, config: &SimConfig) -> &'static str {
    let tier = selected_tier();
    if tier == CaptureTier::Interp {
        return CaptureTier::Interp.tag();
    }
    let decoded = DecodedProgram::of(program);
    if !l1i_resident(decoded.len()) {
        return CaptureTier::Interp.tag();
    }
    let _ = config;
    let compiled = BlockProgram::compile(&decoded, tier == CaptureTier::Generated);
    if compiled.compiled_blocks() == 0 {
        CaptureTier::Interp.tag()
    } else if compiled.has_native() {
        CaptureTier::Generated.tag()
    } else {
        CaptureTier::Block.tag()
    }
}

/// Whether a program of `n_insts` static instructions satisfies the
/// L1-I-residency argument `TraceStream` sizes `itouched` with.
pub(crate) fn l1i_resident(n_insts: usize) -> bool {
    let presim = MemoryHierarchy::default();
    let pcs_per_line = (presim.l1i().line_bytes() / 8).max(1);
    n_insts.div_ceil(pcs_per_line) <= presim.l1i().capacity_lines()
}

// --- capture/drain overlap switch -----------------------------------

/// 0 = unset (default on), 1 = forced on, 2 = forced off.
static OVERLAP: AtomicU8 = AtomicU8::new(0);

/// Enables or disables the chunk-pipelined capture/drain overlap for
/// convoy runs (capture chunk `N+1` on a helper thread while consumers
/// drain chunk `N`). The harness calls this with `jobs > 1` so a
/// single-job run degrades to the serial fill loop. The
/// `PROBRANCH_CAPTURE_OVERLAP` environment variable (`0`/`1`), read
/// once, wins over this switch — that is how CI diffs pipelined
/// against serial byte-for-byte.
pub fn set_capture_overlap(enabled: bool) {
    OVERLAP.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether convoy capture currently overlaps capture and drain (see
/// [`set_capture_overlap`]).
pub fn capture_overlap() -> bool {
    static ENV: OnceLock<Option<bool>> = OnceLock::new();
    let env = *ENV.get_or_init(|| match std::env::var("PROBRANCH_CAPTURE_OVERLAP") {
        Err(_) => None,
        Ok(v) => match v.as_str() {
            "" => None,
            "0" | "off" | "serial" => Some(false),
            "1" | "on" | "pipelined" => Some(true),
            other => panic!("PROBRANCH_CAPTURE_OVERLAP must be 0 or 1, got {other:?}"),
        },
    });
    if let Some(forced) = env {
        return forced;
    }
    OVERLAP.load(Ordering::Relaxed) != 2
}

// --- block program ---------------------------------------------------

/// A fragment-matched native specialization: executes a straight-line
/// span of guest ops as host Rust against the register file.
pub(crate) type NativeFn = fn(&mut [u64; 32], [u8; 6]);

/// One step of a compiled block body.
pub(crate) enum BodyStep {
    /// One straight-line decoded op, executed by the shared datapath
    /// ([`Emulator::exec_straight_op`]).
    Op(DecOp),
    /// A native fragment covering `len` consecutive pcs (pure register
    /// dataflow: no memory, flag or PBS effects).
    Native {
        /// The specialized step function.
        fun: NativeFn,
        /// Register slots, resolved at block-build time (trailing slots
        /// unused by shorter fragments are zero).
        args: [u8; 6],
        /// Guest instructions (== records) the fragment covers.
        len: u32,
    },
}

impl std::fmt::Debug for BodyStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BodyStep::Op(op) => f.debug_tuple("Op").field(op).finish(),
            BodyStep::Native { args, len, .. } => f
                .debug_struct("Native")
                .field("args", args)
                .field("len", len)
                .finish(),
        }
    }
}

/// A block terminator, predecoded at block-build time.
///
/// Direct branches (`jf`, the fused compare-and-branches, `jmp`) and
/// the call-stack pair (`call`/`ret`) execute inline on the warm path:
/// the condition/stack datapath, the pc redirect, the PBS history
/// observation and one packed branch record — skipping the
/// interpreter's fetch/dispatch/record round trip, which dominates
/// capture time on branchy kernels whose blocks are only a few ops
/// long. Terminators with side effects beyond that (probabilistic
/// resolution, halt) stay on [`Emulator::step_decoded`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Term {
    /// `jf target` — conditional on the flag register.
    Jf {
        /// Taken-path pc.
        target: u32,
    },
    /// Fused register-register compare-and-branch.
    BrRR {
        /// Comparison operator.
        op: CmpOp,
        /// Whether the compare is over `f64` bit patterns.
        fp: bool,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Taken-path pc.
        target: u32,
    },
    /// Fused register-immediate compare-and-branch.
    BrRI {
        /// Comparison operator.
        op: CmpOp,
        /// Whether the compare is over `f64` bit patterns.
        fp: bool,
        /// Left operand register.
        lhs: Reg,
        /// Immediate right operand (bit pattern).
        imm: u64,
        /// Taken-path pc.
        target: u32,
    },
    /// Direct unconditional jump.
    Jmp {
        /// Target pc.
        target: u32,
    },
    /// Direct call: stack push + redirect, with the overflow fault
    /// handled inline.
    Call {
        /// Callee entry pc.
        target: u32,
    },
    /// Return: stack pop + redirect, with the underflow fault handled
    /// inline.
    Ret,
    /// `PROB_JMP`: probabilistic resolution inline
    /// ([`Emulator::commit_term_prob`] — the shared resolution path,
    /// minus the interpreter round trip).
    Prob {
        /// Last probability register to push, when the short form
        /// carries one.
        prob: Option<Reg>,
        /// Taken-path pc.
        target: u32,
    },
    /// `halt`: executed via `step_decoded`.
    Other,
}

/// One basic block: a maximal straight-line body plus (usually) a
/// control-op terminator.
#[derive(Debug)]
pub(crate) struct CompiledBlock {
    /// Leader pc; body records cover `start_pc..start_pc + body_len`.
    pub(crate) start_pc: u32,
    /// The straight-line body. Every step advances the pc by its
    /// record count; no intra-block control.
    pub(crate) body: Vec<BodyStep>,
    /// Records the body contributes (== static body length in guest
    /// instructions).
    pub(crate) body_len: u32,
    /// The control-op terminator following the body, predecoded;
    /// `None` when the block ends at a leader or rare-op boundary
    /// instead.
    pub(crate) term: Option<Term>,
    /// A whole-loop specialization headed at this block's leader, when
    /// the fingerprint matched (`generated` tier only).
    pub(crate) spec: Option<ArgmaxLoop>,
}

impl CompiledBlock {
    /// Total records one execution of the block emits.
    #[inline(always)]
    fn records(&self) -> u64 {
        self.body_len as u64 + self.term.is_some() as u64
    }
}

const NO_BLOCK: u32 = u32::MAX;

/// The block-compiled form of a program: dense pc → block dispatch
/// plus the compiled blocks, built once per emulation key.
#[derive(Debug)]
pub(crate) struct BlockProgram {
    blocks: Vec<CompiledBlock>,
    /// pc → index into `blocks` for compiled leaders (non-empty body
    /// or a lone terminator),
    /// [`NO_BLOCK`] everywhere else.
    index: Vec<u32>,
    has_native: bool,
}

/// Control ops terminate a block and execute via `step_decoded` (branch
/// events, PBS observation, call-stack faults, prob resolution, halt).
fn is_control(op: &DecOp) -> bool {
    matches!(
        op,
        DecOp::Jf { .. }
            | DecOp::BrRR { .. }
            | DecOp::BrRI { .. }
            | DecOp::Jmp { .. }
            | DecOp::Call { .. }
            | DecOp::Ret
            | DecOp::ProbJmp { .. }
            | DecOp::Halt
    )
}

/// Rare ops the block engine leaves to the interpreter: output writes
/// only. A body ends before one; the pc after it is a fresh leader, so
/// only the rare op itself single-steps. The PBS probes (`prob_cmp`,
/// `prob_jmp_push`/`quiet`) are straight-line from the trace's point
/// of view and execute inside block bodies via `exec_straight_op` —
/// every paper kernel has one in its hot loop, and splitting there
/// would cost two dispatch round trips per iteration.
fn is_rare(op: &DecOp) -> bool {
    matches!(op, DecOp::Out { .. })
}

/// Predecodes a control op into its [`Term`] form.
fn lower_term(op: &DecOp) -> Term {
    match *op {
        DecOp::Jf { target } => Term::Jf { target },
        DecOp::BrRR {
            op,
            fp,
            lhs,
            rhs,
            target,
        } => Term::BrRR {
            op,
            fp,
            lhs,
            rhs,
            target,
        },
        DecOp::BrRI {
            op,
            fp,
            lhs,
            imm,
            target,
        } => Term::BrRI {
            op,
            fp,
            lhs,
            imm,
            target,
        },
        DecOp::Jmp { target } => Term::Jmp { target },
        DecOp::Call { target } => Term::Call { target },
        DecOp::Ret => Term::Ret,
        DecOp::ProbJmp { prob, target } => Term::Prob { prob, target },
        _ => Term::Other,
    }
}

fn branch_target(op: &DecOp) -> Option<u32> {
    match *op {
        DecOp::Jf { target }
        | DecOp::BrRR { target, .. }
        | DecOp::BrRI { target, .. }
        | DecOp::Jmp { target }
        | DecOp::Call { target }
        | DecOp::ProbJmp { target, .. } => Some(target),
        _ => None,
    }
}

impl BlockProgram {
    /// Extracts and compiles the basic blocks of `decoded`. Leaders are
    /// the entry, every branch/call target, and the pc after every
    /// control or rare op; a body extends from its leader to the next
    /// control op (terminator), rare op, leader or program end.
    /// `allow_native` additionally pattern-matches the workload RNG
    /// fragments (the `generated` tier).
    pub(crate) fn compile(decoded: &DecodedProgram, allow_native: bool) -> BlockProgram {
        let insts = decoded.insts();
        let n = insts.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, d) in insts.iter().enumerate() {
            if is_control(&d.op) {
                if let Some(t) = branch_target(&d.op) {
                    if (t as usize) < n {
                        leader[t as usize] = true;
                    }
                }
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            } else if is_rare(&d.op) && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut index = vec![NO_BLOCK; n];
        let mut has_native = false;
        let mut start = 0usize;
        while start < n {
            if !leader[start] {
                start += 1;
                continue;
            }
            let mut end = start;
            let mut has_term = false;
            while end < n {
                let op = &insts[end].op;
                if is_control(op) {
                    has_term = true;
                    break;
                }
                if is_rare(op) || (end > start && leader[end]) {
                    break;
                }
                end += 1;
            }
            if end == start {
                // The leader is itself a control op (a branch that is
                // also a branch target — common in else-chains and at
                // loop-skip labels): compile a terminator-only block so
                // it still executes inline instead of paying a full
                // `step_decoded` round trip. Rare ops stay
                // single-stepped.
                if has_term {
                    index[start] = blocks.len() as u32;
                    blocks.push(CompiledBlock {
                        start_pc: start as u32,
                        body: Vec::new(),
                        body_len: 0,
                        term: Some(lower_term(&insts[end].op)),
                        spec: None,
                    });
                }
                start += 1;
                continue;
            }
            let mut body = Vec::with_capacity(end - start);
            let ops: Vec<DecOp> = insts[start..end].iter().map(|d| d.op).collect();
            let mut i = 0;
            while i < ops.len() {
                if allow_native {
                    if let Some((fun, args, len)) = match_fragment(&ops[i..]) {
                        body.push(BodyStep::Native { fun, args, len });
                        has_native = true;
                        i += len as usize;
                        continue;
                    }
                }
                body.push(BodyStep::Op(ops[i]));
                i += 1;
            }
            index[start] = blocks.len() as u32;
            blocks.push(CompiledBlock {
                start_pc: start as u32,
                body,
                body_len: (end - start) as u32,
                term: has_term.then(|| lower_term(&insts[end].op)),
                spec: None,
            });
            start = end;
        }
        if allow_native {
            // Whole-loop fingerprints attach to the loop-head leader's
            // block; the loop's interior blocks stay compiled as-is so
            // mid-loop resume points (budget tails, post-fault pcs)
            // still dispatch generically.
            for p in 0..n {
                let i = index[p];
                if i == NO_BLOCK || p + ARGMAX_LEN > n {
                    continue;
                }
                let window: [DecOp; ARGMAX_LEN] = std::array::from_fn(|j| insts[p + j].op);
                if let Some(spec) = match_argmax(&window, p as u32) {
                    blocks[i as usize].spec = Some(spec);
                    has_native = true;
                }
            }
        }
        BlockProgram {
            blocks,
            index,
            has_native,
        }
    }

    /// The compiled block whose leader is `pc`, if any (unit-test
    /// convenience; the dispatch loop uses [`idx_at`](Self::idx_at)).
    #[cfg(test)]
    pub(crate) fn at(&self, pc: u32) -> Option<&CompiledBlock> {
        self.idx_at(pc).map(|i| &self.blocks[i])
    }

    /// The index of the compiled block whose leader is `pc`, if any —
    /// the dispatch loop keys its warmth cache by this index.
    #[inline(always)]
    pub(crate) fn idx_at(&self, pc: u32) -> Option<usize> {
        let i = *self.index.get(pc as usize)?;
        (i != NO_BLOCK).then_some(i as usize)
    }

    /// The compiled block at `i` (see [`idx_at`](Self::idx_at)).
    #[inline(always)]
    pub(crate) fn block(&self, i: usize) -> &CompiledBlock {
        &self.blocks[i]
    }

    /// Number of compiled blocks.
    pub(crate) fn compiled_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether any block carries a fragment-matched native step.
    pub(crate) fn has_native(&self) -> bool {
        self.has_native
    }
}

// --- block execution -------------------------------------------------

/// Whether every L1-I line the block spans — body plus terminator, when
/// one follows — has been touched: the precondition for the zero-istall
/// bulk path *and* for the inline terminator record, whose `istall = 0`
/// is only what `pack_record` would produce once the line is resident.
#[inline(always)]
fn block_warm(itouched: &[bool], pcs_per_line: usize, b: &CompiledBlock) -> bool {
    debug_assert!(b.records() > 0);
    let l0 = b.start_pc as usize / pcs_per_line;
    let last_pc = b.start_pc + b.body_len + b.term.is_some() as u32 - 1;
    let l1 = last_pc as usize / pcs_per_line;
    itouched[l0..=l1].iter().all(|&t| t)
}

/// Executes one warm block: native body, bulk record emission, then
/// the terminator through the interpreter. Returns the records
/// emitted.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_block(
    emu: &mut Emulator,
    presim: &mut MemoryHierarchy,
    timings: &[InstTiming],
    itouched: &mut [bool],
    pcs_per_line: usize,
    w: &mut ChunkWriter,
    b: &CompiledBlock,
    dlats: &mut Vec<(u32, u8)>,
) -> Result<u64, EmuError> {
    dlats.clear();
    let start = b.start_pc;
    let mut done: u32 = 0;
    for step in &b.body {
        match step {
            BodyStep::Op(op) => match emu.exec_straight_op(*op, start + done) {
                Ok(Some(addr)) => {
                    // Loads pre-simulate their data access in execution
                    // order, exactly as the interpreter tier would; the
                    // latency is patched into the bulk span below.
                    let dlat = presim.data_access(addr);
                    debug_assert!(dlat <= u8::MAX as u64);
                    dlats.push((done, dlat as u8));
                    done += 1;
                }
                Ok(None) => done += 1,
                Err(e) => {
                    // Fault at body index `done`: emit the completed
                    // records and land the machine on the faulting
                    // instruction — indistinguishable from `done`
                    // interpreter steps followed by the same fault.
                    w.emit_straight(start, done, dlats);
                    emu.commit_straight(start + done, done as u64);
                    return Err(e);
                }
            },
            BodyStep::Native { fun, args, len } => {
                fun(emu.regs_mut(), *args);
                done += len;
            }
        }
    }
    debug_assert_eq!(done, b.body_len);
    w.emit_straight(start, done, dlats);
    emu.commit_straight(start + done, done as u64);
    let Some(term) = b.term else {
        return Ok(done as u64);
    };
    let pc = start + done;
    // Direct branch terminators execute inline: condition datapath, pc
    // redirect, PBS observation, one packed record. The terminator's
    // line is covered by the warmth precondition (`istall = 0`, exactly
    // what `pack_record` would compute for a resident line) and a
    // branch is never a load (`dlat = 0`).
    let (target, taken, kind) = match term {
        Term::Jf { target } => (target, emu.flag(), BranchEventKind::Conditional),
        Term::BrRR {
            op,
            fp,
            lhs,
            rhs,
            target,
        } => (
            target,
            emu.cmp_rr(op, fp, lhs, rhs),
            BranchEventKind::Conditional,
        ),
        Term::BrRI {
            op,
            fp,
            lhs,
            imm,
            target,
        } => (
            target,
            emu.cmp_ri(op, fp, lhs, imm),
            BranchEventKind::Conditional,
        ),
        Term::Jmp { target } => (target, true, BranchEventKind::Unconditional),
        Term::Call { target } => {
            // Stack push + redirect; an overflow fault lands after the
            // body records, exactly like the interpreter's.
            emu.commit_term_call(pc, target)?;
            let byte = encode_branch(Some(BranchEvent {
                taken: true,
                kind: BranchEventKind::Call,
                is_prob: false,
            }));
            w.emit_record(pc, byte, 0, 0);
            return Ok(done as u64 + 1);
        }
        Term::Ret => {
            emu.commit_term_ret(pc)?;
            let byte = encode_branch(Some(BranchEvent {
                taken: true,
                kind: BranchEventKind::Ret,
                is_prob: false,
            }));
            w.emit_record(pc, byte, 0, 0);
            return Ok(done as u64 + 1);
        }
        Term::Prob { prob, target } => {
            // Probabilistic resolution through the shared path
            // (`resolve_prob_jump`), committed inline: every paper
            // kernel crosses one per hot-loop iteration, and the
            // interpreter round trip it used to pay is pure dispatch
            // overhead on top of the resolution itself.
            let (taken, kind) = emu.commit_term_prob(prob, pc, target);
            let byte = encode_branch(Some(BranchEvent {
                taken,
                kind,
                is_prob: true,
            }));
            w.emit_record(pc, byte, 0, 0);
            return Ok(done as u64 + 1);
        }
        Term::Other => {
            // `halt`: one interpreter step through the shared record
            // path.
            let rec = emu
                .step_decoded()?
                .expect("machine cannot be halted at a block terminator");
            let (istall, dlat) = record_costs(presim, timings, itouched, pcs_per_line, &rec);
            w.emit_record(rec.pc, encode_branch(rec.branch), istall, dlat);
            return Ok(done as u64 + 1);
        }
    };
    emu.commit_term_branch(pc, target, taken);
    let byte = encode_branch(Some(BranchEvent {
        taken,
        kind,
        is_prob: false,
    }));
    w.emit_record(pc, byte, 0, 0);
    Ok(done as u64 + 1)
}

// --- whole-loop specializations --------------------------------------

/// Static length of the argmax loop fingerprint in guest instructions.
const ARGMAX_LEN: usize = 14;

/// Most records one argmax iteration emits (an already-pulled arm that
/// improves the running best: `2 + 1 + 4 + 1 + 2 + 1 + 1`).
const ARGMAX_ITER_RECORDS: u64 = 12;

/// A fingerprint-matched whole-loop specialization: the linear argmax
/// scan at the heart of the Bandit kernel's exploit path —
///
/// ```text
/// head:    shl  i, k, #s          ; i = k * 8
///          ld   p, [i + OFF_P]    ; pulls[k]
///          br   cc1 p, #c1, head+5
///          mov  v, one            ; unpulled arm: optimistic score
///          jmp  head+9
/// head+5:  ld   v, [i + OFF_W]    ; wins[k]
///          itof v, v
///          itof p, p
///          fdiv v, v, p           ; empirical mean
/// head+9:  fbr  cc2 v, best_v, head+12
///          mov  best_v, v
///          mov  best_i, k
/// head+12: add  k, k, #a
///          br   cc3 k, #n, head   ; back edge
/// ```
///
/// The block engine chops one iteration into four tiny blocks, and
/// `head+9` — a jump target that is itself a control op — never
/// compiles at all, so the unpulled path pays a full `step_decoded`
/// per iteration. [`exec_argmax`] runs whole iterations as native
/// Rust instead: same datapath functions, same record/branch-byte
/// emission through the cursor writer, same PBS observations (the
/// back edge; forward branches are provable no-ops on the context
/// table), and the same fault landing points as the interpreter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArgmaxLoop {
    /// Loop-head pc (`shl`); the loop spans `head..head + 14`.
    head: u32,
    /// Index register `i` (byte offset of arm `k`).
    i: Reg,
    /// Loop counter register `k`.
    k: Reg,
    /// Pull-count register `p`.
    pulls: Reg,
    /// Score register `v`.
    score: Reg,
    /// Optimistic-score source register for unpulled arms.
    one: Reg,
    /// Running best score.
    best_v: Reg,
    /// Running best index.
    best_i: Reg,
    /// `shl` shift immediate.
    shl_imm: u64,
    /// `add` step immediate.
    add_imm: u64,
    /// Pull-count table base offset.
    off_pulls: i64,
    /// Wins table base offset.
    off_wins: i64,
    /// Pulled-test condition at `head + 2` (operator, fp, immediate).
    br_pulled: (CmpOp, bool, u64),
    /// Skip-update condition at `head + 9` (operator, fp).
    br_skip: (CmpOp, bool),
    /// Back-edge condition at `head + 13` (operator, fp, immediate).
    br_back: (CmpOp, bool, u64),
}

/// Matches the argmax loop fingerprint at `at` (see [`ArgmaxLoop`]).
/// Only the instruction kinds, the register dataflow and the four
/// control targets are structural; operators, immediates and offsets
/// are captured as data. Register aliasing needs no constraints:
/// [`exec_argmax`] replays every op in program order against the real
/// register file.
fn match_argmax(w: &[DecOp; ARGMAX_LEN], at: u32) -> Option<ArgmaxLoop> {
    let (i, k, shl_imm) = match w[0] {
        DecOp::AluRI {
            op: AluOp::Shl,
            dst,
            src1,
            imm,
        } => (dst, src1, imm),
        _ => return None,
    };
    let (pulls, off_pulls) = match w[1] {
        DecOp::Load { dst, base, offset } if base == i => (dst, offset),
        _ => return None,
    };
    let br_pulled = match w[2] {
        DecOp::BrRI {
            op,
            fp,
            lhs,
            imm,
            target,
        } if lhs == pulls && target == at + 5 => (op, fp, imm),
        _ => return None,
    };
    let (score, one) = match w[3] {
        DecOp::Mov { dst, src } => (dst, src),
        _ => return None,
    };
    match w[4] {
        DecOp::Jmp { target } if target == at + 9 => {}
        _ => return None,
    }
    let off_wins = match w[5] {
        DecOp::Load { dst, base, offset } if dst == score && base == i => offset,
        _ => return None,
    };
    match w[6] {
        DecOp::IntToFp { dst, src } if dst == score && src == score => {}
        _ => return None,
    }
    match w[7] {
        DecOp::IntToFp { dst, src } if dst == pulls && src == pulls => {}
        _ => return None,
    }
    match w[8] {
        DecOp::FpBin {
            op: FpBinOp::Div,
            dst,
            src1,
            src2,
        } if dst == score && src1 == score && src2 == pulls => {}
        _ => return None,
    }
    let (best_v, br_skip) = match w[9] {
        DecOp::BrRR {
            op,
            fp,
            lhs,
            rhs,
            target,
        } if lhs == score && target == at + 12 => (rhs, (op, fp)),
        _ => return None,
    };
    match w[10] {
        DecOp::Mov { dst, src } if dst == best_v && src == score => {}
        _ => return None,
    }
    let best_i = match w[11] {
        DecOp::Mov { dst, src } if src == k => dst,
        _ => return None,
    };
    let add_imm = match w[12] {
        DecOp::AluRI {
            op: AluOp::Add,
            dst,
            src1,
            imm,
        } if dst == k && src1 == k => imm,
        _ => return None,
    };
    let br_back = match w[13] {
        DecOp::BrRI {
            op,
            fp,
            lhs,
            imm,
            target,
        } if lhs == k && target == at => (op, fp, imm),
        _ => return None,
    };
    Some(ArgmaxLoop {
        head: at,
        i,
        k,
        pulls,
        score,
        one,
        best_v,
        best_i,
        shl_imm,
        add_imm,
        off_pulls,
        off_wins,
        br_pulled,
        br_skip,
        br_back,
    })
}

/// Whether every L1-I line the whole loop spans is resident — the
/// zero-istall precondition for [`exec_argmax`], which covers all
/// fourteen pcs, not just the head block.
#[inline(always)]
fn argmax_warm(itouched: &[bool], pcs_per_line: usize, head: u32) -> bool {
    let l0 = head as usize / pcs_per_line;
    let l1 = (head as usize + ARGMAX_LEN - 1) / pcs_per_line;
    itouched[l0..=l1].iter().all(|&t| t)
}

/// Executes argmax iterations natively until the back edge falls
/// through or the next iteration might not fit `budget`, emitting
/// exactly the records the interpreter would. Loads pre-simulate in
/// execution order and faults land identically: completed records
/// emitted, `pc` on the faulting instruction, machine halted.
fn exec_argmax(
    emu: &mut Emulator,
    presim: &mut MemoryHierarchy,
    w: &mut ChunkWriter,
    sp: &ArgmaxLoop,
    budget: u64,
) -> Result<(), EmuError> {
    let p0 = sp.head;
    let cond = |taken| {
        encode_branch(Some(BranchEvent {
            taken,
            kind: BranchEventKind::Conditional,
            is_prob: false,
        }))
    };
    let (taken_byte, not_byte) = (cond(true), cond(false));
    let jmp_byte = encode_branch(Some(BranchEvent {
        taken: true,
        kind: BranchEventKind::Unconditional,
        is_prob: false,
    }));
    loop {
        // head: shl, then the pulls load. A fault on the load emits
        // the completed shl record first, exactly like `exec_block`.
        {
            let regs = emu.regs_mut();
            regs[sp.i.index()] = alu_eval(AluOp::Shl, regs[sp.k.index()], sp.shl_imm);
        }
        let addr = match emu.load_checked(sp.pulls, sp.i, sp.off_pulls, p0 + 1) {
            Ok(a) => a,
            Err(e) => {
                w.emit_straight(p0, 1, &[]);
                emu.commit_straight(p0 + 1, 1);
                return Err(e);
            }
        };
        let dlat = presim.data_access(addr);
        debug_assert!(dlat <= u8::MAX as u64);
        w.emit_straight(p0, 2, &[(1, dlat as u8)]);
        emu.commit_straight(p0 + 2, 2);
        // head+2: pulled test (forward branch: PBS no-op).
        let (op1, fp1, imm1) = sp.br_pulled;
        let pulled = emu.cmp_ri(op1, fp1, sp.pulls, imm1);
        emu.commit_term_branch(p0 + 2, p0 + 5, pulled);
        w.emit_record(p0 + 2, if pulled { taken_byte } else { not_byte }, 0, 0);
        if pulled {
            // head+5..9: wins load, two itofs, fdiv — the shared
            // datapath expressions, in op order.
            let addr = emu.load_checked(sp.score, sp.i, sp.off_wins, p0 + 5)?;
            let dlat = presim.data_access(addr);
            debug_assert!(dlat <= u8::MAX as u64);
            {
                let regs = emu.regs_mut();
                regs[sp.score.index()] = (regs[sp.score.index()] as i64 as f64).to_bits();
                regs[sp.pulls.index()] = (regs[sp.pulls.index()] as i64 as f64).to_bits();
                regs[sp.score.index()] = fp_bin_eval(
                    FpBinOp::Div,
                    f64::from_bits(regs[sp.score.index()]),
                    f64::from_bits(regs[sp.pulls.index()]),
                )
                .to_bits();
            }
            w.emit_straight(p0 + 5, 4, &[(0, dlat as u8)]);
            emu.commit_straight(p0 + 9, 4);
        } else {
            // head+3..5: optimistic score, jump to the compare.
            {
                let regs = emu.regs_mut();
                regs[sp.score.index()] = regs[sp.one.index()];
            }
            w.emit_straight(p0 + 3, 1, &[]);
            emu.commit_straight(p0 + 4, 1);
            emu.commit_term_branch(p0 + 4, p0 + 9, true);
            w.emit_record(p0 + 4, jmp_byte, 0, 0);
        }
        // head+9: skip-update test (forward branch: PBS no-op).
        let (op2, fp2) = sp.br_skip;
        let skip = emu.cmp_rr(op2, fp2, sp.score, sp.best_v);
        emu.commit_term_branch(p0 + 9, p0 + 12, skip);
        w.emit_record(p0 + 9, if skip { taken_byte } else { not_byte }, 0, 0);
        if !skip {
            let regs = emu.regs_mut();
            regs[sp.best_v.index()] = regs[sp.score.index()];
            regs[sp.best_i.index()] = regs[sp.k.index()];
            w.emit_straight(p0 + 10, 2, &[]);
            emu.commit_straight(p0 + 12, 2);
        }
        // head+12: counter step.
        {
            let regs = emu.regs_mut();
            regs[sp.k.index()] = alu_eval(AluOp::Add, regs[sp.k.index()], sp.add_imm);
        }
        w.emit_straight(p0 + 12, 1, &[]);
        emu.commit_straight(p0 + 13, 1);
        // head+13: the back edge — the one branch PBS observes.
        let (op3, fp3, imm3) = sp.br_back;
        let again = emu.cmp_ri(op3, fp3, sp.k, imm3);
        emu.commit_term_branch(p0 + 13, p0, again);
        w.emit_record(p0 + 13, if again { taken_byte } else { not_byte }, 0, 0);
        if !again || budget - w.written() < ARGMAX_ITER_RECORDS {
            return Ok(());
        }
    }
}

impl TraceStream {
    /// The block-compiled tier of [`fill`](TraceStream::fill): dispatch
    /// on the pc, execute warm blocks natively with bulk emission, and
    /// single-step everything else (cold blocks, rare ops, budget
    /// tails, mid-block resume points) through the interpreter.
    pub(crate) fn fill_block(&mut self, chunk: &mut TraceChunk) -> Result<bool, EmuError> {
        chunk.clear();
        if self.halted {
            return Ok(false);
        }
        crate::cancel::check_current()?;
        // Cap the chunk at the remaining instruction budget so the
        // limit trips at exactly the same dynamic instruction as the
        // interpreter tier (blocks never straddle the budget: the
        // dispatch below falls back to single steps for the tail).
        let budget = (self.max_insts - self.executed).clamp(1, TRACE_CHUNK_RECORDS as u64);
        // The fused engine's 64 Ki-instruction cancellation stride,
        // threaded through block execution so `--cell-deadline-ms`
        // cancels long captures promptly even if chunks ever outgrow
        // the stride.
        let mut next_poll = CANCEL_STRIDE;
        let TraceStream {
            emu,
            presim,
            timings,
            itouched,
            pcs_per_line,
            blocks,
            warm_blocks,
            dlat_scratch,
            ..
        } = self;
        let blocks = blocks
            .as_ref()
            .expect("fill_block requires compiled blocks");
        let pcs_per_line = *pcs_per_line;
        let mut w = chunk.begin_fill(budget as usize);
        // Run the dispatch loop to completion or first error, then trim
        // the pre-sized streams either way — a fault must leave the
        // chunk holding exactly the records emitted before it.
        let run = (|| -> Result<(), EmuError> {
            while w.written() < budget && !emu.is_halted() {
                if w.written() >= next_poll {
                    crate::cancel::check_current()?;
                    next_poll = w.written() + CANCEL_STRIDE;
                }
                if let Some(i) = blocks.idx_at(emu.pc()) {
                    let b = blocks.block(i);
                    // Warmth is monotonic (`itouched` lines are only
                    // ever set), so a block found warm once is warm
                    // forever — cache the verdict and skip the line
                    // scan.
                    let warm = warm_blocks[i] || {
                        let v = block_warm(itouched, pcs_per_line, b);
                        warm_blocks[i] = v;
                        v
                    };
                    if let Some(sp) = warm.then_some(()).and(b.spec.as_ref()) {
                        // Whole-loop fast path: needs its own budget
                        // headroom (one full iteration) and warmth over
                        // all fourteen lines, not just the head block.
                        if budget - w.written() >= ARGMAX_ITER_RECORDS
                            && argmax_warm(itouched, pcs_per_line, sp.head)
                        {
                            exec_argmax(emu, presim, &mut w, sp, budget)?;
                            continue;
                        }
                    }
                    if warm && b.records() <= budget - w.written() {
                        exec_block(
                            emu,
                            presim,
                            timings,
                            itouched,
                            pcs_per_line,
                            &mut w,
                            b,
                            dlat_scratch,
                        )?;
                        continue;
                    }
                }
                match emu.step_decoded()? {
                    Some(rec) => {
                        let (istall, dlat) =
                            record_costs(presim, timings, itouched, pcs_per_line, &rec);
                        w.emit_record(rec.pc, encode_branch(rec.branch), istall, dlat);
                    }
                    None => break,
                }
            }
            Ok(())
        })();
        let emitted = w.written();
        let (written, open_run) = w.finish();
        chunk.end_fill(written, open_run);
        run?;
        if emitted == 0 {
            self.halted = true;
            return Ok(false);
        }
        self.executed += emitted;
        if self.executed >= self.max_insts {
            self.halted = true;
            return Err(EmuError::InstLimitExceeded {
                limit: self.max_insts,
            });
        }
        Ok(true)
    }
}

// --- native fragments ------------------------------------------------

/// Tries every fragment matcher at the head of `w`, longest first.
fn match_fragment(w: &[DecOp]) -> Option<(NativeFn, [u8; 6], u32)> {
    if let Some(args) = match_gauss_tail(w) {
        return Some((native_gauss_tail, args, 10));
    }
    if let Some(args) = match_next_f64(w) {
        return Some((native_next_f64, args, 10));
    }
    if let Some(args) = match_next_u64(w) {
        return Some((native_next_u64, args, 7));
    }
    if let Some(args) = match_f64_tail(w) {
        return Some((native_f64_tail, args, 3));
    }
    None
}

/// Matches the full 10-op `RngAsm::next_f64` — a `next_u64` whose
/// output register immediately runs the `[0,1)` tail — so the fused
/// native keeps the xorshift dataflow in host registers across the
/// conversion instead of paying two fragment dispatches. Returns
/// `[s, t, m, out, sc, 0]`.
fn match_next_f64(w: &[DecOp]) -> Option<[u8; 6]> {
    if w.len() < 10 {
        return None;
    }
    let head = match_next_u64(w)?;
    let tail = match_f64_tail(&w[7..])?;
    if tail[0] != head[3] {
        return None;
    }
    let [s, t, m, out, ..] = head;
    Some([s, t, m, out, tail[1], 0])
}

/// `args = [s, t, m, out, sc, _]`. The `next_u64` writes (in guest
/// order) followed by the tail's conversion — every read of `m`/`sc`
/// happens at the same point in the write sequence as in the guest, so
/// all aliasing cases land on the ten DecOps' final state.
fn native_next_f64(regs: &mut [u64; 32], args: [u8; 6]) {
    let [s, t, m, out, sc, _] = args.map(usize::from);
    let mut x = regs[s];
    x ^= x >> 12;
    x ^= x << 25;
    let last = x >> 27;
    x ^= last;
    regs[t] = last;
    regs[s] = x;
    regs[out] = x.wrapping_mul(regs[m]);
    let v = (regs[out] >> 11) as i64 as f64;
    regs[out] = (v * f64::from_bits(regs[sc])).to_bits();
}

/// Matches the 7-op xorshift64\* step the workload library inlines
/// (`RngAsm::next_u64`): `shr t,s,12; xor s,s,t; shl t,s,25;
/// xor s,s,t; shr t,s,27; xor s,s,t; mul out,s,m`. Register slots are
/// matched parametrically — any distinct `(s, t)` pair works, not just
/// the default r24/r27 block. Returns `[s, t, m, out, 0, 0]`.
fn match_next_u64(w: &[DecOp]) -> Option<[u8; 6]> {
    if w.len() < 7 {
        return None;
    }
    let (s, t) = match w[0] {
        DecOp::AluRI {
            op: AluOp::Shr,
            dst,
            src1,
            imm: 12,
        } if dst != src1 => (src1, dst),
        _ => return None,
    };
    let xor_sst = |op: DecOp| {
        matches!(op, DecOp::AluRR {
            op: AluOp::Xor,
            dst,
            src1,
            src2,
        } if dst == s && src1 == s && src2 == t)
    };
    if !xor_sst(w[1]) || !xor_sst(w[3]) || !xor_sst(w[5]) {
        return None;
    }
    match w[2] {
        DecOp::AluRI {
            op: AluOp::Shl,
            dst,
            src1,
            imm: 25,
        } if dst == t && src1 == s => {}
        _ => return None,
    }
    match w[4] {
        DecOp::AluRI {
            op: AluOp::Shr,
            dst,
            src1,
            imm: 27,
        } if dst == t && src1 == s => {}
        _ => return None,
    }
    let (out, m) = match w[6] {
        DecOp::AluRR {
            op: AluOp::Mul,
            dst,
            src1,
            src2,
        } if src1 == s => (dst, src2),
        _ => return None,
    };
    Some([
        s.index() as u8,
        t.index() as u8,
        m.index() as u8,
        out.index() as u8,
        0,
        0,
    ])
}

/// `args = [s, t, m, out, _, _]`. Writes `t`, `s`, `out` in the guest's
/// op order so every register-aliasing case lands on the same final
/// state as the seven DecOps.
fn native_next_u64(regs: &mut [u64; 32], args: [u8; 6]) {
    let [s, t, m, out, _, _] = args.map(usize::from);
    let mut x = regs[s];
    x ^= x >> 12;
    x ^= x << 25;
    let last = x >> 27;
    x ^= last;
    regs[t] = last;
    regs[s] = x;
    regs[out] = x.wrapping_mul(regs[m]);
}

/// Matches the 3-op `[0,1)` conversion tail (`RngAsm::next_f64` after
/// its `next_u64`): `shr o,o,11; itof o,o; fmul o,o,sc`. Returns
/// `[o, sc, 0, 0, 0, 0]`.
fn match_f64_tail(w: &[DecOp]) -> Option<[u8; 6]> {
    if w.len() < 3 {
        return None;
    }
    let o = match w[0] {
        DecOp::AluRI {
            op: AluOp::Shr,
            dst,
            src1,
            imm: 11,
        } if dst == src1 => dst,
        _ => return None,
    };
    match w[1] {
        DecOp::IntToFp { dst, src } if dst == o && src == o => {}
        _ => return None,
    }
    let sc = match w[2] {
        DecOp::FpBin {
            op: FpBinOp::Mul,
            dst,
            src1,
            src2,
        } if dst == o && src1 == o && src2 != o => src2,
        _ => return None,
    };
    Some([o.index() as u8, sc.index() as u8, 0, 0, 0, 0])
}

/// `args = [o, sc, _, _, _, _]`. Same `u64 → i64 → f64` conversion and
/// multiply as the `IntToFp`/`FpBin` datapaths.
fn native_f64_tail(regs: &mut [u64; 32], args: [u8; 6]) {
    let o = args[0] as usize;
    let sc = args[1] as usize;
    let v = (regs[o] >> 11) as i64 as f64;
    regs[o] = (v * f64::from_bits(regs[sc])).to_bits();
}

/// Matches the 10-op Box–Muller tail (`RngAsm::next_gauss_pair` after
/// its two `next_f64`s): `fln t1,t1; lif z1,-2; fmul t1,t1,z1;
/// fsqrt t1,t1; lif z1,2π; fmul t2,t2,z1; fcos z0,t2; fmul z0,t1,z0;
/// fsin z1,t2; fmul z1,t1,z1`. Returns `[z0, z1, t1, t2, 0, 0]`.
fn match_gauss_tail(w: &[DecOp]) -> Option<[u8; 6]> {
    if w.len() < 10 {
        return None;
    }
    let neg_two = (-2.0f64).to_bits();
    let two_pi = (2.0 * std::f64::consts::PI).to_bits();
    let t1 = match w[0] {
        DecOp::FpUn {
            op: FpUnOp::Ln,
            dst,
            src,
        } if dst == src => dst,
        _ => return None,
    };
    let z1 = match w[1] {
        DecOp::Li { dst, imm } if imm == neg_two && dst != t1 => dst,
        _ => return None,
    };
    match w[2] {
        DecOp::FpBin {
            op: FpBinOp::Mul,
            dst,
            src1,
            src2,
        } if dst == t1 && src1 == t1 && src2 == z1 => {}
        _ => return None,
    }
    match w[3] {
        DecOp::FpUn {
            op: FpUnOp::Sqrt,
            dst,
            src,
        } if dst == t1 && src == t1 => {}
        _ => return None,
    }
    match w[4] {
        DecOp::Li { dst, imm } if dst == z1 && imm == two_pi => {}
        _ => return None,
    }
    let t2 = match w[5] {
        DecOp::FpBin {
            op: FpBinOp::Mul,
            dst,
            src1,
            src2,
        } if dst == src1 && src2 == z1 && dst != t1 && dst != z1 => dst,
        _ => return None,
    };
    let z0 = match w[6] {
        DecOp::FpUn {
            op: FpUnOp::Cos,
            dst,
            src,
        } if src == t2 && dst != t1 && dst != t2 && dst != z1 => dst,
        _ => return None,
    };
    match w[7] {
        DecOp::FpBin {
            op: FpBinOp::Mul,
            dst,
            src1,
            src2,
        } if dst == z0 && src1 == t1 && src2 == z0 => {}
        _ => return None,
    }
    match w[8] {
        DecOp::FpUn {
            op: FpUnOp::Sin,
            dst,
            src,
        } if dst == z1 && src == t2 => {}
        _ => return None,
    }
    match w[9] {
        DecOp::FpBin {
            op: FpBinOp::Mul,
            dst,
            src1,
            src2,
        } if dst == z1 && src1 == t1 && src2 == z1 => {}
        _ => return None,
    }
    Some([
        z0.index() as u8,
        z1.index() as u8,
        t1.index() as u8,
        t2.index() as u8,
        0,
        0,
    ])
}

/// `args = [z0, z1, t1, t2, _, _]`. Uses the same `f64` operations
/// (`ln`/`sqrt`/`cos`/`sin`, IEEE multiplies) in the same order as the
/// ten DecOps, so the results are bit-identical; final register state
/// matches the guest's write order (`t1 = r`, `t2 = θ`, `z0 = r·cosθ`,
/// `z1 = r·sinθ`).
fn native_gauss_tail(regs: &mut [u64; 32], args: [u8; 6]) {
    let [z0, z1, t1, t2, _, _] = args.map(usize::from);
    let r = (f64::from_bits(regs[t1]).ln() * -2.0).sqrt();
    let theta = f64::from_bits(regs[t2]) * (2.0 * std::f64::consts::PI);
    regs[t1] = r.to_bits();
    regs[t2] = theta.to_bits();
    regs[z0] = (r * theta.cos()).to_bits();
    regs[z1] = (r * theta.sin()).to_bits();
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::{ProgramBuilder, Reg};

    fn decode(build: impl FnOnce(&mut ProgramBuilder)) -> DecodedProgram {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        DecodedProgram::of(&b.build().unwrap())
    }

    #[test]
    fn straight_line_program_compiles_to_one_block() {
        let d = decode(|b| {
            b.li(Reg::R1, 1);
            b.li(Reg::R2, 2);
            b.add(Reg::R3, Reg::R1, Reg::R2);
            b.halt();
        });
        let p = BlockProgram::compile(&d, true);
        assert_eq!(p.compiled_blocks(), 1);
        let b = p.at(0).unwrap();
        assert_eq!(b.body_len, 3);
        assert!(matches!(b.term, Some(Term::Other)), "halt terminator");
        assert!(!p.has_native());
    }

    #[test]
    fn rare_ops_split_blocks_and_stay_uncompiled() {
        let d = decode(|b| {
            b.li(Reg::R1, 7);
            b.out(Reg::R1, 0);
            b.li(Reg::R2, 8);
            b.halt();
        });
        let p = BlockProgram::compile(&d, true);
        // [li] | out (rare, single-stepped) | [li] halt
        assert_eq!(p.compiled_blocks(), 2);
        assert!(p.at(0).is_some());
        assert!(p.at(1).is_none());
        assert!(p.at(2).is_some());
        assert!(p.at(0).unwrap().term.is_none());
        assert!(p.at(2).unwrap().term.is_some());
    }

    #[test]
    fn branch_targets_become_leaders() {
        let d = decode(|b| {
            let top = b.label("top");
            b.li(Reg::R1, 0);
            b.bind(top);
            b.add(Reg::R1, Reg::R1, 1);
            b.br(probranch_isa::CmpOp::Lt, Reg::R1, 10, top);
            b.halt();
        });
        let p = BlockProgram::compile(&d, true);
        // [li] | [add] br | halt (control leader: terminator-only)
        assert_eq!(p.compiled_blocks(), 3);
        let head = p.at(0).unwrap();
        assert_eq!(head.body_len, 1);
        assert!(head.term.is_none(), "body splits at the loop-top leader");
        let body = p.at(1).unwrap();
        assert_eq!(body.body_len, 1);
        assert!(
            matches!(body.term, Some(Term::BrRI { .. })),
            "back-edge branch executes inline"
        );
        let tail = p.at(3).unwrap();
        assert_eq!(tail.body_len, 0, "lone control op compiles bodyless");
        assert!(matches!(tail.term, Some(Term::Other)));
    }

    #[test]
    fn rng_fragments_match_in_workload_blocks() {
        // The workloads crate is not a dependency of the pipeline, so
        // the asmlib xorshift sequence is rebuilt by hand here.
        fn rng_block(b: &mut ProgramBuilder, out: Reg) {
            let (s, m, t) = (Reg::R24, Reg::R25, Reg::R27);
            b.shr(t, s, 12).xor(s, s, t);
            b.shl(t, s, 25).xor(s, s, t);
            b.shr(t, s, 27).xor(s, s, t);
            b.mul(out, s, m);
        }
        let d = decode(|b| {
            b.li(Reg::R24, 12345);
            b.li(Reg::R25, 99);
            rng_block(b, Reg::R2);
            b.halt();
        });
        let p = BlockProgram::compile(&d, true);
        assert!(p.has_native(), "xorshift fragment should match");
        let without = BlockProgram::compile(&d, false);
        assert!(!without.has_native());
    }
}
