//! Trace capture and replay: emulate once, time many.
//!
//! Every timing cell that shares an *emulation key* — the workload
//! instance plus the architectural configuration `(PBS config, emulator
//! config)` — executes the same dynamic instruction stream: the
//! predictor, the core width, the Figure 9 filter switch and branch
//! tracing live entirely in the timing model and feed nothing back into
//! the emulator. This module makes that stream a first-class artifact:
//!
//! * [`TraceStream`] — the capture half of the fused engine, split out:
//!   drains the emulator's [`StepRecord`](crate::StepRecord) stream (branch outcomes and
//!   prob-branch resolutions ride inside the records) into
//!   structure-of-arrays [`TraceChunk`]s, pre-simulating the memory
//!   hierarchy — whose evolution also depends only on the pc/address
//!   stream — into per-record latencies along the way;
//! * [`DynTrace`] — a materialized, chunked trace captured once per
//!   emulation key and shared (`Arc<DynTrace>`) across every timing
//!   cell of a sweep, optionally persisted to disk (see `persist`);
//! * [`ReplayConsumer`] — the consume half: an
//!   [`OooTimingModel`] + statically dispatched predictor pair that
//!   drains chunks through the same cycle-accounting core as the live
//!   engines ([`OooTimingModel::consume_core`]). The predictor runs
//!   *ahead* of the timing drain: each chunk's predictor-visible
//!   branches are gathered into one request batch and handed to
//!   [`BranchPredictor::predict_update_batch`] through
//!   [`PredictorDispatch::visit_batch`] — one dispatch per chunk, and
//!   the predictor (TAGE-SC-L in particular) free to software-pipeline
//!   its own table walks across the whole batch — after which the
//!   timing loop replays the precomputed predictions through a
//!   position-only feed.
//!
//! # Structure-of-arrays chunk layout
//!
//! A chunk stores its records as parallel `pc` / `istall` / `dlat`
//! streams plus a **run-length index over non-branch runs**: the
//! branch-event byte is zero for the large majority of dynamic
//! instructions (~80% on the paper workloads), so instead of an
//! interleaved 8-byte [`ReplayRec`] per record — whose branch byte every
//! consumer re-tests — the chunk stores one length per non-branch run
//! and a dense stream of the (non-zero) branch bytes. A consumer never
//! scans for branches at all: [`walk_chunk`] iterates whole non-branch
//! spans through a branch-free specialization of the cycle-accounting
//! core (the `branch: None` match arm constant-folds away) and decodes
//! exactly one branch event per run. The AoS [`ReplayRec`] view remains
//! available through [`TraceChunk::push`] / [`TraceChunk::records`] and
//! round-trips byte-identically (property-tested).
//!
//! Replay modes on top (see `sim.rs`, behind the `Simulation` entry
//! point): `EngineKind::Replay` re-times a materialized [`DynTrace`];
//! the convoy engines drain each chunk through *k* consumers in one
//! **fused** loop that decodes every record once and advances all `k`
//! timing models in lockstep. Every consumer batch-predicts the chunk
//! up front (consumers may filter probabilistic branches differently,
//! so each gathers its own request stream), which leaves the drain
//! itself predictor-free: the `k = 1` and `k = 2` loops monomorphize
//! over prediction feeds, and arbitrary `k` pays only a feed-array
//! walk per record instead of `k` predictor dispatches per branch.
//!
//! Replay is byte-identical to the fused engine — `SimReport` equality
//! including `branch_trace`, `prob_consumed` and the error paths — which
//! `tests/engine_equivalence.rs` and the capture-then-replay property
//! test lock in.

use std::sync::Arc;

use probranch_core::{PbsConfig, PbsStats, PbsUnit};
use probranch_isa::{ExecClass, Program};
use probranch_mmap::Mmap;
use probranch_predictor::{BranchPredictor, BranchReq, PredictorDispatch};

use probranch_faults as faults;

use crate::aot::{BlockProgram, CaptureTier};
use crate::cache::MemoryHierarchy;
use crate::decode::InstTiming;
use crate::machine::{BranchEvent, BranchEventKind, EmuConfig, EmuError, Emulator, StepRecord};
use crate::ooo::OooTimingModel;
use crate::sim::{SimConfig, SimReport};

/// Records per [`TraceChunk`]: 64 Ki records — small enough to stay
/// cache-resident while a convoy streams it through several consumers
/// (and the bounded-memory figure for streaming convoys), large enough
/// to amortize the per-chunk bookkeeping and consumer switches. In the
/// SoA layout a full chunk is 6 bytes of stream data per record
/// (384 KiB) plus the run index.
pub const TRACE_CHUNK_RECORDS: usize = 1 << 16;

/// One dynamic instruction of a captured trace, as an 8-byte
/// array-of-structs value.
///
/// This is the *record view* of the trace: [`TraceChunk`] stores the
/// same fields as parallel streams (see the module docs) and converts
/// losslessly to and from this form ([`TraceChunk::push`] /
/// [`TraceChunk::records`]). A timing-only pass needs less than the
/// 16-byte live [`StepRecord`](crate::StepRecord): the data address is replaced by its
/// pre-simulated cache latency, and the branch event fits one byte.
///
/// The two latency fields are exact pre-simulations of the timing
/// model's `MemoryHierarchy::default()`: the hierarchy is deterministic
/// given the interleaved access stream (instruction fetch, then the
/// data access for loads, in program order), and that stream is fixed
/// by the trace — so capture resolves the cache model once and replay
/// consumers read two bytes instead of re-simulating three LRU caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayRec {
    /// PC of the instruction.
    pub pc: u32,
    /// Packed branch event; see [`ReplayRec::branch`].
    branch: u8,
    /// Extra front-end stall cycles of the instruction fetch (0 on an
    /// L1-I hit).
    pub istall: u8,
    /// Load-to-use latency for loads; 0 for every other class.
    pub dlat: u8,
}

const BR_PRESENT: u8 = 1 << 0;
const BR_TAKEN: u8 = 1 << 1;
const BR_PROB: u8 = 1 << 2;
const BR_KIND_SHIFT: u32 = 3;

/// Packs a branch resolution into the trace's one-byte encoding (0 for
/// a non-branch record).
#[inline]
pub(crate) fn encode_branch(branch: Option<BranchEvent>) -> u8 {
    match branch {
        None => 0,
        Some(ev) => {
            let kind = match ev.kind {
                BranchEventKind::Conditional => 0u8,
                BranchEventKind::PbsDirected => 1,
                BranchEventKind::Unconditional => 2,
                BranchEventKind::Call => 3,
                BranchEventKind::Ret => 4,
            };
            BR_PRESENT
                | (BR_TAKEN * ev.taken as u8)
                | (BR_PROB * ev.is_prob as u8)
                | (kind << BR_KIND_SHIFT)
        }
    }
}

/// Decodes a (non-zero) packed branch byte, exactly as the live
/// [`StepRecord`](crate::StepRecord) carried it.
#[inline(always)]
fn decode_branch(byte: u8) -> BranchEvent {
    debug_assert!(byte & BR_PRESENT != 0);
    let kind = match byte >> BR_KIND_SHIFT {
        0 => BranchEventKind::Conditional,
        1 => BranchEventKind::PbsDirected,
        2 => BranchEventKind::Unconditional,
        3 => BranchEventKind::Call,
        _ => BranchEventKind::Ret,
    };
    BranchEvent {
        taken: byte & BR_TAKEN != 0,
        kind,
        is_prob: byte & BR_PROB != 0,
    }
}

impl ReplayRec {
    /// A record from its parts (test and property-check constructor;
    /// capture packs directly into the SoA streams).
    pub fn new(pc: u32, branch: Option<BranchEvent>, istall: u8, dlat: u8) -> ReplayRec {
        ReplayRec {
            pc,
            branch: encode_branch(branch),
            istall,
            dlat,
        }
    }

    /// The branch resolution, exactly as the live [`StepRecord`](crate::StepRecord)
    /// carried it.
    #[inline(always)]
    pub fn branch(&self) -> Option<BranchEvent> {
        if self.branch & BR_PRESENT == 0 {
            None
        } else {
            Some(decode_branch(self.branch))
        }
    }
}

// ---- stream backing -------------------------------------------------------

/// A borrowed byte region of a persisted trace file's read-only memory
/// map. Every stream of every chunk loaded from one file shares the one
/// `Arc`'d map; the view adds only a range.
#[derive(Clone)]
pub(crate) struct ByteView {
    map: Arc<Mmap>,
    start: usize,
    len: usize,
}

impl ByteView {
    /// A view of `map[start..start + len]`.
    pub(crate) fn new(map: Arc<Mmap>, start: usize, len: usize) -> ByteView {
        debug_assert!(start.checked_add(len).is_some_and(|end| end <= map.len()));
        ByteView { map, start, len }
    }

    #[inline(always)]
    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.map.as_slice()[self.start..self.start + self.len]
    }
}

impl std::fmt::Debug for ByteView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteView")
            .field("start", &self.start)
            .field("len", &self.len)
            .finish()
    }
}

/// A chunk's `u8` stream: owned by capture, or a zero-copy view over a
/// mapped trace file. Consumers read either backing as one `&[u8]`.
#[derive(Debug, Clone)]
pub(crate) enum U8s {
    /// Capture-side buffer.
    Owned(Vec<u8>),
    /// Borrowed bytes of a mapped file (persistence load path).
    Mapped(ByteView),
}

impl U8s {
    #[inline(always)]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            U8s::Owned(v) => v,
            U8s::Mapped(b) => b.as_slice(),
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// The owned buffer — capture-side mutation only. Mapped streams
    /// are immutable by construction; reaching this on one is a bug.
    fn owned_mut(&mut self) -> &mut Vec<u8> {
        match self {
            U8s::Owned(v) => v,
            U8s::Mapped(_) => unreachable!("mapped chunk streams are immutable"),
        }
    }

    /// Empties the stream; a mapped backing reverts to an owned one.
    fn clear(&mut self) {
        match self {
            U8s::Owned(v) => v.clear(),
            m => *m = U8s::default(),
        }
    }

    fn shrink_to_fit(&mut self) {
        if let U8s::Owned(v) = self {
            v.shrink_to_fit();
        }
    }

    /// Heap bytes held — 0 for a mapped view: the pages behind it are
    /// the OS page cache's to keep or reclaim, not pool-owned memory.
    fn heap_bytes(&self) -> usize {
        match self {
            U8s::Owned(v) => v.capacity(),
            U8s::Mapped(_) => 0,
        }
    }
}

impl Default for U8s {
    fn default() -> U8s {
        U8s::Owned(Vec::new())
    }
}

impl PartialEq for U8s {
    fn eq(&self, other: &U8s) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A chunk's `u32` stream: owned by capture, or little-endian bytes
/// over a mapped trace file, decoded on read (one unaligned LE load —
/// free on the targets this runs on, and alignment-independent, so the
/// on-disk layout needs no padding).
#[derive(Debug, Clone)]
pub(crate) enum U32s {
    /// Capture-side buffer.
    Owned(Vec<u32>),
    /// Borrowed little-endian bytes of a mapped file; byte length is a
    /// multiple of 4.
    Mapped(ByteView),
}

impl U32s {
    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        match self {
            U32s::Owned(v) => v.len(),
            U32s::Mapped(b) => b.len / 4,
        }
    }

    #[inline(always)]
    pub(crate) fn get(&self, i: usize) -> u32 {
        match self {
            U32s::Owned(v) => v[i],
            U32s::Mapped(b) => LeU32s(b.as_slice()).get(i),
        }
    }

    /// The values in order, decoding mapped bytes on the fly. Cold
    /// paths only — the chunk walk monomorphizes over [`U32Slice`]
    /// instead of paying a backing match per element.
    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The owned buffer — capture-side mutation only (see
    /// [`U8s::owned_mut`]).
    fn owned_mut(&mut self) -> &mut Vec<u32> {
        match self {
            U32s::Owned(v) => v,
            U32s::Mapped(_) => unreachable!("mapped chunk streams are immutable"),
        }
    }

    /// Empties the stream; a mapped backing reverts to an owned one.
    fn clear(&mut self) {
        match self {
            U32s::Owned(v) => v.clear(),
            m => *m = U32s::default(),
        }
    }

    fn shrink_to_fit(&mut self) {
        if let U32s::Owned(v) = self {
            v.shrink_to_fit();
        }
    }

    /// Heap bytes held — 0 for a mapped view (see [`U8s::heap_bytes`]).
    fn heap_bytes(&self) -> usize {
        match self {
            U32s::Owned(v) => v.capacity() * 4,
            U32s::Mapped(_) => 0,
        }
    }
}

impl Default for U32s {
    fn default() -> U32s {
        U32s::Owned(Vec::new())
    }
}

impl PartialEq for U32s {
    fn eq(&self, other: &U32s) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// A borrowed random-access u32 stream for the chunk walk: a native
/// slice (owned chunks) or little-endian bytes (mapped chunks). The
/// walk monomorphizes over this, so neither backing pays a per-record
/// dispatch — the mapped path costs exactly one unaligned LE load per
/// element.
trait U32Slice: Copy {
    /// Element `i`.
    fn get(self, i: usize) -> u32;
    /// The elements of `start..end`, in order.
    fn iter_range(self, start: usize, end: usize) -> impl Iterator<Item = u32>;
}

impl U32Slice for &[u32] {
    #[inline(always)]
    fn get(self, i: usize) -> u32 {
        self[i]
    }

    #[inline(always)]
    fn iter_range(self, start: usize, end: usize) -> impl Iterator<Item = u32> {
        self[start..end].iter().copied()
    }
}

/// Little-endian u32 elements over raw mapped bytes.
#[derive(Clone, Copy)]
struct LeU32s<'a>(&'a [u8]);

impl U32Slice for LeU32s<'_> {
    #[inline(always)]
    fn get(self, i: usize) -> u32 {
        u32::from_le_bytes(self.0[4 * i..4 * i + 4].try_into().expect("4-byte element"))
    }

    #[inline(always)]
    fn iter_range(self, start: usize, end: usize) -> impl Iterator<Item = u32> {
        self.0[4 * start..4 * end]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte element")))
    }
}

/// One chunk of a dynamic trace in structure-of-arrays form: parallel
/// per-record streams plus a run-length index over non-branch runs (see
/// the module docs).
///
/// Each stream is either **owned** (capture) or a **zero-copy view**
/// over a persisted file's read-only memory map (a v2 warm-start load,
/// see `persist`). Consumers never care which: the chunk walk
/// monomorphizes over the backing and every engine produces
/// byte-identical reports either way. Equality is logical — an owned
/// chunk and its mapped round-trip compare equal.
#[derive(Debug, Clone, Default)]
pub struct TraceChunk {
    /// PC per record, in program order.
    pub(crate) pcs: U32s,
    /// Fetch-stall cycles per record.
    pub(crate) istalls: U8s,
    /// Load-to-use latency per record (0 for non-loads).
    pub(crate) dlats: U8s,
    /// The packed branch byte of every *branch* record, in order —
    /// the zero bytes of non-branch records are elided.
    pub(crate) branches: U8s,
    /// Non-branch run length preceding each entry of `branches`.
    pub(crate) runs: U32s,
    /// Length of the still-open trailing non-branch run (a chunk that
    /// ends on a branch record leaves this 0).
    pub(crate) open_run: u32,
    /// Derived stream: the chunk's *conditional* branches as ready-made
    /// predictor requests, in program order. Built during capture (and
    /// rebuilt after a persistence load), so replay consumers hand it to
    /// [`BranchPredictor::predict_update_batch`] without re-walking the
    /// run index — the unfiltered batch is a borrow, not a copy.
    pub(crate) breqs: Vec<BranchReq>,
    /// Parallel to `breqs`: whether the request's branch was
    /// probabilistic (the Figure 9 filter mode drops those requests).
    pub(crate) breq_prob: Vec<bool>,
}

impl TraceChunk {
    /// An empty chunk with stream capacity for [`TRACE_CHUNK_RECORDS`]
    /// — allocate once, refill per [`TraceStream::fill`] call.
    pub fn with_chunk_capacity() -> TraceChunk {
        TraceChunk {
            pcs: U32s::Owned(Vec::with_capacity(TRACE_CHUNK_RECORDS)),
            istalls: U8s::Owned(Vec::with_capacity(TRACE_CHUNK_RECORDS)),
            dlats: U8s::Owned(Vec::with_capacity(TRACE_CHUNK_RECORDS)),
            // Branch density is workload-dependent; these grow on
            // demand and stabilize after the first refill.
            branches: U8s::default(),
            runs: U32s::default(),
            open_run: 0,
            breqs: Vec::new(),
            breq_prob: Vec::new(),
        }
    }

    /// A chunk directly from its raw streams — the persistence load
    /// path, where the streams may be zero-copy views over the file
    /// map. The derived request stream is *not* built; the caller runs
    /// [`rebuild_breqs`](TraceChunk::rebuild_breqs) after validation.
    pub(crate) fn from_raw_streams(
        pcs: U32s,
        istalls: U8s,
        dlats: U8s,
        branches: U8s,
        runs: U32s,
        open_run: u32,
    ) -> TraceChunk {
        TraceChunk {
            pcs,
            istalls,
            dlats,
            branches,
            runs,
            open_run,
            breqs: Vec::new(),
            breq_prob: Vec::new(),
        }
    }

    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.pcs.len() == 0
    }

    /// Whether the chunk's record streams are zero-copy views over a
    /// mapped trace file rather than owned buffers.
    pub fn is_mapped(&self) -> bool {
        matches!(self.pcs, U32s::Mapped(_))
    }

    /// Number of branch records in the chunk.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Removes all records, keeping the stream allocations.
    pub fn clear(&mut self) {
        self.pcs.clear();
        self.istalls.clear();
        self.dlats.clear();
        self.branches.clear();
        self.runs.clear();
        self.open_run = 0;
        self.breqs.clear();
        self.breq_prob.clear();
    }

    /// Appends one record in its raw stream form.
    #[inline(always)]
    pub(crate) fn push_raw(&mut self, pc: u32, branch_byte: u8, istall: u8, dlat: u8) {
        self.pcs.owned_mut().push(pc);
        self.istalls.owned_mut().push(istall);
        self.dlats.owned_mut().push(dlat);
        if branch_byte != 0 {
            self.runs.owned_mut().push(self.open_run);
            self.branches.owned_mut().push(branch_byte);
            self.open_run = 0;
            // A conditional branch has kind bits 0: only the present/
            // taken/prob flags may be set.
            if branch_byte & !(BR_TAKEN | BR_PROB) == BR_PRESENT {
                self.breqs
                    .push(BranchReq::new(pc as u64, branch_byte & BR_TAKEN != 0));
                self.breq_prob.push(branch_byte & BR_PROB != 0);
            }
        } else {
            self.open_run += 1;
        }
    }

    /// Returns a cursor writer over zero-filled record streams that
    /// grow lazily toward `budget` slots — the block engine's emission
    /// path. Per-record work becomes plain indexed stores behind one
    /// watermark check, the zero istalls/dlats of each bulk span come
    /// from the growth `memset` for free, and a capture that stops
    /// well short of the budget (short program, tail chunk) never
    /// touches — or faults in — the unused pages a full upfront
    /// pre-size would. The caller trims the streams back to the
    /// records actually written with [`end_fill`](TraceChunk::end_fill).
    pub(crate) fn begin_fill(&mut self, budget: usize) -> ChunkWriter<'_> {
        debug_assert!(self.is_empty() && self.open_run == 0);
        ChunkWriter {
            pcs: self.pcs.owned_mut(),
            istalls: self.istalls.owned_mut(),
            dlats: self.dlats.owned_mut(),
            branches: self.branches.owned_mut(),
            runs: self.runs.owned_mut(),
            breqs: &mut self.breqs,
            breq_prob: &mut self.breq_prob,
            cur: 0,
            open_run: 0,
            sized: 0,
            budget,
        }
    }

    /// Closes a [`begin_fill`](TraceChunk::begin_fill) session: trims
    /// the record streams to the `written` records and installs the
    /// writer's trailing open-run length.
    pub(crate) fn end_fill(&mut self, written: usize, open_run: u32) {
        self.pcs.owned_mut().truncate(written);
        self.istalls.owned_mut().truncate(written);
        self.dlats.owned_mut().truncate(written);
        self.open_run = open_run;
    }

    /// Appends one record from its AoS view.
    pub fn push(&mut self, rec: ReplayRec) {
        self.push_raw(rec.pc, rec.branch, rec.istall, rec.dlat);
    }

    /// The records in program order, reassembled into their AoS view —
    /// the inverse of repeated [`push`](TraceChunk::push) calls, used by
    /// the pack/unpack round-trip tests (hot consumers drain the SoA
    /// streams directly through [`walk_chunk`]).
    pub fn records(&self) -> impl Iterator<Item = ReplayRec> + '_ {
        let run_at = |i: usize| {
            if i < self.runs.len() {
                self.runs.get(i)
            } else {
                self.open_run
            }
        };
        let branches = self.branches.as_slice();
        let istalls = self.istalls.as_slice();
        let dlats = self.dlats.as_slice();
        let mut next_branch = 0usize;
        let mut left_in_run = run_at(0);
        (0..self.pcs.len()).map(move |i| {
            let branch = if left_in_run > 0 {
                left_in_run -= 1;
                0u8
            } else {
                let b = branches[next_branch];
                next_branch += 1;
                left_in_run = run_at(next_branch);
                b
            };
            ReplayRec {
                pc: self.pcs.get(i),
                branch,
                istall: istalls[i],
                dlat: dlats[i],
            }
        })
    }

    /// Drops the slack capacity of every stream (final chunk of a
    /// materialized trace).
    fn shrink_to_fit(&mut self) {
        self.pcs.shrink_to_fit();
        self.istalls.shrink_to_fit();
        self.dlats.shrink_to_fit();
        self.branches.shrink_to_fit();
        self.runs.shrink_to_fit();
        self.breqs.shrink_to_fit();
        self.breq_prob.shrink_to_fit();
    }

    /// Rebuilds the derived request stream from the raw streams — for
    /// chunks reassembled from a persisted trace, whose serialized form
    /// carries only the raw streams.
    pub(crate) fn rebuild_breqs(&mut self) {
        let TraceChunk {
            pcs,
            runs,
            branches,
            breqs,
            breq_prob,
            ..
        } = self;
        breqs.clear();
        breq_prob.clear();
        let mut idx = 0usize;
        for (run, &byte) in runs.iter().zip(branches.as_slice()) {
            idx += run as usize;
            if byte & !(BR_TAKEN | BR_PROB) == BR_PRESENT {
                breqs.push(BranchReq::new(pcs.get(idx) as u64, byte & BR_TAKEN != 0));
                breq_prob.push(byte & BR_PROB != 0);
            }
            idx += 1;
        }
    }

    /// Heap bytes held by the chunk's stream buffers (capacity, not
    /// length — the number that matters for peak-memory accounting).
    /// Mapped streams count 0: their pages belong to the OS page cache,
    /// not the trace pool's budget.
    pub fn bytes(&self) -> usize {
        self.pcs.heap_bytes()
            + self.istalls.heap_bytes()
            + self.dlats.heap_bytes()
            + self.branches.heap_bytes()
            + self.runs.heap_bytes()
            + self.breqs.capacity() * std::mem::size_of::<BranchReq>()
            + self.breq_prob.capacity()
    }
}

/// A cursor over a [`TraceChunk`]'s zero-filled record streams (see
/// [`TraceChunk::begin_fill`]). Every emission is a plain indexed
/// store at the cursor behind a watermark check — the streams grow by
/// doubling toward `budget` rather than pre-sizing upfront, so short
/// captures only pay for the pages they actually fill. The
/// branch-side streams stay push-based (they are an order of
/// magnitude sparser than the record streams).
pub(crate) struct ChunkWriter<'a> {
    pcs: &'a mut Vec<u32>,
    istalls: &'a mut Vec<u8>,
    dlats: &'a mut Vec<u8>,
    branches: &'a mut Vec<u8>,
    runs: &'a mut Vec<u32>,
    breqs: &'a mut Vec<BranchReq>,
    breq_prob: &'a mut Vec<bool>,
    cur: usize,
    open_run: u32,
    /// Zero-filled length of the record streams; indexed stores are
    /// valid below it.
    sized: usize,
    /// Chunk record budget — the growth ceiling (callers never emit
    /// past it).
    budget: usize,
}

impl ChunkWriter<'_> {
    /// Records written so far.
    #[inline(always)]
    pub(crate) fn written(&self) -> u64 {
        self.cur as u64
    }

    /// Raises the zero-filled watermark to cover `need` records.
    #[cold]
    fn grow(&mut self, need: usize) {
        let new = self.budget.min((self.sized * 2).max(4096)).max(need);
        self.pcs.resize(new, 0);
        self.istalls.resize(new, 0);
        self.dlats.resize(new, 0);
        self.sized = new;
    }

    /// Bulk-appends `n` straight-line records at consecutive pcs
    /// `start..start + n` — the block engine's warm fast path. No
    /// branch bytes (a block body is branch-free by construction), and
    /// the zero istalls/dlats are already in place from the zero-fill
    /// growth: only the pcs and the load-latency patches are written.
    #[inline(always)]
    pub(crate) fn emit_straight(&mut self, start: u32, n: u32, dlat_patch: &[(u32, u8)]) {
        let base = self.cur;
        if base + n as usize > self.sized {
            self.grow(base + n as usize);
        }
        for i in 0..n as usize {
            self.pcs[base + i] = start + i as u32;
        }
        for &(i, d) in dlat_patch {
            self.dlats[base + i as usize] = d;
        }
        self.open_run += n;
        self.cur = base + n as usize;
    }

    /// Appends one record in its raw stream form —
    /// [`TraceChunk::push_raw`] in cursor form, byte for byte.
    #[inline(always)]
    pub(crate) fn emit_record(&mut self, pc: u32, branch_byte: u8, istall: u8, dlat: u8) {
        if self.cur == self.sized {
            self.grow(self.cur + 1);
        }
        self.pcs[self.cur] = pc;
        self.istalls[self.cur] = istall;
        self.dlats[self.cur] = dlat;
        self.cur += 1;
        if branch_byte != 0 {
            self.runs.push(self.open_run);
            self.branches.push(branch_byte);
            self.open_run = 0;
            // A conditional branch has kind bits 0: only the present/
            // taken/prob flags may be set.
            if branch_byte & !(BR_TAKEN | BR_PROB) == BR_PRESENT {
                self.breqs
                    .push(BranchReq::new(pc as u64, branch_byte & BR_TAKEN != 0));
                self.breq_prob.push(branch_byte & BR_PROB != 0);
            }
        } else {
            self.open_run += 1;
        }
    }

    /// Ends the session, returning `(written, open_run)` for
    /// [`TraceChunk::end_fill`].
    pub(crate) fn finish(self) -> (usize, u32) {
        (self.cur, self.open_run)
    }
}

impl PartialEq for TraceChunk {
    /// Logical equality over the *raw* streams — backing-agnostic (an
    /// owned chunk equals its mapped round-trip), and the derived
    /// `breqs`/`breq_prob` are excluded because the raw streams
    /// determine them.
    fn eq(&self, other: &TraceChunk) -> bool {
        self.open_run == other.open_run
            && self.pcs == other.pcs
            && self.istalls == other.istalls
            && self.dlats == other.dlats
            && self.branches == other.branches
            && self.runs == other.runs
    }
}

/// A per-record visitor for [`walk_chunk`]: `plain` sees every
/// non-branch record, `branch` every branch record with its event
/// decoded exactly once. Both receive the record's stream values
/// directly — the walk owns all stream indexing, so visitors do no
/// bounds-checked loads of their own.
pub(crate) trait ChunkVisitor {
    /// One non-branch record.
    fn plain(&mut self, pc: u32, istall: u8, dlat: u8);
    /// One branch record.
    fn branch(&mut self, pc: u32, istall: u8, dlat: u8, ev: BranchEvent);
}

/// Drives `v` over every record of `chunk` in program order, iterating
/// whole non-branch runs through `plain` — the branch test runs once
/// per *run*, not once per record, and inside a run the `branch: None`
/// arm of the cycle-accounting core constant-folds away. Each span is
/// walked as three zipped per-record streams, so the per-record loads
/// carry no per-record bounds checks.
///
/// The walk monomorphizes over the chunk's u32 backing ([`U32Slice`]):
/// the owned arm is the pre-mmap slice walk unchanged, and the mapped
/// arm decodes each little-endian element in place of a slice load —
/// one specialization per (pcs, runs) backing pair, resolved once per
/// chunk.
#[inline(always)]
pub(crate) fn walk_chunk<V: ChunkVisitor>(chunk: &TraceChunk, v: &mut V) {
    let istalls = chunk.istalls.as_slice();
    let dlats = chunk.dlats.as_slice();
    let branches = chunk.branches.as_slice();
    match (&chunk.pcs, &chunk.runs) {
        (U32s::Owned(pcs), U32s::Owned(runs)) => walk_streams(
            pcs.as_slice(),
            runs.as_slice(),
            istalls,
            dlats,
            branches,
            chunk.open_run,
            v,
        ),
        (U32s::Owned(pcs), U32s::Mapped(runs)) => walk_streams(
            pcs.as_slice(),
            LeU32s(runs.as_slice()),
            istalls,
            dlats,
            branches,
            chunk.open_run,
            v,
        ),
        (U32s::Mapped(pcs), U32s::Owned(runs)) => walk_streams(
            LeU32s(pcs.as_slice()),
            runs.as_slice(),
            istalls,
            dlats,
            branches,
            chunk.open_run,
            v,
        ),
        (U32s::Mapped(pcs), U32s::Mapped(runs)) => walk_streams(
            LeU32s(pcs.as_slice()),
            LeU32s(runs.as_slice()),
            istalls,
            dlats,
            branches,
            chunk.open_run,
            v,
        ),
    }
}

/// The backing-generic body of [`walk_chunk`].
#[inline(always)]
fn walk_streams<P: U32Slice, R: U32Slice, V: ChunkVisitor>(
    pcs: P,
    runs: R,
    istalls: &[u8],
    dlats: &[u8],
    branches: &[u8],
    open_run: u32,
    v: &mut V,
) {
    #[inline(always)]
    fn span<P: U32Slice, V: ChunkVisitor>(
        pcs: P,
        istalls: &[u8],
        dlats: &[u8],
        start: usize,
        len: usize,
        v: &mut V,
    ) {
        let end = start + len;
        for ((pc, &istall), &dlat) in pcs
            .iter_range(start, end)
            .zip(&istalls[start..end])
            .zip(&dlats[start..end])
        {
            v.plain(pc, istall, dlat);
        }
    }
    let mut idx = 0usize;
    for (i, &byte) in branches.iter().enumerate() {
        let run = runs.get(i) as usize;
        span(pcs, istalls, dlats, idx, run, v);
        idx += run;
        v.branch(pcs.get(idx), istalls[idx], dlats[idx], decode_branch(byte));
        idx += 1;
    }
    span(pcs, istalls, dlats, idx, open_run as usize, v);
}

/// The architectural results of a captured run — everything a
/// [`SimReport`] carries that the timing model does not produce.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFunctional {
    /// Committed dynamic instructions (== total trace records).
    pub instructions: u64,
    /// Program outputs, ascending by port.
    pub outputs: Vec<(u16, Vec<u64>)>,
    /// Probabilistic values in consumption order.
    pub prob_consumed: Vec<u64>,
    /// PBS event counters, when PBS was enabled.
    pub pbs: Option<PbsStats>,
}

/// Pre-simulates and packs one interpreter record — the shared
/// per-record path of every capture tier: the interpreter fill loop,
/// the block engine's fallback single-steps and its block terminators
/// all go through here, so the hierarchy evolution and the packed
/// bytes cannot drift between tiers.
///
/// The L1-I-resident fast path: once a line has been fetched it can
/// never leave the L1-I (see [`TraceStream::itouched`]), so only the
/// first touch walks the hierarchy (and inserts into the shared L2,
/// exactly as the full simulation would).
#[inline(always)]
pub(crate) fn pack_record(
    presim: &mut MemoryHierarchy,
    timings: &[InstTiming],
    itouched: &mut [bool],
    pcs_per_line: usize,
    chunk: &mut TraceChunk,
    rec: StepRecord,
) {
    let (istall, dlat) = record_costs(presim, timings, itouched, pcs_per_line, &rec);
    chunk.push_raw(rec.pc, encode_branch(rec.branch), istall, dlat);
}

/// The latency half of [`pack_record`] — evolves the pre-simulated
/// hierarchy and returns the record's `(istall, dlat)` bytes. Shared
/// with the block engine's cursor writer, which packs the record
/// itself.
#[inline(always)]
pub(crate) fn record_costs(
    presim: &mut MemoryHierarchy,
    timings: &[InstTiming],
    itouched: &mut [bool],
    pcs_per_line: usize,
    rec: &StepRecord,
) -> (u8, u8) {
    let istall = if !itouched.is_empty() {
        let line = rec.pc as usize / pcs_per_line;
        if itouched[line] {
            0
        } else {
            itouched[line] = true;
            presim.inst_access(rec.pc as u64 * 8)
        }
    } else {
        presim.inst_access(rec.pc as u64 * 8)
    };
    let dlat = if timings[rec.pc as usize].class == ExecClass::Load.index() as u8 {
        let addr = rec.mem_addr().expect("loads carry an address");
        presim.data_access(addr)
    } else {
        0
    };
    debug_assert!(istall <= u8::MAX as u64 && dlat <= u8::MAX as u64);
    (istall as u8, dlat as u8)
}

/// The capture half of the fused engine, split out as a chunk stream.
///
/// Drive it with [`fill`](TraceStream::fill) until it reports the
/// machine halted, then take the architectural results with
/// [`finish`](TraceStream::finish). Only the emulation-key fields of the
/// passed [`SimConfig`] matter (`pbs`, `emu`, `max_insts`); predictor,
/// core and filter settings are timing-side and ignored.
#[derive(Debug)]
pub struct TraceStream {
    pub(crate) emu: Emulator,
    /// The pre-simulated hierarchy. Must evolve exactly as the timing
    /// model's own `MemoryHierarchy::default()` would: instruction
    /// fetch, then the data access for loads, per record in order.
    pub(crate) presim: MemoryHierarchy,
    pub(crate) timings: Box<[InstTiming]>,
    /// Per-instruction-cache-line first-touch flags, when the program is
    /// small enough that the L1-I provably never evicts a program line
    /// (≤ its 512-line capacity, consecutive line indices → at most
    /// `ways` lines per set). In that regime an instruction fetch
    /// touches the rest of the hierarchy only on the line's first
    /// access, so the full cache walk runs once per line and every
    /// later fetch is a known `istall = 0` — byte-identical to the full
    /// pre-simulation, measurably cheaper on the per-record hot path.
    /// Empty for larger programs (full pre-simulation per fetch).
    pub(crate) itouched: Box<[bool]>,
    /// Consecutive pcs per L1-I line (`line_bytes / 8`-byte
    /// instructions) — the divisor `itouched` was sized with.
    pub(crate) pcs_per_line: usize,
    /// The block-compiled form of the program (see `crate::aot`), when
    /// the selected capture tier, the `capture.block` failpoint and the
    /// L1-I-residency precondition all allow block execution. `None`
    /// runs the per-instruction decoded interpreter.
    pub(crate) blocks: Option<BlockProgram>,
    /// Per-block warmth verdicts, parallel to `blocks`' block indices.
    /// Warmth is monotonic — `itouched` lines are only ever set — so a
    /// block found warm stays warm and the dispatch loop skips the
    /// per-execution line scan.
    pub(crate) warm_blocks: Box<[bool]>,
    /// Scratch for the block executor: `(body index, latency)` of the
    /// loads in the currently executing block body.
    pub(crate) dlat_scratch: Vec<(u32, u8)>,
    pub(crate) executed: u64,
    pub(crate) max_insts: u64,
    pub(crate) halted: bool,
}

impl TraceStream {
    /// Starts capturing `program` under `config`'s emulation key.
    pub fn new(program: &Program, config: &SimConfig) -> TraceStream {
        let emu = match &config.pbs {
            Some(pbs_cfg) => Emulator::with_pbs(
                program.clone(),
                config.emu.clone(),
                PbsUnit::new(pbs_cfg.clone()),
            ),
            None => Emulator::new(program.clone(), config.emu.clone()),
        };
        let timings: Box<[InstTiming]> = emu.decoded().insts().iter().map(|d| d.timing).collect();
        let presim = MemoryHierarchy::default();
        // Instructions are 8 bytes in the timing model's address space,
        // so one cache line covers `line_bytes / 8` consecutive pcs.
        let pcs_per_line = (presim.l1i().line_bytes() / 8).max(1);
        let line_count = timings.len().div_ceil(pcs_per_line);
        let itouched = if line_count <= presim.l1i().capacity_lines() {
            vec![false; line_count].into_boxed_slice()
        } else {
            Box::default()
        };
        // Block-compiled capture (see `crate::aot`): the warm fast path
        // relies on the L1-I-residency argument above, so programs too
        // large for `itouched` stay on the interpreter. The
        // `capture.block` failpoint degrades block capture to the
        // interpreter silently — torture runs prove the fallback is
        // byte-invisible.
        let blocks = if itouched.is_empty() {
            None
        } else {
            match crate::aot::selected_tier() {
                CaptureTier::Interp => None,
                tier => {
                    let salt = [timings.len() as u64, config.max_insts];
                    if faults::injected(faults::Site::CaptureBlock, &salt) {
                        None
                    } else {
                        let compiled =
                            BlockProgram::compile(emu.decoded(), tier == CaptureTier::Generated);
                        (compiled.compiled_blocks() > 0).then_some(compiled)
                    }
                }
            }
        };
        let warm_blocks = blocks.as_ref().map_or_else(Box::default, |b| {
            vec![false; b.compiled_blocks()].into_boxed_slice()
        });
        TraceStream {
            emu,
            presim,
            timings,
            itouched,
            pcs_per_line,
            blocks,
            warm_blocks,
            dlat_scratch: Vec::new(),
            executed: 0,
            max_insts: config.max_insts,
            halted: false,
        }
    }

    /// The per-pc timing metadata replay consumers index by
    /// [`StepRecord::pc`](crate::StepRecord::pc) — the only part of the decoded program a
    /// timing-only pass needs.
    pub fn timings(&self) -> &[InstTiming] {
        &self.timings
    }

    /// Refills `chunk` with the next run of records (clearing it first)
    /// and pre-simulates their latencies. Returns `false` — with `chunk`
    /// left empty — once the machine has halted.
    ///
    /// # Errors
    ///
    /// Propagates emulator faults, and returns
    /// [`EmuError::InstLimitExceeded`] at exactly the dynamic
    /// instruction where the fused engine would: when the dynamic
    /// instruction count reaches `max_insts` without a halt.
    pub fn fill(&mut self, chunk: &mut TraceChunk) -> Result<bool, EmuError> {
        if self.blocks.is_some() {
            return self.fill_block(chunk);
        }
        self.fill_interp(chunk)
    }

    /// The interpreter tier of [`fill`](TraceStream::fill): one
    /// [`Emulator::step_decoded`] call per record.
    pub(crate) fn fill_interp(&mut self, chunk: &mut TraceChunk) -> Result<bool, EmuError> {
        chunk.clear();
        if self.halted {
            return Ok(false);
        }
        // Cooperative cancellation: one poll per chunk bounds how much
        // work a cancelled capture or convoy performs after the fact
        // (a chunk is exactly the fused engine's 64 Ki poll stride).
        crate::cancel::check_current()?;
        // Cap the chunk at the remaining instruction budget so the limit
        // trips at exactly the same dynamic instruction as the fused
        // engine's batch loop.
        let budget = (self.max_insts - self.executed).clamp(1, TRACE_CHUNK_RECORDS as u64) as usize;
        let TraceStream {
            emu,
            presim,
            timings,
            itouched,
            pcs_per_line,
            ..
        } = self;
        let pcs_per_line = *pcs_per_line;
        // Emulate, pre-simulate and pack in one pass: each record is
        // handed straight from the interpreter to the chunk's SoA
        // streams, no intermediate record buffer.
        let n = emu.step_block_with(budget, |rec| {
            pack_record(presim, timings, itouched, pcs_per_line, chunk, rec);
        })?;
        if n == 0 {
            self.halted = true;
            return Ok(false);
        }
        self.executed += n as u64;
        if self.executed >= self.max_insts {
            self.halted = true;
            return Err(EmuError::InstLimitExceeded {
                limit: self.max_insts,
            });
        }
        Ok(true)
    }

    /// The architectural results, once [`fill`](TraceStream::fill) has
    /// reported the machine halted.
    pub fn finish(self) -> TraceFunctional {
        TraceFunctional {
            instructions: self.emu.executed(),
            outputs: self.emu.outputs_sorted(),
            prob_consumed: self.emu.prob_consumed().to_vec(),
            pbs: self.emu.pbs_stats(),
        }
    }
}

/// A materialized dynamic trace: one emulation key's full record stream
/// in SoA chunks, the per-pc timing metadata, the pre-simulated cache
/// latencies and the architectural results — everything `N` timing
/// models need to replay the run without re-emulating it.
#[derive(Debug, Clone, PartialEq)]
pub struct DynTrace {
    pub(crate) timings: Box<[InstTiming]>,
    pub(crate) chunks: Vec<TraceChunk>,
    pub(crate) functional: TraceFunctional,
    /// The emulation key the trace was captured under, re-checked at
    /// replay time.
    pub(crate) pbs: Option<PbsConfig>,
    pub(crate) emu: EmuConfig,
}

impl DynTrace {
    /// Captures the full trace of `program` under `config`'s emulation
    /// key (`pbs`, `emu`, `max_insts`).
    ///
    /// # Errors
    ///
    /// Exactly the errors a live [`Simulation`](crate::Simulation)
    /// run would return:
    /// emulator faults, or [`EmuError::InstLimitExceeded`] when the
    /// program does not halt within `config.max_insts` — a trace only
    /// exists for a run that completed.
    pub fn capture(program: &Program, config: &SimConfig) -> Result<DynTrace, EmuError> {
        let mut stream = TraceStream::new(program, config);
        let mut chunks = Vec::new();
        loop {
            let mut chunk = TraceChunk::with_chunk_capacity();
            if !stream.fill(&mut chunk)? {
                break;
            }
            chunks.push(chunk);
        }
        if let Some(last) = chunks.last_mut() {
            last.shrink_to_fit();
        }
        Ok(DynTrace {
            timings: stream.timings.clone(),
            functional: stream.finish(),
            chunks,
            pbs: config.pbs.clone(),
            emu: config.emu.clone(),
        })
    }

    /// Total dynamic instructions recorded.
    pub fn instructions(&self) -> u64 {
        self.functional.instructions
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunks, in program order.
    pub fn chunks(&self) -> &[TraceChunk] {
        &self.chunks
    }

    /// The per-pc timing metadata for replay consumers.
    pub fn timings(&self) -> &[InstTiming] {
        &self.timings
    }

    /// The architectural results of the captured run.
    pub fn functional(&self) -> &TraceFunctional {
        &self.functional
    }

    /// How many chunks are zero-copy views over a mapped trace file
    /// (all of them after a warm-start load, none after a capture).
    pub fn mapped_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_mapped()).count()
    }

    /// Heap bytes held by the trace (record streams, timing table
    /// and architectural results) — the peak-memory figure the
    /// throughput report surfaces per cell, and the number the trace
    /// pool's memory budget meters. Mapped record streams count 0
    /// (their pages are the OS page cache's, reclaimable at will), so
    /// demoting a trace to disk genuinely shrinks its pooled footprint
    /// to the timing table plus derived request streams.
    pub fn bytes(&self) -> usize {
        self.chunks.iter().map(TraceChunk::bytes).sum::<usize>()
            + self.timings.len() * std::mem::size_of::<InstTiming>()
            + self.functional.prob_consumed.capacity() * 8
            + self
                .functional
                .outputs
                .iter()
                .map(|(_, v)| v.capacity() * 8)
                .sum::<usize>()
    }

    /// Panics unless `config` shares the trace's emulation key — a
    /// replay under a different PBS or emulator configuration would
    /// silently time a different program run.
    pub fn check_compatible(&self, config: &SimConfig) {
        assert_eq!(
            self.pbs, config.pbs,
            "replay PBS config differs from the captured trace's"
        );
        assert_eq!(
            self.emu, config.emu,
            "replay emulator config differs from the captured trace's"
        );
    }
}

/// The consume half of the fused engine: one timing model and its
/// statically dispatched predictor, fed chunks of a captured trace.
///
/// Each chunk drains in two phases. First the consumer gathers the
/// chunk's predictor-visible branches into one request batch and runs
/// it through [`BranchPredictor::predict_update_batch`] via
/// [`PredictorDispatch::visit_batch`] — one dispatch per chunk, with
/// the predictor free to pipeline its own internal work across the
/// batch. Then the record walk replays the precomputed predictions
/// through a position-only feed into the unchanged cycle-accounting
/// core. This is a pure replay-side reordering: the predictor observes
/// exactly the serial request stream, so reports stay byte-identical
/// to the live engines.
#[derive(Debug)]
pub struct ReplayConsumer {
    timing: OooTimingModel,
    predictor: PredictorDispatch,
    filter_prob: bool,
    /// Per-chunk batch scratch: the chunk's predictor-visible requests…
    reqs: Vec<BranchReq>,
    /// …and their batch-computed predictions, replayed by the drain.
    preds: Vec<bool>,
}

/// The chunk's *predictor-visible* branch requests, in program order:
/// conditional branches, minus probabilistic ones when the Figure 9
/// filter diverts those to the PBS oracle — exactly the records for
/// which [`OooTimingModel::consume_core`] consults the predictor
/// (PBS-directed and unconditional control flow never touch it).
/// Unfiltered consumers borrow the chunk's pre-built request stream
/// outright; the filter mode copies the non-probabilistic subset into
/// `scratch`.
fn visible_reqs<'a>(
    chunk: &'a TraceChunk,
    filter_prob: bool,
    scratch: &'a mut Vec<BranchReq>,
) -> &'a [BranchReq] {
    if !filter_prob {
        return &chunk.breqs;
    }
    scratch.clear();
    scratch.extend(
        chunk
            .breqs
            .iter()
            .zip(&chunk.breq_prob)
            .filter(|&(_, &prob)| !prob)
            .map(|(&req, _)| req),
    );
    scratch
}

/// Replays a chunk's batch-precomputed predictions into the unchanged
/// cycle-accounting core. [`OooTimingModel::consume_core`] consults its
/// predictor through exactly one entry point — `predict_and_update`,
/// once per predictor-visible branch in program order — so a feed that
/// pops the next precomputed prediction is indistinguishable from the
/// live predictor the batch already ran.
struct PredFeed<'a> {
    preds: &'a [bool],
    next: usize,
}

impl<'a> PredFeed<'a> {
    fn new(preds: &'a [bool]) -> PredFeed<'a> {
        PredFeed { preds, next: 0 }
    }

    /// Whether the drain consumed every batched prediction — the
    /// request collection and the record walk agreeing on which records
    /// are predictor-visible.
    fn consumed_all(&self) -> bool {
        self.next == self.preds.len()
    }
}

impl BranchPredictor for PredFeed<'_> {
    fn predict(&mut self, _pc: u64) -> bool {
        unreachable!("replay drains consult the feed via predict_and_update only")
    }

    fn update(&mut self, _pc: u64, _taken: bool) {
        unreachable!("replay drains consult the feed via predict_and_update only")
    }

    #[inline(always)]
    fn predict_and_update(&mut self, _req: BranchReq) -> bool {
        let pred = self.preds[self.next];
        self.next += 1;
        pred
    }

    fn storage_bits(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "pred-feed"
    }
}

/// One consumer's per-record step over the SoA stream values: the
/// shared [`ChunkVisitor`] body of the single-consumer drain and the
/// fused convoy loops, generic over the concrete predictor type.
struct Step<'a, P: ?Sized> {
    timing: &'a mut OooTimingModel,
    predictor: &'a mut P,
    filter_prob: bool,
}

impl<P: BranchPredictor + ?Sized> Step<'_, P> {
    /// Advances the model by one record, with the branch event passed
    /// as a compile-time-known `Option` shape per call site.
    #[inline(always)]
    fn advance(
        &mut self,
        streams: &Streams<'_>,
        pc: u32,
        istall: u8,
        dlat: u8,
        ev: Option<BranchEvent>,
    ) {
        let t = &streams.timings[pc as usize];
        let exec_lat = if t.class == streams.load_class {
            dlat as u64
        } else {
            self.timing.static_latency(t.class)
        };
        self.timing.consume_core(
            pc,
            t,
            ev,
            istall as u64,
            exec_lat,
            self.predictor,
            self.filter_prob,
        );
    }
}

/// The shared-borrow half of a chunk drain: the per-pc metadata,
/// separated from the per-consumer mutable state so a fused loop can
/// hold one `Streams` next to many [`Step`]s (the record streams
/// themselves are walked by [`walk_chunk`]).
struct Streams<'a> {
    timings: &'a [InstTiming],
    load_class: u8,
}

impl<'a> Streams<'a> {
    fn new(timings: &'a [InstTiming]) -> Streams<'a> {
        Streams {
            timings,
            load_class: ExecClass::Load.index() as u8,
        }
    }
}

/// The single-consumer chunk-drain loop: one timing model stepping over
/// its prediction feed (the predictor itself already ran the chunk
/// through the batch API).
struct DrainOne<'a, P: ?Sized> {
    streams: Streams<'a>,
    step: Step<'a, P>,
}

impl<P: BranchPredictor + ?Sized> ChunkVisitor for DrainOne<'_, P> {
    #[inline(always)]
    fn plain(&mut self, pc: u32, istall: u8, dlat: u8) {
        self.step.advance(&self.streams, pc, istall, dlat, None);
    }

    #[inline(always)]
    fn branch(&mut self, pc: u32, istall: u8, dlat: u8, ev: BranchEvent) {
        self.step.advance(&self.streams, pc, istall, dlat, Some(ev));
    }
}

/// The fused two-consumer convoy loop: each record is decoded once from
/// the SoA streams and advances both timing models back to back over
/// their prediction feeds.
struct DrainTwo<'a, PA: ?Sized, PB: ?Sized> {
    streams: Streams<'a>,
    a: Step<'a, PA>,
    b: Step<'a, PB>,
}

impl<PA: BranchPredictor + ?Sized, PB: BranchPredictor + ?Sized> ChunkVisitor
    for DrainTwo<'_, PA, PB>
{
    #[inline(always)]
    fn plain(&mut self, pc: u32, istall: u8, dlat: u8) {
        self.a.advance(&self.streams, pc, istall, dlat, None);
        self.b.advance(&self.streams, pc, istall, dlat, None);
    }

    #[inline(always)]
    fn branch(&mut self, pc: u32, istall: u8, dlat: u8, ev: BranchEvent) {
        self.a.advance(&self.streams, pc, istall, dlat, Some(ev));
        self.b.advance(&self.streams, pc, istall, dlat, Some(ev));
    }
}

/// The arbitrary-`k` fused convoy loop: record-major over the SoA
/// streams, advancing every consumer's timing model over its own
/// prediction feed. With the predictors batched out of the drain, the
/// `k ≥ 3` fallback pays only a feed-array walk per record — no
/// per-branch predictor dispatch at any `k`.
struct DrainMany<'a, 'c> {
    streams: Streams<'a>,
    parts: Vec<(&'c mut OooTimingModel, PredFeed<'c>, bool)>,
}

impl ChunkVisitor for DrainMany<'_, '_> {
    #[inline(always)]
    fn plain(&mut self, pc: u32, istall: u8, dlat: u8) {
        for (timing, feed, filter) in &mut self.parts {
            let mut step = Step {
                timing,
                predictor: feed,
                filter_prob: *filter,
            };
            step.advance(&self.streams, pc, istall, dlat, None);
        }
    }

    #[inline(always)]
    fn branch(&mut self, pc: u32, istall: u8, dlat: u8, ev: BranchEvent) {
        for (timing, feed, filter) in &mut self.parts {
            let mut step = Step {
                timing,
                predictor: feed,
                filter_prob: *filter,
            };
            step.advance(&self.streams, pc, istall, dlat, Some(ev));
        }
    }
}

/// Drains one chunk through every consumer in a single fused pass:
/// every consumer's predictor first batch-predicts the whole chunk
/// ([`ReplayConsumer::batch_predict`]), then each record is decoded
/// once and all `k` timing models advance in lockstep over their
/// prediction feeds while the record's streams are hot. `k = 1`
/// degenerates to the single-consumer drain, `k = 2` — the sweep
/// pairing — fuses both steps per record, larger convoys walk a feed
/// array per record.
pub(crate) fn drain_chunk_convoy(
    consumers: &mut [ReplayConsumer],
    timings: &[InstTiming],
    chunk: &TraceChunk,
) {
    // Batch phase: consumers may filter probabilistic branches
    // differently (Figure 9 pairs filtered and unfiltered cells), so
    // each gathers and predicts its own request stream.
    for c in consumers.iter_mut() {
        c.batch_predict(chunk);
    }
    match consumers {
        [] => {}
        [one] => one.drain_chunk(timings, chunk),
        [a, b] => {
            let mut fa = PredFeed::new(&a.preds);
            let mut fb = PredFeed::new(&b.preds);
            let mut v = DrainTwo {
                streams: Streams::new(timings),
                a: Step {
                    timing: &mut a.timing,
                    predictor: &mut fa,
                    filter_prob: a.filter_prob,
                },
                b: Step {
                    timing: &mut b.timing,
                    predictor: &mut fb,
                    filter_prob: b.filter_prob,
                },
            };
            walk_chunk(chunk, &mut v);
            debug_assert!(
                fa.consumed_all() && fb.consumed_all(),
                "convoy drain left batched predictions unconsumed"
            );
        }
        many => {
            let mut v = DrainMany {
                streams: Streams::new(timings),
                parts: many
                    .iter_mut()
                    .map(|c| {
                        let ReplayConsumer {
                            ref mut timing,
                            ref preds,
                            filter_prob,
                            ..
                        } = *c;
                        (timing, PredFeed::new(preds), filter_prob)
                    })
                    .collect(),
            };
            walk_chunk(chunk, &mut v);
            debug_assert!(
                v.parts.iter().all(|(_, feed, _)| feed.consumed_all()),
                "convoy drain left batched predictions unconsumed"
            );
        }
    }
}

impl ReplayConsumer {
    /// A consumer for `config`'s timing side (core, predictor, filter
    /// mode, branch tracing).
    pub fn new(config: &SimConfig) -> ReplayConsumer {
        let mut timing = OooTimingModel::new(config.core.clone());
        if config.collect_branch_trace {
            timing.enable_trace();
        }
        ReplayConsumer {
            timing,
            predictor: config.predictor.build_dispatch(),
            filter_prob: config.filter_prob_from_predictor,
            reqs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Phase one of a chunk drain: grabs the chunk's predictor-visible
    /// branches ([`visible_reqs`] — a zero-copy borrow of the chunk's
    /// precomputed request stream unless this consumer filters
    /// probabilistic branches) and runs the whole batch through the
    /// predictor in one dispatch ([`PredictorDispatch::visit_batch`]),
    /// leaving the predictions in `self.preds` for the record walk.
    fn batch_predict(&mut self, chunk: &TraceChunk) {
        let reqs = visible_reqs(chunk, self.filter_prob, &mut self.reqs);
        self.preds.clear();
        self.preds.resize(reqs.len(), false);
        self.predictor.visit_batch(reqs, &mut self.preds);
    }

    /// Phase two: walks the chunk's records through the cycle-accounting
    /// core, replaying the batched predictions in program order.
    fn drain_chunk(&mut self, timings: &[InstTiming], chunk: &TraceChunk) {
        let mut feed = PredFeed::new(&self.preds);
        let mut v = DrainOne {
            streams: Streams::new(timings),
            step: Step {
                timing: &mut self.timing,
                predictor: &mut feed,
                filter_prob: self.filter_prob,
            },
        };
        walk_chunk(chunk, &mut v);
        debug_assert!(
            feed.consumed_all(),
            "drain consumed {} of {} batched predictions",
            feed.next,
            self.preds.len(),
        );
    }

    /// Drains one chunk through the timing model: batch-predict, then
    /// the record walk. `timings` is the per-pc metadata of the trace
    /// the chunk came from.
    #[inline]
    pub fn consume_chunk(&mut self, timings: &[InstTiming], chunk: &TraceChunk) {
        self.batch_predict(chunk);
        self.drain_chunk(timings, chunk);
    }

    /// Finishes the replay: the timing model's statistics joined with
    /// the trace's architectural results into the same [`SimReport`] the
    /// fused engine would have produced.
    pub fn into_report(mut self, functional: &TraceFunctional) -> SimReport {
        SimReport {
            timing: self.timing.stats(),
            pbs: functional.pbs,
            outputs: functional.outputs.clone(),
            prob_consumed: functional.prob_consumed.clone(),
            branch_trace: self.timing.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, PredictorChoice};
    use probranch_isa::{CmpOp, ProgramBuilder, Reg};

    /// A loop mixing regular branches, a ~50% probabilistic branch and
    /// memory traffic — every record shape a trace can hold.
    fn workload(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let join = b.label("join");
        b.li(Reg::R1, 0x9E3779B97F4A7C15u64 as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, (u64::MAX / 2) as i64);
        b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
        b.li(Reg::R9, 64);
        b.bind(top);
        b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shr(Reg::R5, Reg::R1, 27).xor(Reg::R1, Reg::R1, Reg::R5);
        b.mul(Reg::R7, Reg::R1, Reg::R6);
        b.st(Reg::R7, Reg::R9, 0).ld(Reg::R8, Reg::R9, 0);
        b.sltu(Reg::R8, Reg::R7, Reg::R4);
        b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
        b.prob_jmp(None, join);
        b.add(Reg::R3, Reg::R3, 1);
        b.bind(join);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, iters, top);
        b.out(Reg::R3, 0);
        b.halt();
        b.build().unwrap()
    }

    fn configs() -> Vec<SimConfig> {
        let mut v = Vec::new();
        for pbs in [false, true] {
            for p in [PredictorChoice::Tournament, PredictorChoice::TageScL] {
                let mut cfg = SimConfig::default().predictor(p);
                if pbs {
                    cfg = cfg.with_pbs();
                }
                cfg.collect_branch_trace = true;
                v.push(cfg);
            }
        }
        v
    }

    #[test]
    fn capture_then_replay_equals_fused_for_every_config() {
        let p = workload(3000);
        for cfg in configs() {
            let fused = simulate(&p, &cfg).unwrap();
            let trace = DynTrace::capture(&p, &cfg).unwrap();
            assert_eq!(trace.instructions(), fused.timing.instructions);
            let replayed = crate::sim::simulate_replay(&trace, &cfg).unwrap();
            assert_eq!(replayed, fused, "replay drift under {cfg:?}");
        }
    }

    #[test]
    fn one_trace_serves_many_timing_configs() {
        let p = workload(2000);
        let key = SimConfig::default().with_pbs();
        let trace = DynTrace::capture(&p, &key).unwrap();
        for predictor in [
            PredictorChoice::Tournament,
            PredictorChoice::TageScL,
            PredictorChoice::StaticTaken,
        ] {
            let cfg = SimConfig::default().with_pbs().predictor(predictor);
            let fused = simulate(&p, &cfg).unwrap();
            let replayed = crate::sim::simulate_replay(&trace, &cfg).unwrap();
            assert_eq!(replayed, fused, "replay drift for {predictor:?}");
        }
    }

    #[test]
    fn trace_spans_multiple_chunks_on_long_runs() {
        let p = workload(TRACE_CHUNK_RECORDS as i64 / 4);
        let cfg = SimConfig::default();
        let trace = DynTrace::capture(&p, &cfg).unwrap();
        assert!(trace.chunk_count() > 1, "chunks: {}", trace.chunk_count());
        assert!(trace.bytes() > 0);
        let total: usize = trace.chunks().iter().map(TraceChunk::len).sum();
        assert_eq!(total as u64, trace.instructions());
        let fused = simulate(&p, &cfg).unwrap();
        assert_eq!(crate::sim::simulate_replay(&trace, &cfg).unwrap(), fused);
    }

    #[test]
    fn soa_chunks_round_trip_their_record_view() {
        let p = workload(4000);
        let trace = DynTrace::capture(&p, &SimConfig::default().with_pbs()).unwrap();
        let mut branches = 0usize;
        for chunk in trace.chunks() {
            let recs: Vec<ReplayRec> = chunk.records().collect();
            assert_eq!(recs.len(), chunk.len());
            branches += chunk.branch_count();
            // Re-packing the AoS view reproduces the SoA streams
            // exactly.
            let mut repacked = TraceChunk::default();
            for r in &recs {
                repacked.push(*r);
            }
            assert_eq!(&repacked, chunk);
            // The run index elides exactly the zero branch bytes.
            assert_eq!(
                recs.iter().filter(|r| r.branch().is_some()).count(),
                chunk.branch_count()
            );
        }
        assert!(branches > 0, "workload must record branches");
    }

    #[test]
    fn capture_reports_inst_limit_like_the_fused_engine() {
        let p = workload(100_000);
        for max_insts in [1, 2, 1000, TRACE_CHUNK_RECORDS as u64 + 1] {
            let cfg = SimConfig {
                max_insts,
                ..SimConfig::default()
            };
            let fused = simulate(&p, &cfg);
            let captured = DynTrace::capture(&p, &cfg).map(|_| ());
            assert_eq!(
                captured.unwrap_err(),
                fused.unwrap_err(),
                "limit {max_insts}"
            );
        }
    }

    #[test]
    fn replay_honours_a_smaller_instruction_budget() {
        let p = workload(500);
        let key = SimConfig::default();
        let trace = DynTrace::capture(&p, &key).unwrap();
        let tight = SimConfig {
            max_insts: trace.instructions(),
            ..SimConfig::default()
        };
        assert_eq!(
            crate::sim::simulate_replay(&trace, &tight),
            simulate(&p, &tight)
        );
    }

    #[test]
    #[should_panic(expected = "replay PBS config differs")]
    fn replay_rejects_mismatched_pbs_key() {
        let p = workload(100);
        let trace = DynTrace::capture(&p, &SimConfig::default()).unwrap();
        let _ = crate::sim::simulate_replay(&trace, &SimConfig::default().with_pbs());
    }
}
